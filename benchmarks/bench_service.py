"""Load generator for the schedule service: cold vs warm latency and QPS.

The service (PR 9) answers (topology, size, heuristic) queries with timed
broadcast schedules out of an LRU schedule cache.  This benchmark drives a
loopback daemon with a mixed query set and records:

* **cold** — first pass over the set on a fresh daemon: every query builds
  its grid, its cost matrices and its schedule (all cache misses);
* **warm** — the same pass repeated: every query replays a cached payload
  verbatim (all cache hits);
* **hammer** — N concurrent clients replaying the warm set, for the
  daemon's sustained queries-per-second.

Every single response is verified bit-identical to the inline
``get_heuristic(...).schedule(...)`` path *before* any timing is recorded
— a fast wrong answer is not a result.  Latency percentiles (p50/p99),
QPS and the ``warm_vs_cold_speedup`` headline land in
``benchmarks/results/BENCH_service.json``; the acceptance floor (enforced
by ``benchmarks/check_regression.py``) requires the schedule cache to
answer at least **3x** faster than cold computation.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from conftest import BENCH_SERVICE_JSON_FILE, emit, emit_json

from repro.core.registry import get_heuristic
from repro.runtime.service import ScheduleClient, ScheduleService, build_topology

MB = 1_048_576

#: The mixed query set: the paper's Grid'5000 testbed plus Monte-Carlo
#: grids large enough that schedule construction dominates the wire hop.
QUERIES: tuple[tuple[dict, int, str, int], ...] = (
    ({"kind": "grid5000"}, MB, "ecef_la", 0),
    ({"kind": "grid5000"}, 65_536, "ecef_lat_max", 0),
    ({"kind": "random", "clusters": 24, "seed": 1}, MB, "ecef_la", 0),
    ({"kind": "random", "clusters": 32, "seed": 2}, MB, "ecef", 0),
    ({"kind": "random", "clusters": 32, "seed": 2}, 4 * MB, "ecef_la", 3),
    ({"kind": "random", "clusters": 40, "seed": 3}, MB, "bottom_up", 0),
    ({"kind": "random", "clusters": 40, "seed": 3}, MB, "ecef_lat_min", 0),
    ({"kind": "random", "clusters": 48, "seed": 4}, 2 * MB, "ecef_la", 0),
)

HAMMER_CLIENTS = 4
HAMMER_ROUNDS = 8


def _references() -> list:
    """The inline schedules the service must reproduce, computed once."""
    return [
        get_heuristic(heuristic).schedule(build_topology(spec), float(size), root=root)
        for spec, size, heuristic, root in QUERIES
    ]


def _verify(reply, reference, label) -> None:
    """Bit-identity against the inline path — the precondition of timing."""
    schedule = reply.schedule()
    assert schedule.order == reference.order, label
    assert schedule.makespan == reference.makespan, label
    assert schedule.completion_times == reference.completion_times, label
    assert schedule.summary() == reference.summary(), label


def _timed_pass(
    client: ScheduleClient, references: list, expect_cached: bool
) -> list[float]:
    """One pass over the query set; per-query wall latencies in seconds."""
    latencies = []
    for index, (spec, size, heuristic, root) in enumerate(QUERIES):
        started = time.perf_counter()
        reply = client.query(spec, size, heuristic, root=root)
        latencies.append(time.perf_counter() - started)
        assert reply.cached == expect_cached, (spec, heuristic)
        _verify(reply, references[index], (spec, heuristic))
    return latencies


def _percentiles(latencies: list[float]) -> dict[str, float]:
    values = np.asarray(latencies)
    return {
        "p50_ms": float(np.percentile(values, 50) * 1e3),
        "p99_ms": float(np.percentile(values, 99) * 1e3),
        "mean_ms": float(values.mean() * 1e3),
        "total_s": float(values.sum()),
    }


def test_service_cold_warm_and_hammer():
    """Cold misses vs warm hits vs a concurrent hammer, one loopback daemon."""
    references = _references()
    server = ScheduleService(port=0, max_clients=HAMMER_CLIENTS + 1)
    address = server.bind()
    serve_thread = threading.Thread(
        target=server.serve_forever, name="bench-service", daemon=True
    )
    serve_thread.start()
    try:
        with ScheduleClient(address) as client:
            cold = _timed_pass(client, references, expect_cached=False)
            warm = _timed_pass(client, references, expect_cached=True)
            # A second warm pass is the steadier of the two: the first warm
            # query still pays allocator/branch warmup noise.
            warm = _timed_pass(client, references, expect_cached=True)

        # The hammer: N clients replay the warm set concurrently.
        failures: list[str] = []
        per_client: list[list[float]] = [[] for _ in range(HAMMER_CLIENTS)]

        def hammer(slot: int) -> None:
            try:
                with ScheduleClient(address, timeout=60) as mine:
                    for _ in range(HAMMER_ROUNDS):
                        per_client[slot].extend(
                            _timed_pass(mine, references, expect_cached=True)
                        )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(f"client {slot}: {type(exc).__name__}: {exc}")

        hammer_started = time.perf_counter()
        threads = [
            threading.Thread(target=hammer, args=(slot,))
            for slot in range(HAMMER_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        hammer_elapsed = time.perf_counter() - hammer_started
        assert not failures, failures

        stats = server.stats()
    finally:
        server.close()
        serve_thread.join(timeout=5)

    hammer_latencies = [value for slot in per_client for value in slot]
    hammer_queries = HAMMER_CLIENTS * HAMMER_ROUNDS * len(QUERIES)
    assert len(hammer_latencies) == hammer_queries
    assert stats["served"] == hammer_queries + 3 * len(QUERIES)

    sections = {
        "cold": _percentiles(cold),
        "warm": _percentiles(warm),
        "hammer": {
            **_percentiles(hammer_latencies),
            "clients": HAMMER_CLIENTS,
            "queries": hammer_queries,
            "qps": hammer_queries / hammer_elapsed,
        },
    }
    speedup = sections["cold"]["mean_ms"] / sections["warm"]["mean_ms"]

    emit(
        "Schedule service (loopback daemon, "
        f"{len(QUERIES)}-query set, every response verified vs inline):\n"
        f"  cold    p50 {sections['cold']['p50_ms']:8.3f} ms   "
        f"p99 {sections['cold']['p99_ms']:8.3f} ms\n"
        f"  warm    p50 {sections['warm']['p50_ms']:8.3f} ms   "
        f"p99 {sections['warm']['p99_ms']:8.3f} ms   "
        f"(cache {speedup:.1f}x cold)\n"
        f"  hammer  p50 {sections['hammer']['p50_ms']:8.3f} ms   "
        f"p99 {sections['hammer']['p99_ms']:8.3f} ms   "
        f"({HAMMER_CLIENTS} clients, {sections['hammer']['qps']:,.0f} queries/s)"
    )
    emit_json(
        "service_load",
        {
            "queries": len(QUERIES),
            "warm_vs_cold_speedup": speedup,
            "server_stats": stats,
            **sections,
        },
        path=BENCH_SERVICE_JSON_FILE,
    )
    # The acceptance bar: a schedule-cache hit must answer at least 3x
    # faster than cold computation.
    assert speedup >= 3.0
