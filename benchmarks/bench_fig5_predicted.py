"""Figure 5 — predicted completion time on the 88-machine Table 3 grid.

The pLogP model predicts the completion time of every heuristic's schedule for
message sizes between 0 and 4.5 MB.  Expected shape: all curves grow with the
message size; the Flat Tree grows several times faster than the ECEF family.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.config import PracticalStudyConfig
from repro.experiments.practical_study import run_practical_study
from repro.experiments.report import render_table


def _run_figure5():
    config = PracticalStudyConfig(noise_sigma=0.0, include_binomial_baseline=False)
    return run_practical_study(config)


def test_figure5_predicted_times(benchmark):
    result = benchmark.pedantic(_run_figure5, rounds=1, iterations=1)
    emit(
        render_table(
            result.as_table(which="predicted"),
            title="Figure 5 — predicted completion time (s) for a broadcast on the 88-machine grid",
        )
    )
    predicted = result.predicted
    names = result.heuristic_names
    # Monotone in message size for every heuristic.
    for column in range(predicted.shape[1]):
        series = predicted[:, column]
        assert all(b >= a for a, b in zip(series, series[1:]))
    # Flat Tree several times slower than ECEF at 4.5 MB.
    flat = predicted[-1, names.index("Flat Tree")]
    ecef = predicted[-1, names.index("ECEF")]
    assert flat > 3 * ecef
