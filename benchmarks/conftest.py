"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper (a figure or a table)
and prints the corresponding rows/series, so the console output of::

    pytest benchmarks/ --benchmark-only -s

doubles as the data source for EXPERIMENTS.md.  The Monte-Carlo iteration
counts default to values that finish in seconds; set the environment variable
``REPRO_BENCH_ITERATIONS`` to a larger number (the paper used 10 000) for
tighter averages.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

#: All emitted tables are appended here (cleared at the start of each pytest
#: session), so the regenerated paper artefacts survive output capturing.
RESULTS_FILE = Path(__file__).parent / "results" / "paper_artifacts.txt"

#: Machine-readable companion of the scheduling benchmarks: schedules/sec and
#: per-heuristic timings, merged section by section via :func:`emit_json` so
#: the throughput trajectory can be compared across PRs.
BENCH_JSON_FILE = Path(__file__).parent / "results" / "BENCH_scheduling.json"

#: Same, for the practical-study (measured sweep) benchmarks.
BENCH_PRACTICAL_JSON_FILE = Path(__file__).parent / "results" / "BENCH_practical.json"

#: Same, for the study-runtime benchmarks (persistent pool, zero-copy
#: shipping, pipelined end-to-end driver).
BENCH_RUNTIME_JSON_FILE = Path(__file__).parent / "results" / "BENCH_runtime.json"

#: Same, for the schedule-service benchmarks (cold vs warm latency, QPS).
BENCH_SERVICE_JSON_FILE = Path(__file__).parent / "results" / "BENCH_service.json"

#: Same, for the gossip round-engine benchmarks (rounds/s at 10^4..10^6
#: nodes, vectorized vs the scalar reference).
BENCH_GOSSIP_JSON_FILE = Path(__file__).parent / "results" / "BENCH_gossip.json"


def pytest_sessionstart(session):
    RESULTS_FILE.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_FILE.write_text("")


def bench_iterations(default: int) -> int:
    """Iteration count for Monte-Carlo benchmarks, overridable via the env."""
    override = os.environ.get("REPRO_BENCH_ITERATIONS")
    if override:
        return max(1, int(override))
    return default


def emit(text: str) -> None:
    """Record a result table.

    The table is appended to ``benchmarks/results/paper_artifacts.txt`` (the
    durable record used by EXPERIMENTS.md) and also written to stderr so that
    running pytest with ``-s`` shows it inline.
    """
    RESULTS_FILE.parent.mkdir(parents=True, exist_ok=True)
    with RESULTS_FILE.open("a") as handle:
        handle.write(text + "\n\n")
    sys.stderr.write("\n" + text + "\n")


def emit_json(section: str, payload: dict, *, path: Path | None = None) -> None:
    """Merge one section into a benchmark JSON document.

    Defaults to ``benchmarks/results/BENCH_scheduling.json``; the practical
    sweep benchmarks pass ``path=BENCH_PRACTICAL_JSON_FILE``.  Sections are
    merged by name into the existing document (never wholesale cleared), so a
    partial benchmark run — or one that emits nothing — leaves the other
    recorded sections' trajectory data intact; a full run simply overwrites
    every section it re-measures.
    """
    target = path if path is not None else BENCH_JSON_FILE
    target.parent.mkdir(parents=True, exist_ok=True)
    data = {}
    if target.exists():
        try:
            data = json.loads(target.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def iterations():
    """Default iteration count fixture (kept small for CI-speed runs)."""
    return bench_iterations(100)
