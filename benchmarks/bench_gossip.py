"""Gossip round-engine throughput: vectorized flat arrays vs scalar reference.

The gossip subsystem (PR 10) holds all per-node state in flat NumPy arrays
and advances an entire network one vectorized pass per round.  This benchmark
records what that buys:

* **engine speedup floor** — scalar vs vectorized on the 10^4-node *tree*
  workload.  Tree is the one protocol that draws no random targets, so the
  ratio measures the flat-array engine against the per-node Python loop
  directly.  (The fanout protocols share their seeded bulk target draw
  between both engines by construction — the draw is the bit-identity
  contract — so their measured ratio is floored by that common cost; it is
  recorded informationally below, not gated.)
* **scale trajectory** — rounds/s for fanout-4 push at 10^4, 10^5 and 10^6
  nodes, the sizes the scalar engine could never touch.

The two engines are verified bit-identical on the timed specs *before* any
timing is recorded — a fast wrong answer is not a result.  Rounds/s and
node-rounds/s per network size and the ``speedup_vectorized_vs_scalar``
headline land in ``benchmarks/results/BENCH_gossip.json``; the acceptance
floor (enforced by ``benchmarks/check_regression.py``) requires the
vectorized engine to advance the 10^4-node tree workload at least **20x**
faster than the scalar reference.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import BENCH_GOSSIP_JSON_FILE, emit, emit_json

from repro.experiments.report import render_table
from repro.gossip import GossipSpec, run_gossip

#: The scale-trajectory workload: classic fanout-4 push at three decades.
SIZES = (10_000, 100_000, 1_000_000)
FANOUT = 4
SEED = 20060331

#: The floor workload: draw-free binomial tree at the scalar-feasible size.
FLOOR_NODES = 10_000


def _push_spec(num_nodes: int) -> GossipSpec:
    return GossipSpec(protocol="push", num_nodes=num_nodes, fanout=FANOUT, seed=SEED)


def _tree_spec(num_nodes: int) -> GossipSpec:
    return GossipSpec(protocol="tree", num_nodes=num_nodes, seed=SEED)


def _assert_bit_identical(spec: GossipSpec) -> None:
    vectorized = run_gossip(spec)
    scalar = run_gossip(spec, engine="scalar")
    assert np.array_equal(vectorized.informed_round, scalar.informed_round)
    assert np.array_equal(vectorized.messages_per_round, scalar.messages_per_round)


def _time_run(spec: GossipSpec, engine: str, *, repeats: int = 1):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_gossip(spec, engine=engine)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_gossip_engine_throughput():
    # Correctness first: the engines must agree bit for bit on both timed
    # specs (the full cross-protocol/churn matrix lives in
    # tests/test_gossip.py).
    _assert_bit_identical(_tree_spec(FLOOR_NODES))
    _assert_bit_identical(_push_spec(SIZES[0]))

    # Floor workload: draw-free tree, scalar vs vectorized.
    tree = _tree_spec(FLOOR_NODES)
    scalar_seconds, scalar_result = _time_run(tree, "scalar")
    vectorized_seconds, _ = _time_run(tree, "vectorized", repeats=5)
    speedup = scalar_seconds / vectorized_seconds

    # Informational: the same ratio on fanout-4 push, where the shared
    # per-round target draw bounds what vectorization can show.
    push_small = _push_spec(SIZES[0])
    push_scalar_seconds, _ = _time_run(push_small, "scalar")
    push_vectorized_seconds, _ = _time_run(push_small, "vectorized", repeats=5)

    rows = []
    sections: dict[str, dict] = {}
    for num_nodes in SIZES:
        seconds, result = _time_run(_push_spec(num_nodes), "vectorized")
        rows.append(
            {
                "nodes": float(num_nodes),
                "rounds": float(result.rounds_executed),
                "seconds": seconds,
                "rounds_per_s": result.rounds_executed / seconds,
                "delivered": float(result.delivered_count),
            }
        )
        sections[str(num_nodes)] = {
            "rounds": result.rounds_executed,
            "seconds": seconds,
            "rounds_per_s": result.rounds_executed / seconds,
            "node_rounds_per_s": num_nodes * result.rounds_executed / seconds,
        }
        assert result.delivered_count == num_nodes  # no churn: full delivery

    emit(
        render_table(
            rows,
            title=(
                f"Vectorized gossip engine (push, fanout {FANOUT}); "
                f"tree floor workload at {FLOOR_NODES} nodes: scalar "
                f"{scalar_seconds * 1000:.1f}ms vs vectorized "
                f"{vectorized_seconds * 1000:.2f}ms -> speedup {speedup:.1f}x"
            ),
            precision=4,
        )
    )
    emit_json(
        "gossip_engine",
        {
            "floor_workload": f"tree-n{FLOOR_NODES}",
            "scalar_seconds": scalar_seconds,
            "scalar_rounds_per_s": scalar_result.rounds_executed / scalar_seconds,
            "vectorized_seconds": vectorized_seconds,
            "speedup_vectorized_vs_scalar": speedup,
            "push_speedup_draw_bounded": push_scalar_seconds
            / push_vectorized_seconds,
            "vectorized_push": sections,
        },
        path=BENCH_GOSSIP_JSON_FILE,
    )
    assert speedup >= 20.0
