"""Figure 3 — zoom on the four ECEF-like heuristics, 5 to 50 clusters.

Expected shape: the four curves lie within a few percent of each other and are
almost insensitive to the number of clusters (the paper plots them between
roughly 3.0 s and 3.7 s).
"""

from __future__ import annotations

from conftest import bench_iterations, emit

from repro.experiments.config import SimulationStudyConfig
from repro.experiments.report import render_series_table
from repro.experiments.simulation_study import run_simulation_study


def _run_figure3():
    config = SimulationStudyConfig.figure3(iterations=bench_iterations(100))
    return run_simulation_study(config)


def test_figure3_ecef_family_zoom(benchmark):
    result = benchmark.pedantic(_run_figure3, rounds=1, iterations=1)
    series = {name: result.series(name) for name in result.heuristic_names}
    emit(
        render_series_table(
            "clusters",
            result.cluster_counts,
            series,
            title=(
                "Figure 3 — ECEF-like heuristics, mean completion time (s), "
                f"{result.config.iterations} iterations"
            ),
        )
    )
    means = result.mean_completion_times()
    # The four heuristics stay within ~10 % of each other at every point.
    spreads = means.max(axis=1) / means.min(axis=1)
    assert spreads.max() < 1.10
    # ...and none of them blows up with the cluster count.
    assert means[-1].max() < 1.5 * means[0].min()
