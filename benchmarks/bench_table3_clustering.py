"""Table 3 — identification of the logical clusters of the 88-machine grid.

The paper obtains its six logical clusters (31+29 Orsay, 6+1+1 IDPOT,
20 Toulouse) by running Lowekamp's algorithm with tolerance ρ = 30 % on the
measured latencies.  This benchmark times our identification step on the
synthetic 88×88 node latency matrix and checks it recovers exactly the
Table 3 partition, with and without measurement jitter.
"""

from __future__ import annotations

import pytest

from conftest import emit

from repro.topology.clustering import identify_logical_clusters
from repro.topology.grid5000 import (
    GRID5000_CLUSTER_SIZES,
    build_grid5000_topology,
    build_node_latency_matrix,
)


def _identify():
    matrix = build_node_latency_matrix()
    return identify_logical_clusters(matrix, tolerance=0.30)


def test_table3_logical_cluster_identification(benchmark):
    clusters = benchmark(_identify)
    sizes = sorted((c.size for c in clusters), reverse=True)
    lines = ["Table 3 — logical clusters identified with tolerance rho = 30%:"]
    for index, cluster in enumerate(clusters):
        lines.append(
            f"  cluster {index}: {cluster.size:3d} machines, "
            f"reference latency {cluster.reference_latency * 1e6:8.2f} us"
        )
    emit("\n".join(lines))
    assert sizes == sorted(GRID5000_CLUSTER_SIZES, reverse=True)


def test_table3_latency_map_matches_paper():
    """The inter-cluster latencies of the reconstructed grid reproduce the
    Table 3 values exactly (they are inputs, not measurements)."""
    grid = build_grid5000_topology()
    rows = []
    for i in range(grid.num_clusters):
        cells = []
        for j in range(grid.num_clusters):
            if i == j:
                cells.append("      -  ")
            else:
                cells.append(f"{grid.latency(i, j) * 1e6:9.2f}")
        rows.append("  " + " ".join(cells))
    emit("Table 3 — inter-cluster latency (us):\n" + "\n".join(rows))
    # The seconds -> microseconds conversion is not exact in binary floating
    # point (0.01218152 * 1e6 == 12181.519999...), so compare approximately.
    assert grid.latency(0, 2) * 1e6 == pytest.approx(12181.52)
    assert grid.latency(0, 5) * 1e6 == pytest.approx(5210.99)
