"""Figure 2 — mean completion time of a 1 MB broadcast, 5 to 50 clusters.

Expected shape: the Flat Tree grows linearly (≈19 s at 50 clusters in the
paper), FEF degrades markedly (≈8–10 s), the ECEF family stays nearly flat
(≈3–4 s) and BottomUp sits between FEF and the ECEF family.
"""

from __future__ import annotations

from conftest import bench_iterations, emit

from repro.experiments.config import SimulationStudyConfig
from repro.experiments.report import render_series_table
from repro.experiments.simulation_study import run_simulation_study


def _run_figure2():
    config = SimulationStudyConfig.figure2(iterations=bench_iterations(80))
    return run_simulation_study(config)


def test_figure2_large_grids(benchmark):
    result = benchmark.pedantic(_run_figure2, rounds=1, iterations=1)
    series = {name: result.series(name) for name in result.heuristic_names}
    emit(
        render_series_table(
            "clusters",
            result.cluster_counts,
            series,
            title=(
                "Figure 2 — mean completion time (s), 1 MB broadcast, "
                f"{result.config.iterations} iterations"
            ),
        )
    )
    flat = result.series("Flat Tree")
    fef = result.series("FEF")
    ecef = result.series("ECEF")
    bottomup = result.series("BottomUp")
    # Who wins, by roughly what factor (paper: ~19 s vs ~3.2 s at 50 clusters).
    assert flat[-1] > 4 * ecef[-1]
    assert fef[-1] > 1.5 * ecef[-1]
    assert ecef[-1] < bottomup[-1] < fef[-1]
    # The ECEF family barely grows with the cluster count.
    assert ecef[-1] < 1.4 * ecef[0]
