"""Scheduling overhead — the cost of running the heuristics themselves.

Paper §7 notes that "the algorithm complexity is a factor that must be
considered when implementing more elaborate techniques like ECEF-LAT".  This
benchmark measures the wall-clock cost of producing one schedule with each
heuristic on random 10-, 30- and 50-cluster grids, i.e. the overhead an MPI
library would pay at communicator-construction (or topology-change) time.
"""

from __future__ import annotations

import pytest

from conftest import emit

from repro.core.registry import PAPER_HEURISTICS, get_heuristic
from repro.topology.generators import RandomGridGenerator
from repro.utils.rng import RandomStream

CLUSTER_COUNTS = (10, 30, 50)


def _grid(num_clusters: int):
    return RandomGridGenerator(cluster_size=2).generate(
        num_clusters, RandomStream(seed=num_clusters)
    )


@pytest.mark.parametrize("key", PAPER_HEURISTICS)
@pytest.mark.parametrize("num_clusters", CLUSTER_COUNTS)
def test_scheduling_overhead(benchmark, key, num_clusters):
    grid = _grid(num_clusters)
    heuristic = get_heuristic(key)
    benchmark.group = f"schedule {num_clusters} clusters"
    schedule = benchmark(lambda: heuristic.schedule(grid, 1_048_576))
    assert schedule.makespan > 0


def test_scheduling_overhead_summary():
    """A one-shot, human-readable comparison (microseconds per schedule)."""
    import time

    lines = ["Scheduling overhead (single schedule construction, wall-clock):"]
    for num_clusters in CLUSTER_COUNTS:
        grid = _grid(num_clusters)
        cells = []
        for key in PAPER_HEURISTICS:
            heuristic = get_heuristic(key)
            start = time.perf_counter()
            repetitions = 5
            for _ in range(repetitions):
                heuristic.schedule(grid, 1_048_576)
            elapsed = (time.perf_counter() - start) / repetitions
            cells.append(f"{heuristic.name}={elapsed * 1e3:.2f}ms")
        lines.append(f"  {num_clusters:2d} clusters: " + "  ".join(cells))
    emit("\n".join(lines))
