"""Scheduling overhead and throughput — the cost of the heuristics themselves.

Paper §7 notes that "the algorithm complexity is a factor that must be
considered when implementing more elaborate techniques like ECEF-LAT".  This
benchmark measures

* the wall-clock cost of producing one schedule with each heuristic on random
  10-, 30- and 50-cluster grids (the overhead an MPI library would pay at
  communicator-construction time), and
* the throughput of the Monte-Carlo engines on the paper's 10-cluster
  workload: the seed-style scalar reference (fresh cost matrices per
  schedule, scalar selection loops) versus the vectorized per-grid engine and
  the batched engine that drives whole chunks of grids per NumPy call.

The schedules/sec numbers and per-heuristic timings are also written to
``benchmarks/results/BENCH_scheduling.json`` so the trajectory is tracked
across PRs.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import bench_iterations, emit, emit_json

from repro.core.batch import BatchedGridCosts, batched_makespans
from repro.core.costs import GridCostCache
from repro.core.registry import PAPER_HEURISTICS, get_heuristic, instantiate
from repro.topology.generators import RandomGridGenerator
from repro.utils.rng import RandomStream

CLUSTER_COUNTS = (10, 30, 50)
MESSAGE_SIZE = 1_048_576


def _grid(num_clusters: int):
    return RandomGridGenerator(cluster_size=2).generate(
        num_clusters, RandomStream(seed=num_clusters)
    )


def _monte_carlo_grids(num_clusters: int, count: int):
    generator = RandomGridGenerator(cluster_size=2)
    return [
        generator.generate(num_clusters, RandomStream(seed=seed))
        for seed in range(count)
    ]


@pytest.mark.parametrize("key", PAPER_HEURISTICS)
@pytest.mark.parametrize("num_clusters", CLUSTER_COUNTS)
def test_scheduling_overhead(benchmark, key, num_clusters):
    grid = _grid(num_clusters)
    heuristic = get_heuristic(key)
    benchmark.group = f"schedule {num_clusters} clusters"
    schedule = benchmark(lambda: heuristic.schedule(grid, MESSAGE_SIZE))
    assert schedule.makespan > 0


def test_scheduling_overhead_summary():
    """A one-shot, human-readable comparison (milliseconds per schedule)."""
    lines = ["Scheduling overhead (single schedule construction, wall-clock):"]
    per_heuristic: dict[str, dict[str, float]] = {}
    for num_clusters in CLUSTER_COUNTS:
        grid = _grid(num_clusters)
        cells = []
        for key in PAPER_HEURISTICS:
            heuristic = get_heuristic(key)
            start = time.perf_counter()
            repetitions = 5
            for _ in range(repetitions):
                heuristic.schedule(grid, MESSAGE_SIZE)
            elapsed = (time.perf_counter() - start) / repetitions
            cells.append(f"{heuristic.name}={elapsed * 1e3:.2f}ms")
            per_heuristic.setdefault(heuristic.name, {})[str(num_clusters)] = elapsed
        lines.append(f"  {num_clusters:2d} clusters: " + "  ".join(cells))
    emit("\n".join(lines))
    emit_json(
        "single_schedule_seconds",
        {"message_size": MESSAGE_SIZE, "per_heuristic": per_heuristic},
    )


def test_monte_carlo_throughput():
    """Schedules/sec on the 10-cluster Monte-Carlo workload, per engine.

    The *seed-style* baseline reproduces the seed implementation's cost
    profile: every ``heuristic.schedule`` call rebuilds the full cost
    matrices (uncached) and runs the scalar selection loops.  The vectorized
    engine shares one :class:`GridCostCache` per grid across all heuristics;
    the batched engine additionally stacks the whole workload and advances
    every grid per NumPy call.
    """
    num_clusters = 10
    # Floor the workload at 100 grids: the batched engine finishes a small
    # batch in a few milliseconds, which is too noisy to assert a speedup on.
    grid_count = max(bench_iterations(150), 100)
    grids = _monte_carlo_grids(num_clusters, grid_count)
    heuristics = instantiate(PAPER_HEURISTICS)
    schedules = len(grids) * len(heuristics)

    def measure(run) -> float:
        start = time.perf_counter()
        run()
        return time.perf_counter() - start

    def seed_style():
        for grid in grids:
            for heuristic in heuristics:
                heuristic.schedule(
                    grid,
                    MESSAGE_SIZE,
                    costs=GridCostCache.build(grid, MESSAGE_SIZE),
                    vectorized=False,
                )

    def vectorized():
        for grid in grids:
            costs = GridCostCache.build(grid, MESSAGE_SIZE)
            for heuristic in heuristics:
                heuristic.makespan(grid, MESSAGE_SIZE, costs=costs)

    def batched():
        caches = [GridCostCache.build(grid, MESSAGE_SIZE) for grid in grids]
        stacked = BatchedGridCosts(caches)
        results = [batched_makespans(h, stacked, root=0) for h in heuristics]
        assert all(r is not None for r in results)

    # Warm up allocators / import costs on a small slice before timing.
    for grid in grids[:3]:
        for heuristic in heuristics:
            heuristic.makespan(grid, MESSAGE_SIZE)

    elapsed = {
        "seed_style_scalar": measure(seed_style),
        "vectorized_shared_cache": measure(vectorized),
        "batched": measure(batched),
    }
    throughput = {name: schedules / seconds for name, seconds in elapsed.items()}
    baseline = throughput["seed_style_scalar"]

    lines = [
        f"Monte-Carlo scheduling throughput ({num_clusters} clusters, "
        f"{grid_count} grids x {len(heuristics)} heuristics):"
    ]
    for name, value in throughput.items():
        lines.append(
            f"  {name:<24} {value:10,.0f} schedules/s   ({value / baseline:5.1f}x)"
        )
    emit("\n".join(lines))

    emit_json(
        "monte_carlo_throughput",
        {
            "num_clusters": num_clusters,
            "grids": grid_count,
            "heuristics": list(PAPER_HEURISTICS),
            "message_size": MESSAGE_SIZE,
            "schedules": schedules,
            "schedules_per_second": throughput,
            "speedup_vs_seed_style": {
                name: value / baseline for name, value in throughput.items()
            },
        },
    )

    # The batched engine is the one the Monte-Carlo studies actually use;
    # it must stay well ahead of the seed-style baseline.
    assert throughput["batched"] >= 5.0 * baseline


def test_engines_agree_on_throughput_workload():
    """The three engines must produce identical makespans on the workload."""
    grids = _monte_carlo_grids(10, 25)
    heuristics = instantiate(PAPER_HEURISTICS)
    caches = [GridCostCache.for_grid(grid, MESSAGE_SIZE) for grid in grids]
    stacked = BatchedGridCosts(caches)
    for heuristic in heuristics:
        from_batch = batched_makespans(heuristic, stacked, root=0)
        from_vectorized = np.array(
            [
                heuristic.makespan(grid, MESSAGE_SIZE, costs=cache)
                for grid, cache in zip(grids, caches)
            ]
        )
        from_scalar = np.array(
            [
                heuristic.schedule(grid, MESSAGE_SIZE, vectorized=False).makespan
                for grid in grids
            ]
        )
        assert np.array_equal(from_batch, from_vectorized), heuristic.name
        assert np.array_equal(from_vectorized, from_scalar), heuristic.name
