"""Ablation A2 — sensitivity of the heuristic ranking to the intra-cluster cost.

The grid-aware heuristics exist because the intra-cluster broadcast time T can
rival wide-area costs (paper §5).  This ablation sweeps a scale factor applied
to the Table 2 T range (x0, x0.1, x1, x3) and reports, for a 20-cluster grid,
the mean completion time of a latency-only heuristic (FEF), a communication
heuristic (ECEF) and the grid-aware ECEF-LAT / BottomUp.

Expected: with T ≈ 0 the grid-aware terms are irrelevant (all ECEF-like
heuristics collapse onto each other and BottomUp loses its rationale); as T
grows the spread between T-blind and T-aware selection grows and the absolute
completion time becomes dominated by T.
"""

from __future__ import annotations

import numpy as np
from conftest import bench_iterations, emit

from repro.experiments.config import SimulationStudyConfig
from repro.experiments.report import render_series_table
from repro.experiments.simulation_study import run_simulation_study
from repro.topology.generators import PAPER_PARAMETER_RANGES

SCALE_FACTORS = (0.0, 0.1, 1.0, 3.0)
HEURISTICS = ("fef", "ecef", "ecef_la", "ecef_lat_max", "bottom_up")


def _run_sensitivity():
    iterations = bench_iterations(60)
    tables = {}
    for factor in SCALE_FACTORS:
        config = SimulationStudyConfig(
            cluster_counts=(20,),
            iterations=iterations,
            heuristics=HEURISTICS,
            ranges=PAPER_PARAMETER_RANGES.scaled_broadcast(factor),
        )
        tables[factor] = run_simulation_study(config)
    return tables


def test_ablation_intra_cluster_cost_scale(benchmark):
    tables = benchmark.pedantic(_run_sensitivity, rounds=1, iterations=1)
    names = tables[1.0].heuristic_names
    series = {
        name: [float(tables[f].mean_completion_times()[0, names.index(name)]) for f in SCALE_FACTORS]
        for name in names
    }
    emit(
        render_series_table(
            "T_scale",
            list(SCALE_FACTORS),
            series,
            title="Ablation A2 — mean completion time (s) at 20 clusters vs intra-cluster cost scale",
        )
    )
    ecef = np.array(series["ECEF"])
    # Completion time is dominated by T once T is large.
    assert ecef[-1] > 2.0 * ecef[1]
    # With T = 0 the problem reduces to pure communication scheduling and the
    # whole ECEF family ties almost exactly.
    zero_row = [series[name][0] for name in ("ECEF", "ECEF-LA", "ECEF-LAT")]
    assert max(zero_row) < 1.05 * min(zero_row)
