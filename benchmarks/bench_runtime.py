"""End-to-end throughput of the study runtime (pipelined practical sweep).

PR 1 and PR 2 made each *stage* of a study fast; this benchmark measures the
orchestration taxes the runtime layer removes.  The workload is the full
Table 3 practical sweep (7 heuristics + baseline x 10 sizes, predictions
included), end to end, with ``workers=2``:

* **pr2_dispatch** — the PR 2 sequential path: construct-then-measure with
  the pre-runtime worker dispatch (``transport="legacy"``: a fresh
  ``multiprocessing.Pool`` spawned per call, the grid and tasks re-pickled
  per chunk, programs compiled in every worker);
* **runtime_sequential** — construct-then-measure, but compiled once in the
  parent, shipped zero-copy (shared memory when available) to the persistent
  :class:`~repro.runtime.pool.StudyPool`;
* **runtime_pipelined** — the full runtime driver: each size's batch is
  shipped for measurement while the next size's schedules construct;
* **inline** — ``workers=0`` for context (on a single-core box the pool can
  only lose; on real hardware the pipelined driver overlaps).

All four produce bit-identical results (asserted below), so the ratios are
pure overhead removed.  The acceptance floor is **>= 1.5x** for the
pipelined runtime over the PR 2 dispatch at the same worker count, plain and
3-replica sweeps alike; results land in
``benchmarks/results/BENCH_runtime.json`` so the trajectory is tracked
across PRs (and enforced by ``benchmarks/check_regression.py`` in CI).
"""

from __future__ import annotations

import time

import numpy as np

from conftest import BENCH_RUNTIME_JSON_FILE, emit, emit_json

from repro.experiments.chained_study import run_chained_study
from repro.experiments.config import (
    PRACTICAL_MESSAGE_SIZES,
    PracticalStudyConfig,
)
from repro.experiments.practical_study import run_practical_study
from repro.mpi.bcast import binomial_bcast_program
from repro.mpi.scatter import flat_scatter_program
from repro.runtime.pool import get_pool
from repro.runtime.transport import shared_memory_available
from repro.simulator.batch import ExecutionTask, execute_programs
from repro.simulator.network import NetworkConfig
from repro.topology.grid5000 import build_grid5000_topology
from repro.utils.rng import derive_seed

NOISE_SIGMA = 0.03
SEED = 20060331
WORKERS = 2
REPLICAS = 3


def _best_of(run, repetitions: int) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def test_pipelined_end_to_end():
    """Full practical sweep: pipelined runtime vs the PR 2 worker dispatch."""
    config = PracticalStudyConfig(noise_sigma=NOISE_SIGMA, seed=SEED)
    get_pool(WORKERS)  # the persistent pool, created once and reused below

    variants = {
        "inline": dict(workers=0, pipeline=False),
        "pr2_dispatch": dict(workers=WORKERS, pipeline=False, transport="legacy"),
        "runtime_sequential": dict(workers=WORKERS, pipeline=False),
        "runtime_pipelined": dict(workers=WORKERS, pipeline=True),
    }

    def sweep(replicas: int, options: dict):
        return run_practical_study(config, replicas=replicas, **options)

    # Warm every path once — and require bit-identical results before any
    # timing means anything.
    reference = sweep(1, variants["inline"])
    for name, options in variants.items():
        result = sweep(1, options)
        assert np.array_equal(result.measured, reference.measured), name
        assert np.array_equal(
            result.baseline_measured, reference.baseline_measured
        ), name

    timings: dict[str, dict] = {}
    for section, replicas, repetitions in (
        ("plain", 1, 5),
        ("replicated", REPLICAS, 3),
    ):
        seconds = {
            name: _best_of(lambda options=options: sweep(replicas, options), repetitions)
            for name, options in variants.items()
        }
        timings[section] = {
            "replicas": replicas,
            "seconds": seconds,
            "speedup_vs_pr2": {
                name: seconds["pr2_dispatch"] / seconds[name]
                for name in variants
            },
        }

    lines = [
        "Study-runtime end-to-end (full practical sweep, "
        f"workers={WORKERS}, shm={shared_memory_available()}):"
    ]
    for section, data in timings.items():
        lines.append(f"  {section} (replicas={data['replicas']}):")
        for name in variants:
            lines.append(
                f"    {name:<19} {data['seconds'][name] * 1e3:7.1f} ms   "
                f"({data['speedup_vs_pr2'][name]:.2f}x vs pr2 dispatch)"
            )
    emit("\n".join(lines))

    emit_json(
        "pipelined_end_to_end",
        {
            "grid": "grid5000-table3",
            "noise_sigma": NOISE_SIGMA,
            "seed": SEED,
            "workers": WORKERS,
            "message_sizes": list(PRACTICAL_MESSAGE_SIZES),
            "shared_memory": shared_memory_available(),
            "timings": timings,
        },
        path=BENCH_RUNTIME_JSON_FILE,
    )

    # The acceptance bar: the pipelined runtime must beat the PR 2 dispatch
    # by at least 1.5x end-to-end at the same worker count.
    assert timings["plain"]["speedup_vs_pr2"]["runtime_pipelined"] >= 1.5
    assert timings["replicated"]["speedup_vs_pr2"]["runtime_pipelined"] >= 1.5


def test_thread_vs_process_crossover():
    """The executor crossover: thread lane vs process lane, small and large.

    The thread lane (``executor="thread"``) ships nothing — workers read the
    parent's compiled arrays in place — so on a *small* batch, whose
    execution cannot amortise process shipping and result pickling, it must
    beat the process lane outright; that floor is recorded in
    ``BENCH_runtime.json`` and enforced by ``check_regression.py``.  The
    *large* batch is recorded alongside (no floor) so the crossover that
    ``executor="auto"`` exploits stays visible across PRs.
    """
    grid = build_grid5000_topology()
    config = NetworkConfig(noise_sigma=NOISE_SIGMA, seed=SEED)

    def build_tasks(count: int) -> list[ExecutionTask]:
        programs = [
            binomial_bcast_program(grid, 65_536, root_rank=0),
            flat_scatter_program(grid, 4_096, root_rank=0),
        ]
        return [
            ExecutionTask(
                programs[index % 2], noise_seed=derive_seed(SEED, index)
            )
            for index in range(count)
        ]

    # 8 tasks ~ one practical-sweep curve point: the canonical small batch.
    workloads = {"small_batch": build_tasks(8), "large_batch": build_tasks(320)}
    get_pool(WORKERS)  # warm the process pool
    get_pool(WORKERS, kind="thread")  # and the thread pool

    def run(tasks, lane: str):
        return execute_programs(
            grid,
            tasks,
            config=config,
            collect_traces=False,
            workers=WORKERS,
            executor=lane,
        )

    sections: dict[str, dict] = {}
    lines = [f"Thread vs process executor lanes (workers={WORKERS}):"]
    for name, tasks in workloads.items():
        reference = [r.makespan for r in run(tasks, "thread")]
        assert [r.makespan for r in run(tasks, "process")] == reference
        repetitions = 20 if name == "small_batch" else 3
        seconds = {
            lane: _best_of(lambda lane=lane: run(tasks, lane), repetitions)
            for lane in ("thread", "process")
        }
        speedup = seconds["process"] / seconds["thread"]
        sections[name] = {
            "tasks": len(tasks),
            "seconds": seconds,
            "speedup_thread_vs_process": speedup,
        }
        lines.append(
            f"  {name} ({len(tasks)} tasks): thread "
            f"{seconds['thread'] * 1e3:7.2f} ms, process "
            f"{seconds['process'] * 1e3:7.2f} ms  "
            f"(thread {speedup:.2f}x process)"
        )
    emit("\n".join(lines))
    emit_json(
        "thread_vs_process",
        {
            "grid": "grid5000-table3",
            "noise_sigma": NOISE_SIGMA,
            "seed": SEED,
            "workers": WORKERS,
            "shared_memory": shared_memory_available(),
            **sections,
        },
        path=BENCH_RUNTIME_JSON_FILE,
    )
    # The acceptance bar: on the small batch the shipping-free thread lane
    # must beat process fan-out.
    assert sections["small_batch"]["speedup_thread_vs_process"] >= 1.1


def test_remote_loopback_lane():
    """The distributed lane in loopback: remote agents vs the process pool.

    Two auto-spawned loopback agents (one worker each) serve the full
    practical sweep with ``executor="remote"``; the local process lane runs
    the same sweep at the same worker count.  Both are bit-identical — the
    timings measure pure orchestration cost: wire framing plus socket hops
    versus shared-memory handles plus result pickling.  The recorded floor
    (enforced by ``check_regression.py``) requires the loopback remote lane
    to retain at least half the process lane's throughput, so the wire
    protocol can never silently become the bottleneck; across real machines
    the lane then *adds* capacity no local pool has.
    """
    config = PracticalStudyConfig(noise_sigma=NOISE_SIGMA, seed=SEED)
    get_pool(WORKERS)  # warm the process pool
    remote_pool = get_pool(WORKERS, kind="remote")  # spawn loopback agents

    def sweep(replicas: int, lane: str):
        return run_practical_study(
            config, replicas=replicas, workers=WORKERS, executor=lane
        )

    reference = sweep(1, "process")
    remote = sweep(1, "remote")
    assert np.array_equal(reference.measured, remote.measured)
    assert np.array_equal(
        reference.baseline_measured, remote.baseline_measured
    )

    sections: dict[str, dict] = {}
    lines = [
        "Remote loopback lane (full practical sweep, "
        f"{len(remote_pool._agents)} agents, workers={WORKERS}):"
    ]
    for section, replicas, repetitions in (
        ("plain", 1, 5),
        ("replicated", REPLICAS, 3),
    ):
        seconds = {
            lane: _best_of(lambda lane=lane: sweep(replicas, lane), repetitions)
            for lane in ("process", "remote")
        }
        speedup = seconds["process"] / seconds["remote"]
        sections[section] = {
            "replicas": replicas,
            "seconds": seconds,
            "speedup_remote_vs_process": speedup,
        }
        lines.append(
            f"  {section}: process {seconds['process'] * 1e3:7.1f} ms, "
            f"remote {seconds['remote'] * 1e3:7.1f} ms  "
            f"(remote {speedup:.2f}x process)"
        )
    emit("\n".join(lines))
    emit_json(
        "remote_loopback",
        {
            "grid": "grid5000-table3",
            "noise_sigma": NOISE_SIGMA,
            "seed": SEED,
            "workers": WORKERS,
            "agents": len(remote_pool._agents),
            **sections,
        },
        path=BENCH_RUNTIME_JSON_FILE,
    )
    # The acceptance bar: wire framing + socket hops must cost the loopback
    # remote lane at most half the process lane's throughput.
    assert sections["plain"]["speedup_remote_vs_process"] >= 0.5


def test_chained_pipeline_throughput():
    """The warm-chaining workload: batched engine vs the scalar reference."""
    config = PracticalStudyConfig(
        message_sizes=(65_536, 262_144, 1_048_576),
        noise_sigma=NOISE_SIGMA,
        seed=SEED,
    )
    kwargs = dict(stages=("scatter", "alltoall"), repeat=2)

    reference = run_chained_study(config, engine="scalar", **kwargs)
    batched = run_chained_study(config, **kwargs)
    assert np.array_equal(batched.warm, reference.warm)
    assert np.array_equal(batched.fresh, reference.fresh)

    elapsed = {
        engine: _best_of(
            lambda engine=engine: run_chained_study(config, engine=engine, **kwargs),
            3,
        )
        for engine in ("scalar", "batched")
    }
    speedup = elapsed["scalar"] / elapsed["batched"]
    gains = batched.overlap_gain()
    emit(
        "Chained pipeline study (scatter->alltoall x2, 3 sizes): "
        f"scalar {elapsed['scalar'] * 1e3:.1f} ms, "
        f"batched {elapsed['batched'] * 1e3:.1f} ms ({speedup:.1f}x); "
        f"overlap gain {gains.min():.3f}..{gains.max():.3f}"
    )
    emit_json(
        "chained_pipeline",
        {
            "seconds": elapsed,
            "speedup": speedup,
            "overlap_gain": gains.tolist(),
            "stages": list(batched.stage_names),
        },
        path=BENCH_RUNTIME_JSON_FILE,
    )
    assert speedup >= 2.0


def test_remote_skewed_fleet():
    """Throughput-proportional routing on a skewed fleet: cost vs count.

    Two loopback agents, one worker each — but one agent runs with
    ``--slowdown 8``, emulating a box an eighth as fast.  Both balancing
    modes drain the same batch of fixed-duration diagnostic jobs:

    * **count** — the PR 5 router: lowest in-flight count per worker, so
      the slow agent receives half the jobs and the drain ends at its pace;
    * **cost** — the default: ETA routing over each agent's estimated
      throughput, bounded per-agent queues and work stealing, so the fast
      agent absorbs the slow agent's backlog as it drains.

    Results are identical either way (asserted); the recorded
    ``speedup_cost_vs_count`` floor of **>= 1.3x** (enforced by
    ``check_regression.py``) guarantees weighted routing keeps paying on
    skewed fleets.
    """
    from repro.runtime.remote import (
        RemoteStudyPool,
        _diagnostic_sleep,
        _spawn_loopback_agent,
    )

    SLOWDOWN = 8.0
    JOBS = 24
    NAP = 0.02  # seconds per job at full speed

    fast_process, fast_address = _spawn_loopback_agent(1)
    slow_process, slow_address = _spawn_loopback_agent(1, slowdown=SLOWDOWN)
    try:

        def drain(balancing: str) -> None:
            pool = RemoteStudyPool(
                hosts=(fast_address, slow_address),
                balancing=balancing,
                heartbeat=0.0,
            )
            try:
                handles = [
                    pool.submit(_diagnostic_sleep, (NAP, index), units=1.0)
                    for index in range(JOBS)
                ]
                assert [handle.get(timeout=120) for handle in handles] == list(
                    range(JOBS)
                )
            finally:
                pool.close()

        for mode in ("count", "cost"):
            drain(mode)  # warm both paths (agent pools, import caches)
        seconds = {
            mode: _best_of(lambda mode=mode: drain(mode), 3)
            for mode in ("count", "cost")
        }
        speedup = seconds["count"] / seconds["cost"]
    finally:
        for process in (fast_process, slow_process):
            process.terminate()
            process.wait(timeout=15)

    emit(
        f"Remote skewed fleet ({JOBS} x {NAP * 1e3:.0f} ms jobs, "
        f"1 agent at 1/{SLOWDOWN:.0f} speed): "
        f"count {seconds['count'] * 1e3:7.1f} ms, "
        f"cost {seconds['cost'] * 1e3:7.1f} ms  "
        f"(cost {speedup:.2f}x count)"
    )
    emit_json(
        "remote_skewed",
        {
            "jobs": JOBS,
            "job_seconds": NAP,
            "slowdown": SLOWDOWN,
            "agents": 2,
            "seconds": seconds,
            "speedup_cost_vs_count": speedup,
        },
        path=BENCH_RUNTIME_JSON_FILE,
    )
    # The acceptance bar: cost balancing must keep beating count balancing
    # on a skewed fleet by at least 1.3x.
    assert speedup >= 1.3


def test_remote_chaos_overhead():
    """The price of resilience on a healthy fleet: hardened vs bare lane.

    The chaos hardening (heartbeat monitor, per-frame deadlines, probation
    and reconnect bookkeeping, local-lane degradation machinery) must be
    effectively free when nothing goes wrong.  Two loopback agents drain
    the same batch of fixed-duration diagnostic jobs twice:

    * **bare** — the PR 5 lane: no heartbeat loop, no frame deadlines, no
      reconnect probation, hard failure on agent loss;
    * **hardened** — the production defaults plus an armed frame deadline:
      heartbeat pings, deadline tracking on every frame, probation-ready
      monitor thread, local-lane fallback wired in (``faults`` stays off —
      the injection layer itself must cost zero when unused).

    The recorded ``overhead_speedup`` floor of **>= 0.9x** (enforced by
    ``check_regression.py``) guarantees resilience stays within 10% of the
    unguarded lane on a healthy fleet.
    """
    from repro.runtime.remote import (
        RemoteStudyPool,
        _diagnostic_sleep,
        _spawn_loopback_agent,
    )

    JOBS = 24
    NAP = 0.02  # seconds per job

    first_process, first_address = _spawn_loopback_agent(1)
    second_process, second_address = _spawn_loopback_agent(1)
    hosts = (first_address, second_address)
    variants = {
        "bare": dict(
            heartbeat=0.0, frame_timeout=0.0, reconnect=False, fallback="fail"
        ),
        "hardened": dict(frame_timeout=30.0),  # + default heartbeat/reconnect
    }
    try:

        def drain(options: dict) -> None:
            pool = RemoteStudyPool(hosts=hosts, **options)
            try:
                handles = [
                    pool.submit(_diagnostic_sleep, (NAP, index), units=1.0)
                    for index in range(JOBS)
                ]
                assert [handle.get(timeout=120) for handle in handles] == list(
                    range(JOBS)
                )
            finally:
                pool.close()

        for options in variants.values():
            drain(options)  # warm both paths (agent pools, import caches)
        seconds = {
            name: _best_of(lambda options=options: drain(options), 3)
            for name, options in variants.items()
        }
        overhead_speedup = seconds["bare"] / seconds["hardened"]
    finally:
        for process in (first_process, second_process):
            process.terminate()
            process.wait(timeout=15)

    emit(
        f"Remote chaos hardening overhead ({JOBS} x {NAP * 1e3:.0f} ms jobs, "
        "healthy 2-agent fleet): "
        f"bare {seconds['bare'] * 1e3:7.1f} ms, "
        f"hardened {seconds['hardened'] * 1e3:7.1f} ms  "
        f"(hardened retains {overhead_speedup:.2f}x)"
    )
    emit_json(
        "remote_chaos",
        {
            "jobs": JOBS,
            "job_seconds": NAP,
            "agents": 2,
            "seconds": seconds,
            "overhead_speedup": overhead_speedup,
        },
        path=BENCH_RUNTIME_JSON_FILE,
    )
    # The acceptance bar: on a healthy fleet the hardened lane must retain
    # at least 90% of the bare lane's throughput.
    assert overhead_speedup >= 0.9
