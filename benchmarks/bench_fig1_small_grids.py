"""Figure 1 — mean completion time of a 1 MB broadcast, 2 to 10 clusters.

Paper set-up: random grids drawn from Table 2, 10 000 iterations, seven
heuristics (Flat Tree, FEF, ECEF, ECEF-LA, ECEF-LAt, ECEF-LAT, BottomUp).
Expected shape: Flat Tree worst and growing with the cluster count, FEF below
it, the ECEF family best and nearly flat, BottomUp in between.
"""

from __future__ import annotations

from conftest import bench_iterations, emit

from repro.experiments.config import SimulationStudyConfig
from repro.experiments.report import render_series_table
from repro.experiments.simulation_study import run_simulation_study


def _run_figure1():
    config = SimulationStudyConfig.figure1(iterations=bench_iterations(300))
    return run_simulation_study(config)


def test_figure1_small_grids(benchmark):
    result = benchmark.pedantic(_run_figure1, rounds=1, iterations=1)
    series = {name: result.series(name) for name in result.heuristic_names}
    emit(
        render_series_table(
            "clusters",
            result.cluster_counts,
            series,
            title=(
                "Figure 1 — mean completion time (s), 1 MB broadcast, "
                f"{result.config.iterations} iterations"
            ),
        )
    )
    # Shape assertions matching the paper's discussion of Figure 1.
    means = result.mean_completion_times()
    flat = result.heuristic_names.index("Flat Tree")
    ecef = result.heuristic_names.index("ECEF")
    assert means[-1, flat] == means[-1].max()
    assert means[-1, ecef] < means[-1, flat]
