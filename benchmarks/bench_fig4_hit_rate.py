"""Figure 4 — hit rate of the ECEF-like heuristics against the global minimum.

Paper methodology: for each Monte-Carlo iteration the "global minimum" is the
best makespan achieved by any of the four ECEF-like heuristics; the hit rate
of a heuristic is the number of iterations where it matches that minimum.

Paper finding: ECEF, ECEF-LA and ECEF-LAt lose efficiency as the cluster count
grows while ECEF-LAT stays roughly constant around 45 %.  **Known divergence**
(see EXPERIMENTS.md): under our pLogP timing model the grid-aware lookaheads'
T-signal (the spread between the largest remaining broadcast times, which
shrinks like 1/n) is drowned by the per-pair gap variance for large cluster
counts, so ECEF/ECEF-LA keep the highest hit rates instead.  The benchmark
still regenerates the figure's rows and asserts the parts of the claim that do
transfer: the ECEF family collectively dominates the global minimum and the
figure-4 methodology (ties counted for every matching heuristic) is honoured.
"""

from __future__ import annotations

from conftest import bench_iterations, emit

from repro.experiments.config import SimulationStudyConfig
from repro.experiments.hit_rate import run_hit_rate_study
from repro.experiments.report import render_hit_rate_table


def _run_figure4():
    config = SimulationStudyConfig.figure4(iterations=bench_iterations(150))
    return run_hit_rate_study(config)


def test_figure4_hit_rate(benchmark):
    result = benchmark.pedantic(_run_figure4, rounds=1, iterations=1)
    counts = {name: result.series(name) for name in result.heuristic_names}
    emit(
        render_hit_rate_table(
            result.cluster_counts,
            counts,
            iterations=result.iterations,
            title="Figure 4 — hit rate of ECEF-like heuristics",
        )
    )
    rates = result.hit_rates()
    # Every iteration has at least one winner, so rates sum to >= 1 per row.
    assert (rates.sum(axis=1) >= 1.0 - 1e-9).all()
    # Each heuristic wins a non-trivial share of the small-grid iterations.
    assert (rates[0] > 0.05).all()
    # The best heuristic of each row matches the global minimum at least ~40 %
    # of the time, the order of magnitude the paper reports for its winner.
    assert (rates.max(axis=1) >= 0.35).all()
