"""Figure 6 — measured completion time on the 88-machine Table 3 grid.

"Measured" here means executed message-by-message on the discrete-event
simulator with mild noise (the paper ran LAM/MPI + modified MagPIe on
GRID5000; see DESIGN.md §4 for the substitution).  The grid-unaware binomial
broadcast ("Default LAM" in the paper's legend) is included.

Expected shape: measurements track the Figure 5 predictions closely; the ECEF
family needs the least time (< 3 s for 4 MB in the paper), the Flat Tree is
several times slower and even loses to the grid-unaware binomial tree.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.experiments.config import PracticalStudyConfig
from repro.experiments.practical_study import BINOMIAL_BASELINE_NAME, run_practical_study
from repro.experiments.report import render_table


def _run_figure6():
    config = PracticalStudyConfig(noise_sigma=0.03, include_binomial_baseline=True)
    return run_practical_study(config)


def test_figure6_measured_times(benchmark):
    result = benchmark.pedantic(_run_figure6, rounds=1, iterations=1)
    emit(
        render_table(
            result.as_table(which="measured"),
            title=(
                "Figure 6 — measured (simulated) completion time (s) for a broadcast "
                f"on the 88-machine grid; '{BINOMIAL_BASELINE_NAME}' is the grid-unaware binomial"
            ),
        )
    )
    names = result.heuristic_names
    measured = result.measured
    # Predictions match measurements (paper §7: "fit with a good precision").
    assert np.nanmean(result.prediction_error()) < 0.15
    # Ranking at the largest message size.
    flat = measured[-1, names.index("Flat Tree")]
    ecef_family = min(
        measured[-1, names.index(name)] for name in ("ECEF", "ECEF-LA", "ECEF-LAT", "ECEF-LAt")
    )
    baseline = result.baseline_measured[-1]
    assert ecef_family < baseline < flat
    assert flat > 3 * ecef_family
