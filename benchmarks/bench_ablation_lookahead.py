"""Ablation A1 — lookahead functions for the ECEF-LA family.

The paper's contribution over Bhat's ECEF-LA is the choice of lookahead
function.  Bhat additionally suggested average-based lookaheads; this ablation
compares all of them (plus the no-lookahead degenerate case and the BottomUp
ready-time variant) under the Table 2 Monte-Carlo set-up, reporting mean
completion times for small and large grids.
"""

from __future__ import annotations

from conftest import bench_iterations, emit

from repro.core.bottomup import BottomUp
from repro.core.ecef import ECEFLookahead
from repro.core.lookahead import LOOKAHEAD_FUNCTIONS
from repro.core.registry import register_heuristic
from repro.experiments.config import SimulationStudyConfig
from repro.experiments.report import render_series_table
from repro.experiments.simulation_study import run_simulation_study

ABLATION_KEYS: list[str] = []


def _register_variants() -> None:
    """Register one ECEF-LA variant per lookahead function (idempotent)."""
    if ABLATION_KEYS:
        return
    for name in sorted(LOOKAHEAD_FUNCTIONS):
        key = f"ablation_la_{name}"
        register_heuristic(
            key,
            lambda name=name, key=key: ECEFLookahead(
                name, key=key, display_name=f"LA[{name}]"
            ),
            overwrite=True,
        )
        ABLATION_KEYS.append(key)
    register_heuristic(
        "ablation_bottomup_rt",
        lambda: BottomUp(use_ready_time=True),
        overwrite=True,
    )
    ABLATION_KEYS.append("ablation_bottomup_rt")


def _run_ablation():
    _register_variants()
    config = SimulationStudyConfig(
        cluster_counts=(5, 10, 20, 40),
        iterations=bench_iterations(80),
        heuristics=tuple(ABLATION_KEYS),
    )
    return run_simulation_study(config)


def test_ablation_lookahead_functions(benchmark):
    result = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    series = {name: result.series(name) for name in result.heuristic_names}
    emit(
        render_series_table(
            "clusters",
            result.cluster_counts,
            series,
            title=(
                "Ablation A1 — mean completion time (s) per lookahead function, "
                f"{result.config.iterations} iterations"
            ),
        )
    )
    means = result.mean_completion_times()
    # Sanity: every variant produces finite, positive means and no variant is
    # catastrophically worse than the rest (> 2x) — the lookahead choice is a
    # second-order effect, which is exactly what Figure 3 shows.
    assert (means > 0).all()
    assert means[-1].max() < 2.0 * means[-1].min()
