"""Measured-sweep throughput of the practical study (paper §7, Figure 6).

The practical evaluation executes one discrete-event run per (heuristic,
message size) — plus the binomial baseline — on the Table 3 grid.  This
benchmark times that measured sweep through

* the **per-run scalar loop**: one :func:`execute_program` per task, each on
  an identically-seeded fresh network (the pre-batching cost profile), and
* the **batched engine** (:mod:`repro.simulator.batch`): the whole sweep
  compiled and executed in one pass,

both for the plain Figure 6 sweep and for a noise-replicated sweep (three
noise seeds per curve point — the paper's own measurements averaged repeated
runs), where the batched engine additionally amortises program compilation.
The two engines are bit-identical, so the ratio is pure overhead removed.

Results land in ``benchmarks/results/BENCH_practical.json`` so the speedup
trajectory is tracked across PRs.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import BENCH_PRACTICAL_JSON_FILE, emit, emit_json

from repro.core.costs import GridCostCache
from repro.core.registry import PAPER_HEURISTICS, instantiate
from repro.experiments.config import PRACTICAL_MESSAGE_SIZES, PracticalStudyConfig
from repro.experiments.practical_study import run_alltoall_study, run_practical_study
from repro.mpi.bcast import binomial_bcast_program, grid_aware_bcast_program
from repro.simulator.batch import ExecutionTask, execute_programs
from repro.simulator.network import NetworkConfig
from repro.topology.grid5000 import build_grid5000_topology
from repro.utils.rng import derive_seed

NOISE_SIGMA = 0.03
SEED = 20060331
REPLICAS = 3
REPETITIONS = 7


def _sweep_programs(grid):
    """The Figure 5/6 program set: every heuristic and the binomial baseline
    at every Table 3 message size."""
    programs = []
    for message_size in PRACTICAL_MESSAGE_SIZES:
        costs = GridCostCache.for_grid(grid, message_size)
        for heuristic in instantiate(PAPER_HEURISTICS):
            schedule = heuristic.schedule(grid, message_size, root=0, costs=costs)
            programs.append(
                (
                    heuristic.name,
                    message_size,
                    grid_aware_bcast_program(grid, schedule, message_size),
                )
            )
        programs.append(
            (
                "Default LAM",
                message_size,
                binomial_bcast_program(
                    grid, message_size, root_rank=grid.coordinator_rank(0)
                ),
            )
        )
    return programs


def _tasks(programs, replica: int) -> list[ExecutionTask]:
    return [
        ExecutionTask(
            program, noise_seed=derive_seed(SEED, label, message_size, replica)
        )
        for label, message_size, program in programs
    ]


def _best_of(run, repetitions: int = REPETITIONS) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def test_measured_sweep_throughput():
    """Batched vs scalar measured-sweep wall clock on the Table 3 grid."""
    grid = build_grid5000_topology()
    config = NetworkConfig(noise_sigma=NOISE_SIGMA, seed=SEED)
    programs = _sweep_programs(grid)
    plain = _tasks(programs, replica=0)
    replicated = [
        task for replica in range(REPLICAS) for task in _tasks(programs, replica)
    ]

    def runner(tasks, engine):
        return lambda: execute_programs(
            grid, tasks, config=config, collect_traces=False, engine=engine
        )

    # The two engines must agree before their timings mean anything.
    scalar_results = execute_programs(
        grid, plain, config=config, collect_traces=False, engine="scalar"
    )
    batched_results = execute_programs(
        grid, plain, config=config, collect_traces=False, engine="batched"
    )
    assert [r.makespan for r in scalar_results] == [
        r.makespan for r in batched_results
    ]

    timings = {
        "plain": {
            "tasks": len(plain),
            "scalar_seconds": _best_of(runner(plain, "scalar")),
            "batched_seconds": _best_of(runner(plain, "batched")),
        },
        "replicated": {
            "tasks": len(replicated),
            "scalar_seconds": _best_of(runner(replicated, "scalar"), 3),
            "batched_seconds": _best_of(runner(replicated, "batched"), 5),
        },
    }
    for section in timings.values():
        section["speedup"] = section["scalar_seconds"] / section["batched_seconds"]
        section["sweeps_per_second_batched"] = (
            1.0 / section["batched_seconds"]
        )

    lines = [
        "Practical measured-sweep throughput (Table 3 grid, "
        f"{len(PAPER_HEURISTICS)} heuristics + baseline x "
        f"{len(PRACTICAL_MESSAGE_SIZES)} sizes, noise {NOISE_SIGMA}):"
    ]
    for name, section in timings.items():
        lines.append(
            f"  {name:<10} ({section['tasks']:3d} runs): scalar "
            f"{section['scalar_seconds'] * 1e3:7.1f} ms   batched "
            f"{section['batched_seconds'] * 1e3:7.1f} ms   "
            f"({section['speedup']:.1f}x)"
        )
    emit("\n".join(lines))

    emit_json(
        "measured_sweep",
        {
            "grid": "grid5000-table3",
            "noise_sigma": NOISE_SIGMA,
            "seed": SEED,
            "heuristics": list(PAPER_HEURISTICS),
            "message_sizes": list(PRACTICAL_MESSAGE_SIZES),
            "replicas": REPLICAS,
            "timings": timings,
        },
        path=BENCH_PRACTICAL_JSON_FILE,
    )

    # The acceptance bar: the batched engine must beat the per-run scalar
    # loop by at least 5x on the Table 3 measured sweep.
    assert timings["replicated"]["speedup"] >= 5.0
    assert timings["plain"]["speedup"] >= 3.0


def test_practical_study_end_to_end():
    """Wall clock of the full run_practical_study (predictions included)."""
    config = PracticalStudyConfig(noise_sigma=NOISE_SIGMA, seed=SEED)

    elapsed = {}
    reference = None
    for engine in ("scalar", "batched"):
        started = time.perf_counter()
        result = run_practical_study(config, engine=engine)
        elapsed[engine] = time.perf_counter() - started
        if reference is None:
            reference = result
        else:
            assert np.array_equal(result.measured, reference.measured)
    emit(
        "Full practical study (predictions + measured sweep): "
        f"scalar {elapsed['scalar'] * 1e3:.1f} ms, "
        f"batched {elapsed['batched'] * 1e3:.1f} ms"
    )
    emit_json(
        "practical_study_end_to_end",
        {"seconds": elapsed, "speedup": elapsed["scalar"] / elapsed["batched"]},
        path=BENCH_PRACTICAL_JSON_FILE,
    )


def test_alltoall_study_throughput():
    """The new all-to-all scenario: heap-free batched execution shines."""
    config = PracticalStudyConfig(
        message_sizes=(1_024, 4_096), noise_sigma=NOISE_SIGMA, seed=SEED
    )
    elapsed = {}
    for engine in ("scalar", "batched"):
        started = time.perf_counter()
        run_alltoall_study(config, engine=engine)
        elapsed[engine] = time.perf_counter() - started
    speedup = elapsed["scalar"] / elapsed["batched"]
    emit(
        "All-to-all study (direct + grid-aware, 2 chunk sizes): "
        f"scalar {elapsed['scalar'] * 1e3:.1f} ms, "
        f"batched {elapsed['batched'] * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    emit_json(
        "alltoall_study",
        {"seconds": elapsed, "speedup": speedup},
        path=BENCH_PRACTICAL_JSON_FILE,
    )
    assert speedup >= 3.0
