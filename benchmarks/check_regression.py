#!/usr/bin/env python
"""Assert the recorded BENCH_*.json speedup floors.

Run after the benchmark smoke collection (``pytest benchmarks/``), which
regenerates the JSON documents on the current machine; this script then
fails CI if any recorded headline speedup fell below its floor, so the
perf wins of past PRs cannot silently rot:

* batched scheduling engine  >= 10x the seed-style scalar path
  (``BENCH_scheduling.json``),
* batched measured sweep     >=  5x the per-run scalar loop
  (``BENCH_practical.json``, replicated section),
* pipelined runtime          >= 1.5x the pre-runtime worker dispatch
  (``BENCH_runtime.json``, plain and replicated sections),
* thread executor lane       >= 1.1x the process lane on the small-batch
  workload (``BENCH_runtime.json``, thread_vs_process section — the
  shipping-free lane must keep beating shipped fan-out where "auto"
  selects it),
* remote executor lane       >= 0.5x the process lane on the loopback
  practical sweep (``BENCH_runtime.json``, remote_loopback section — wire
  framing and socket hops must never halve the lane's throughput; across
  real machines the lane then adds capacity no local pool has),
* cost-balanced remote routing >= 1.3x count-based routing on the skewed
  two-agent fleet (``BENCH_runtime.json``, remote_skewed section —
  throughput-proportional routing plus work stealing must keep paying when
  agents differ in speed),
* chaos-hardened remote lane  >= 0.9x the bare lane on a healthy fleet
  (``BENCH_runtime.json``, remote_chaos section — heartbeats, frame
  deadlines, reconnect probation and degradation machinery must stay
  within 10% of the unguarded lane when nothing goes wrong),
* schedule-service warm cache >= 3x cold computation on the mixed query
  set (``BENCH_service.json``, service_load section — an LRU schedule
  cache hit must answer well ahead of rebuilding grids, cost matrices
  and schedules; every response is verified bit-identical to the inline
  path before it is timed),
* vectorized gossip round engine >= 20x the scalar per-node reference on
  the 10^4-node draw-free tree workload (``BENCH_gossip.json``,
  gossip_engine section — the flat-array engine is what makes the
  10^5/10^6-node studies feasible; tree is the one protocol without the
  seeded target draw both engines share by construction, so the ratio
  measures the engines themselves; both are verified bit-identical
  before they are timed).

Exit code 0 when every floor holds; 1 with a per-floor report otherwise.
The summary printed here is also surfaced by the CI ``docs`` job, so doc
readers see the currently-enforced floors next to the rendered docs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: (file, path through the JSON document, floor)
FLOORS: tuple[tuple[str, tuple[str, ...], float], ...] = (
    (
        "BENCH_scheduling.json",
        ("monte_carlo_throughput", "speedup_vs_seed_style", "batched"),
        10.0,
    ),
    (
        "BENCH_practical.json",
        ("measured_sweep", "timings", "replicated", "speedup"),
        5.0,
    ),
    (
        "BENCH_runtime.json",
        ("pipelined_end_to_end", "timings", "plain", "speedup_vs_pr2",
         "runtime_pipelined"),
        1.5,
    ),
    (
        "BENCH_runtime.json",
        ("pipelined_end_to_end", "timings", "replicated", "speedup_vs_pr2",
         "runtime_pipelined"),
        1.5,
    ),
    (
        "BENCH_runtime.json",
        ("thread_vs_process", "small_batch", "speedup_thread_vs_process"),
        1.1,
    ),
    (
        "BENCH_runtime.json",
        ("remote_loopback", "plain", "speedup_remote_vs_process"),
        0.5,
    ),
    (
        "BENCH_runtime.json",
        ("remote_skewed", "speedup_cost_vs_count"),
        1.3,
    ),
    (
        "BENCH_runtime.json",
        ("remote_chaos", "overhead_speedup"),
        0.9,
    ),
    (
        "BENCH_service.json",
        ("service_load", "warm_vs_cold_speedup"),
        3.0,
    ),
    (
        "BENCH_gossip.json",
        ("gossip_engine", "speedup_vectorized_vs_scalar"),
        20.0,
    ),
)


def _lookup(document: dict, path: tuple[str, ...]):
    value = document
    for key in path:
        value = value[key]
    return value


def main() -> int:
    failures = []
    for file_name, path, floor in FLOORS:
        target = RESULTS_DIR / file_name
        label = f"{file_name}:{'.'.join(path)}"
        try:
            value = float(_lookup(json.loads(target.read_text()), path))
        except FileNotFoundError:
            failures.append(f"{label}: {target} missing — run `pytest benchmarks/` first")
            continue
        except (KeyError, TypeError, ValueError) as exc:
            failures.append(f"{label}: unreadable ({exc!r})")
            continue
        status = "ok" if value >= floor else "REGRESSION"
        print(f"{status:>10}  {label} = {value:.2f}  (floor {floor})")
        if value < floor:
            failures.append(f"{label}: {value:.2f} < floor {floor}")
    if failures:
        print("\nBenchmark regression floors violated:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nAll benchmark floors hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
