"""Extension A3 — grid-aware scatter and all-to-all (paper §8 future work).

The paper closes by announcing grid-aware schedules for scatter and all-to-all
patterns.  This benchmark exercises our implementation of both on the Table 3
grid and reports, per block size, the simulated completion times of the naive
strategy (direct point-to-point messages) versus the hierarchical grid-aware
strategy (aggregate per cluster, one wide-area message per cluster pair).

Expected: the grid-aware strategies win when the per-message wide-area latency
dominates (small blocks); for large blocks the single coordinator NIC becomes
the bottleneck and the direct strategy catches up — the benchmark reports the
crossover.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.comparison import crossover_points
from repro.experiments.report import render_series_table
from repro.mpi.communicator import GridCommunicator
from repro.topology.grid5000 import build_grid5000_topology

BLOCK_SIZES = (256, 1_024, 4_096, 16_384, 65_536)


def _run_extension():
    comm = GridCommunicator(build_grid5000_topology())
    scatter_aware, scatter_flat, a2a_aware, a2a_direct = [], [], [], []
    for block in BLOCK_SIZES:
        scatter_aware.append(comm.scatter(block, heuristic="ecef_la").measured_time)
        scatter_flat.append(comm.scatter(block, grid_aware=False).measured_time)
        a2a_aware.append(comm.alltoall(block).measured_time)
        a2a_direct.append(comm.alltoall(block, grid_aware=False).measured_time)
    return scatter_aware, scatter_flat, a2a_aware, a2a_direct


def test_extension_scatter_and_alltoall(benchmark):
    scatter_aware, scatter_flat, a2a_aware, a2a_direct = benchmark.pedantic(
        _run_extension, rounds=1, iterations=1
    )
    emit(
        render_series_table(
            "block_bytes",
            list(BLOCK_SIZES),
            {
                "scatter grid-aware": scatter_aware,
                "scatter flat": scatter_flat,
                "alltoall grid-aware": a2a_aware,
                "alltoall direct": a2a_direct,
            },
            title="Extension A3 — scatter / all-to-all completion time (s) on the 88-machine grid",
            precision=4,
        )
    )
    crossings = crossover_points(list(BLOCK_SIZES), a2a_aware, a2a_direct)
    emit(f"alltoall grid-aware/direct crossover near block size(s): {crossings or 'none'}")
    # Grid-aware scatter wins in the latency-dominated regime (small blocks).
    assert scatter_aware[0] < scatter_flat[0]
    # Grid-aware all-to-all saves wide-area messages for the smallest blocks.
    assert a2a_aware[0] < a2a_direct[0] * 2.0
