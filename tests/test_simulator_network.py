"""Tests for repro.simulator.network."""

from __future__ import annotations

import pytest

from repro.simulator.network import NetworkConfig, SimulatedNetwork


class TestNetworkConfig:
    def test_defaults_are_noise_free(self):
        config = NetworkConfig()
        assert config.noise_sigma == 0.0
        assert config.receive_overhead == 0.0

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            NetworkConfig(noise_sigma=-0.1)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            NetworkConfig(receive_overhead=-1.0)


class TestTransmit:
    def test_noise_free_matches_plogp(self, heterogeneous_grid):
        network = SimulatedNetwork(heterogeneous_grid)
        coordinator_0 = heterogeneous_grid.coordinator_rank(0)
        coordinator_1 = heterogeneous_grid.coordinator_rank(1)
        start, release, delivery = network.transmit(coordinator_0, coordinator_1, 1_000, 0.0)
        assert start == 0.0
        assert release == pytest.approx(0.10)
        assert delivery == pytest.approx(0.101)

    def test_nic_occupancy_serialises_sends(self, heterogeneous_grid):
        network = SimulatedNetwork(heterogeneous_grid)
        sender = heterogeneous_grid.coordinator_rank(0)
        network.transmit(sender, heterogeneous_grid.coordinator_rank(1), 1_000, 0.0)
        start, _, _ = network.transmit(sender, heterogeneous_grid.coordinator_rank(2), 1_000, 0.0)
        assert start == pytest.approx(0.10)

    def test_issue_time_after_nic_free_is_respected(self, heterogeneous_grid):
        network = SimulatedNetwork(heterogeneous_grid)
        sender = heterogeneous_grid.coordinator_rank(0)
        start, _, _ = network.transmit(sender, heterogeneous_grid.coordinator_rank(1), 1_000, 5.0)
        assert start == 5.0

    def test_message_counter(self, heterogeneous_grid):
        network = SimulatedNetwork(heterogeneous_grid)
        assert network.message_count == 0
        network.transmit(0, 4, 10, 0.0)
        network.transmit(4, 0, 10, 0.0)
        assert network.message_count == 2

    def test_reset_clears_state(self, heterogeneous_grid):
        network = SimulatedNetwork(heterogeneous_grid)
        network.transmit(0, 4, 10, 0.0)
        network.reset()
        assert network.message_count == 0
        assert network.nic_free_at(0) == 0.0

    def test_rejects_self_transmission(self, heterogeneous_grid):
        network = SimulatedNetwork(heterogeneous_grid)
        with pytest.raises(ValueError):
            network.transmit(3, 3, 10, 0.0)

    def test_receive_overhead_added_to_delivery(self, heterogeneous_grid):
        network = SimulatedNetwork(
            heterogeneous_grid, NetworkConfig(receive_overhead=0.5)
        )
        _, release, delivery = network.transmit(0, 4, 1_000, 0.0)
        assert delivery == pytest.approx(release + 0.001 + 0.5)


class TestNoise:
    def test_noise_is_reproducible(self, heterogeneous_grid):
        a = SimulatedNetwork(heterogeneous_grid, NetworkConfig(noise_sigma=0.1, seed=5))
        b = SimulatedNetwork(heterogeneous_grid, NetworkConfig(noise_sigma=0.1, seed=5))
        assert a.transmit(0, 4, 1_000, 0.0) == b.transmit(0, 4, 1_000, 0.0)

    def test_noise_changes_timings(self, heterogeneous_grid):
        clean = SimulatedNetwork(heterogeneous_grid)
        noisy = SimulatedNetwork(heterogeneous_grid, NetworkConfig(noise_sigma=0.2, seed=5))
        assert clean.transmit(0, 4, 1_000, 0.0) != noisy.transmit(0, 4, 1_000, 0.0)

    def test_noise_keeps_times_positive_and_ordered(self, heterogeneous_grid):
        network = SimulatedNetwork(heterogeneous_grid, NetworkConfig(noise_sigma=0.5, seed=3))
        for _ in range(50):
            start, release, delivery = network.transmit(0, 4, 1_000, 0.0)
            assert 0 <= start <= release <= delivery


class TestMeasurementOracle:
    def test_round_trip_does_not_disturb_nic_state(self, heterogeneous_grid):
        network = SimulatedNetwork(heterogeneous_grid)
        network.transmit(0, 4, 1_000, 0.0)
        busy_before = network.nic_free_at(0)
        oracle = network.round_trip_oracle(0, 4)
        oracle(1_000_000)
        assert network.nic_free_at(0) == busy_before

    def test_round_trip_does_not_disturb_noise_stream(self, heterogeneous_grid):
        """Regression: probing mid-execution must not shift later noise draws."""
        config = NetworkConfig(noise_sigma=0.2, seed=11)
        probed = SimulatedNetwork(heterogeneous_grid, config)
        control = SimulatedNetwork(heterogeneous_grid, config)
        probed.transmit(0, 4, 1_000, 0.0)
        control.transmit(0, 4, 1_000, 0.0)
        oracle = probed.round_trip_oracle(0, 4)
        oracle(1_000_000)  # draws noise internally; must be restored
        assert probed.transmit(4, 0, 1_000, 0.0) == control.transmit(4, 0, 1_000, 0.0)

    def test_round_trip_does_not_inflate_message_count(self, heterogeneous_grid):
        network = SimulatedNetwork(heterogeneous_grid)
        network.transmit(0, 4, 1_000, 0.0)
        oracle = network.round_trip_oracle(0, 4)
        oracle(512)
        oracle(1_024)
        assert network.message_count == 1

    def test_round_trip_probes_from_idle_network(self, heterogeneous_grid):
        """The oracle measures the link itself, ignoring queued NIC backlog."""
        network = SimulatedNetwork(heterogeneous_grid)
        idle_oracle = network.round_trip_oracle(0, 4)
        idle_value = idle_oracle(2_048)
        network.transmit(0, 4, 1_000, 0.0)  # leaves rank 0's NIC busy
        assert idle_oracle(2_048) == pytest.approx(idle_value)

    def test_round_trip_is_repeatable_under_noise(self, heterogeneous_grid):
        network = SimulatedNetwork(
            heterogeneous_grid, NetworkConfig(noise_sigma=0.3, seed=7)
        )
        oracle = network.round_trip_oracle(0, 4)
        assert oracle(4_096) == oracle(4_096)

    def test_round_trip_value(self, heterogeneous_grid):
        network = SimulatedNetwork(heterogeneous_grid)
        oracle = network.round_trip_oracle(
            heterogeneous_grid.coordinator_rank(0),
            heterogeneous_grid.coordinator_rank(2),
        )
        # ping of 0 bytes + pong of 0 bytes: 2 * (g(0) + L) with constant gap 0.5
        assert oracle(0) == pytest.approx(2 * (0.5 + 0.01))

    def test_grid_type_checked(self):
        with pytest.raises(TypeError):
            SimulatedNetwork(grid="not a grid")  # type: ignore[arg-type]
