"""Tier-1 performance smoke tests.

These are deliberately *generous* wall-clock bounds — an order of magnitude
above what the vectorized engine actually needs — so they never flake on slow
CI machines, while still catching a catastrophic regression (e.g. the
scheduling kernel silently falling back to O(n³) pure-Python loops with
per-access re-sorting, or the cost matrices being rebuilt per heuristic).
"""

from __future__ import annotations

import time

from repro.core.batch import BatchedGridCosts, batched_makespans
from repro.core.costs import GridCostCache
from repro.core.registry import PAPER_HEURISTICS, get_heuristic, instantiate
from repro.topology.generators import RandomGridGenerator
from repro.utils.rng import RandomStream

MESSAGE_SIZE = 1_048_576


def _grids(num_clusters: int, count: int):
    generator = RandomGridGenerator(cluster_size=2)
    return [
        generator.generate(num_clusters, RandomStream(seed=seed))
        for seed in range(count)
    ]


def test_ecef_lat_schedule_stays_fast():
    """50 ECEF-LAT schedules on 10-cluster grids must stay well under 2.5 s.

    The vectorized engine does this in a few tens of milliseconds; the bound
    only trips if scheduling regresses by more than an order of magnitude.
    """
    grids = _grids(10, 50)
    heuristic = get_heuristic("ecef_lat_max")
    heuristic.schedule(grids[0], MESSAGE_SIZE)  # warm-up outside the timer
    start = time.perf_counter()
    for grid in grids:
        heuristic.schedule(grid, MESSAGE_SIZE)
    elapsed = time.perf_counter() - start
    assert elapsed < 2.5, f"50 ECEF-LAT schedules took {elapsed:.2f}s (budget 2.5s)"


def test_batched_monte_carlo_stays_fast():
    """One batched 100-grid × 7-heuristic round must stay well under 5 s."""
    grids = _grids(10, 100)
    heuristics = instantiate(PAPER_HEURISTICS)
    start = time.perf_counter()
    caches = [GridCostCache.for_grid(grid, MESSAGE_SIZE) for grid in grids]
    stacked = BatchedGridCosts(caches)
    for heuristic in heuristics:
        assert batched_makespans(heuristic, stacked) is not None
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0, f"batched Monte-Carlo round took {elapsed:.2f}s (budget 5s)"
