"""Tests for repro.core.registry."""

from __future__ import annotations

import pytest

from repro.core.base import SchedulingHeuristic
from repro.core.ecef import ECEF
from repro.core.registry import (
    ECEF_FAMILY,
    PAPER_HEURISTICS,
    available_heuristics,
    get_heuristic,
    instantiate,
    register_heuristic,
)


class TestLookup:
    def test_paper_heuristics_all_registered(self):
        for key in PAPER_HEURISTICS:
            assert isinstance(get_heuristic(key), SchedulingHeuristic)

    def test_ecef_family_subset_of_paper(self):
        assert set(ECEF_FAMILY) <= set(PAPER_HEURISTICS)

    def test_paper_line_up_has_seven_entries(self):
        assert len(PAPER_HEURISTICS) == 7

    def test_display_names_match_figures(self):
        expected = {
            "flat_tree": "Flat Tree",
            "fef": "FEF",
            "ecef": "ECEF",
            "ecef_la": "ECEF-LA",
            "ecef_lat_min": "ECEF-LAt",
            "ecef_lat_max": "ECEF-LAT",
            "bottom_up": "BottomUp",
        }
        for key, name in expected.items():
            assert get_heuristic(key).name == name

    def test_key_normalisation(self):
        assert get_heuristic("ECEF-LA").name == "ECEF-LA"
        assert get_heuristic("  Flat Tree ").name == "Flat Tree"

    def test_unknown_key_lists_alternatives(self):
        with pytest.raises(ValueError, match="known keys"):
            get_heuristic("magic")

    def test_each_call_returns_fresh_instance(self):
        assert get_heuristic("ecef") is not get_heuristic("ecef")

    def test_available_is_sorted(self):
        names = available_heuristics()
        assert names == sorted(names)

    def test_instantiate_preserves_order(self):
        heuristics = instantiate(["fef", "ecef"])
        assert [h.name for h in heuristics] == ["FEF", "ECEF"]


class TestRegistration:
    def test_register_and_use_custom_heuristic(self):
        register_heuristic("custom_test_ecef", ECEF, overwrite=True)
        assert isinstance(get_heuristic("custom_test_ecef"), ECEF)

    def test_register_rejects_duplicates(self):
        register_heuristic("dup_test", ECEF, overwrite=True)
        with pytest.raises(ValueError, match="already registered"):
            register_heuristic("dup_test", ECEF)

    def test_register_rejects_non_callable(self):
        with pytest.raises(TypeError):
            register_heuristic("bad", 42)  # type: ignore[arg-type]

    def test_register_rejects_empty_key(self):
        with pytest.raises(ValueError):
            register_heuristic("   ", ECEF)
