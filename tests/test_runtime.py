"""Tests for the study runtime (repro.runtime): pool, transport, pipeline,
and the distributed remote lane.

The runtime's contract is that *none* of its machinery changes results:
pool reuse across studies, pipelined vs sequential drivers, shared-memory vs
pickle transport, chunking, worker counts — and, for the remote lane, agent
counts, join order, duplicate result delivery and mid-run agent loss — are
all required to be bit-identical, with warm-network chaining verified
against the scalar reference engine.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.experiments.chained_study import ChainedStudyResult, run_chained_study
from repro.experiments.config import PracticalStudyConfig, SimulationStudyConfig
from repro.experiments.practical_study import (
    run_alltoall_study,
    run_practical_study,
    run_scatter_study,
)
from repro.experiments.simulation_study import run_simulation_study
from repro.mpi.alltoall import grid_aware_alltoall_program
from repro.mpi.bcast import binomial_bcast_program
from repro.mpi.scatter import flat_scatter_program
from repro.runtime import wire
from repro.runtime.chunking import (
    AUTO_THREAD_MAX_UNITS,
    CostModel,
    choose_executor,
    load_cost_model,
    partition_by_cost,
    program_cost,
    resolve_executor,
    save_cost_model,
    save_cost_models,
)
from repro.runtime.faults import (
    FAULT_CRASH,
    FAULT_HANG,
    SEND_CORRUPT,
    SEND_DELAY,
    SEND_DROP,
    SEND_OK,
    FaultPlan,
    corrupt_frame,
    resolve_fault_plan,
)
from repro.runtime.pool import (
    StudyPool,
    ThreadStudyPool,
    engage_remote_lane,
    get_pool,
    shutdown_pool,
)
from repro.runtime.remote import (
    DEFAULT_AGENT_PORT,
    AgentServer,
    RemoteStudyPool,
    _diagnostic_sleep,
    _spawn_loopback_agent,
    parse_hosts,
    resolve_hosts,
)
from repro.runtime.transport import (
    ArrayShipment,
    resolve_transport,
    shared_memory_available,
    sweep_shipments,
)
from repro.runtime.pipeline import PipelinedExecutor
from repro.simulator.batch import ExecutionTask, execute_programs
from repro.simulator.network import NetworkConfig
from repro.utils.rng import derive_seed
from repro.utils.workers import resolve_workers


TRANSPORT_PARAMS = ["pickle"] + (["shm"] if shared_memory_available() else [])


@pytest.fixture(scope="module")
def pool():
    """One persistent pool shared by every test of this module (that is the
    point: reuse must be invisible in the results)."""
    pool = get_pool(2)
    yield pool
    shutdown_pool()


@pytest.fixture(scope="module")
def thread_pool():
    """The persistent thread-lane pool (shutdown_pool tears both lanes down)."""
    return get_pool(2, kind="thread")


def _makespans(results) -> list[float]:
    return [result.makespan for result in results]


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3, "REPRO_PRACTICAL_WORKERS") == 3

    def test_specific_env_var_preferred_over_shared(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRACTICAL_WORKERS", "2")
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None, "REPRO_PRACTICAL_WORKERS") == 2

    def test_shared_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_PRACTICAL_WORKERS", raising=False)
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None, "REPRO_PRACTICAL_WORKERS") == 5

    def test_default_is_in_process(self, monkeypatch):
        monkeypatch.delenv("REPRO_MC_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None, "REPRO_MC_WORKERS") == 0

    def test_garbage_env_var_named_in_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None, "REPRO_MC_WORKERS")

    def test_negative_clamps_to_zero(self):
        assert resolve_workers(-3) == 0

    def test_shared_env_reaches_studies(self, monkeypatch, heterogeneous_grid):
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        config = PracticalStudyConfig(message_sizes=(1_000,), heuristics=("ecef",))
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            run_practical_study(config, grid=heterogeneous_grid)


class TestStudyPool:
    def test_rejects_single_worker(self):
        with pytest.raises(ValueError, match="at least 2"):
            StudyPool(1)

    def test_get_pool_reuses_alive_pool(self, pool):
        assert get_pool(2) is pool

    def test_closed_pool_rejects_work(self):
        small = StudyPool(2)
        small.close()
        assert not small.alive
        with pytest.raises(RuntimeError, match="closed"):
            small.submit(len, ())


class TestArrayShipment:
    @pytest.mark.parametrize("transport", TRANSPORT_PARAMS)
    def test_round_trip_is_bitwise(self, transport):
        arrays = {
            "floats": np.linspace(0.0, 1.0, 37).reshape(37),
            "matrix": np.arange(24, dtype=np.float64).reshape(2, 3, 4) * np.pi,
            "ints": np.arange(11, dtype=np.int64),
            "empty": np.empty(0, dtype=np.float64),
        }
        shipment = ArrayShipment.pack(arrays, transport=transport)
        try:
            loaded = shipment.load()
            assert set(loaded) == set(arrays)
            for name, array in arrays.items():
                assert loaded[name].dtype == array.dtype
                assert loaded[name].shape == array.shape
                assert np.array_equal(loaded[name], array)
        finally:
            shipment.close()
            shipment.unlink()

    @pytest.mark.parametrize("transport", TRANSPORT_PARAMS)
    def test_survives_pickling(self, transport):
        import pickle

        arrays = {"data": np.arange(100, dtype=np.float64) ** 0.5}
        shipment = ArrayShipment.pack(arrays, transport=transport)
        try:
            clone = pickle.loads(pickle.dumps(shipment))
            assert np.array_equal(clone.load()["data"], arrays["data"])
            clone.close()
        finally:
            shipment.close()
            shipment.unlink()

    def test_unlink_is_idempotent(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this platform")
        shipment = ArrayShipment.pack({"x": np.ones(4)}, transport="shm")
        shipment.unlink()
        shipment.unlink()

    def test_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            resolve_transport("carrier-pigeon")


class TestExecuteProgramsTransports:
    """Shared-memory vs pickle vs legacy shipping is bit-identical."""

    @pytest.fixture(scope="class")
    def tasks(self, grid5000):
        programs = [
            binomial_bcast_program(grid5000, 65_536, root_rank=0),
            flat_scatter_program(grid5000, 4_096, root_rank=0),
        ]
        return [
            ExecutionTask(
                programs[index % 2], noise_seed=derive_seed(5, index)
            )
            for index in range(10)
        ]

    @pytest.fixture(scope="class")
    def reference(self, grid5000, tasks):
        return execute_programs(
            grid5000,
            tasks,
            config=NetworkConfig(noise_sigma=0.05, seed=5),
            collect_traces=True,
        )

    @pytest.mark.parametrize("transport", TRANSPORT_PARAMS + ["legacy"])
    def test_worker_transport_bit_identical(
        self, grid5000, tasks, reference, transport, pool
    ):
        fanned = execute_programs(
            grid5000,
            tasks,
            config=NetworkConfig(noise_sigma=0.05, seed=5),
            collect_traces=True,
            workers=2,
            transport=transport,
        )
        assert _makespans(fanned) == _makespans(reference)
        assert [r.completion_times for r in fanned] == [
            r.completion_times for r in reference
        ]
        assert [r.trace for r in fanned] == [r.trace for r in reference]

    def test_rejects_unknown_transport(self, grid5000, tasks):
        with pytest.raises(ValueError, match="transport"):
            execute_programs(grid5000, tasks, transport="smoke-signals")


class TestWarmChaining:
    """reset_network=False tasks mirror the scalar engine's warm networks."""

    def _chain(self, grid):
        stages = [
            binomial_bcast_program(grid, 65_536, root_rank=0),
            flat_scatter_program(grid, 2_048, root_rank=0),
            binomial_bcast_program(grid, 16_384, root_rank=0),
        ]
        return [ExecutionTask(stages[0], noise_seed=31)] + [
            ExecutionTask(program, reset_network=False) for program in stages[1:]
        ]

    @pytest.mark.parametrize("sigma", [0.0, 0.08])
    def test_chain_matches_scalar_reference(self, grid5000, sigma):
        tasks = self._chain(grid5000)
        config = NetworkConfig(noise_sigma=sigma, seed=9)
        batched = execute_programs(grid5000, tasks, config=config)
        scalar = execute_programs(grid5000, tasks, config=config, engine="scalar")
        assert _makespans(batched) == _makespans(scalar)
        assert [r.completion_times for r in batched] == [
            r.completion_times for r in scalar
        ]
        assert [r.trace for r in batched] == [r.trace for r in scalar]

    def test_warm_chain_differs_from_fresh_networks(self, grid5000):
        tasks = self._chain(grid5000)
        fresh_tasks = [
            ExecutionTask(task.program, noise_seed=31) for task in tasks
        ]
        config = NetworkConfig(noise_sigma=0.0, seed=9)
        warm = execute_programs(grid5000, tasks, config=config)
        fresh = execute_programs(grid5000, fresh_tasks, config=config)
        # The head of the chain starts cold, so it matches its fresh twin;
        # every later stage queues behind the warm NIC backlog.
        assert warm[0].makespan == fresh[0].makespan
        assert all(
            warm[index].makespan > fresh[index].makespan
            for index in range(1, len(tasks))
        )

    @pytest.mark.parametrize("transport", TRANSPORT_PARAMS)
    def test_chains_never_split_across_workers(
        self, grid5000, transport, pool
    ):
        tasks = []
        for chain_index in range(6):
            chain = self._chain(grid5000)
            tasks.append(
                ExecutionTask(
                    chain[0].program, noise_seed=derive_seed(31, chain_index)
                )
            )
            tasks.extend(chain[1:])
        config = NetworkConfig(noise_sigma=0.08, seed=9)
        inline = execute_programs(grid5000, tasks, config=config)
        fanned = execute_programs(
            grid5000, tasks, config=config, workers=2, transport=transport
        )
        assert _makespans(fanned) == _makespans(inline)

    def test_first_task_cannot_chain(self, grid5000):
        program = binomial_bcast_program(grid5000, 1_024, root_rank=0)
        with pytest.raises(ValueError, match="first task"):
            execute_programs(
                grid5000, [ExecutionTask(program, reset_network=False)]
            )

    def test_chained_task_rejects_own_seed(self, grid5000):
        program = binomial_bcast_program(grid5000, 1_024, root_rank=0)
        tasks = [
            ExecutionTask(program),
            ExecutionTask(program, reset_network=False, noise_seed=3),
        ]
        with pytest.raises(ValueError, match="noise_seed"):
            execute_programs(grid5000, tasks)


class TestChainedStudy:
    def test_scalar_reference_and_shapes(self, heterogeneous_grid):
        config = PracticalStudyConfig(
            message_sizes=(2_048, 16_384), noise_sigma=0.05
        )
        result = run_chained_study(
            config, grid=heterogeneous_grid, stages=("scatter", "alltoall")
        )
        reference = run_chained_study(
            config,
            grid=heterogeneous_grid,
            stages=("scatter", "alltoall"),
            engine="scalar",
        )
        assert isinstance(result, ChainedStudyResult)
        assert result.warm.shape == (2, 2)
        assert result.fresh.shape == (2, 2)
        assert np.array_equal(result.warm, reference.warm)
        assert np.array_equal(result.fresh, reference.fresh)
        assert np.all(result.warm[:, 1:] >= result.fresh[:, 1:])
        table = result.as_table()
        assert {"message_size", "pipelined", "barrier", "overlap_gain"} == set(
            table[0]
        )

    def test_repeat_builds_numbered_stages(self, heterogeneous_grid):
        config = PracticalStudyConfig(message_sizes=(4_096,), noise_sigma=0.0)
        result = run_chained_study(
            config, grid=heterogeneous_grid, stages=("bcast",), repeat=3
        )
        assert result.stage_names == ["bcast#1", "bcast#2", "bcast#3"]

    def test_rejects_unknown_stage(self, heterogeneous_grid):
        with pytest.raises(ValueError, match="unknown collective"):
            run_chained_study(grid=heterogeneous_grid, stages=("gather",))


class TestPipelinedDriver:
    """Pipelined vs sequential practical study, pool reuse, transports."""

    CONFIG = dict(
        message_sizes=(65_536, 1_048_576, 4_194_304),
        noise_sigma=0.08,
        heuristics=("ecef", "fef", "flat_tree"),
    )

    def test_pipelined_matches_sequential(self, pool):
        config = PracticalStudyConfig(**self.CONFIG)
        sequential = run_practical_study(config, workers=0, pipeline=False)
        pipelined = run_practical_study(config, workers=2, pipeline=True)
        assert np.array_equal(sequential.measured, pipelined.measured)
        assert np.array_equal(
            sequential.baseline_measured, pipelined.baseline_measured
        )
        assert np.array_equal(sequential.predicted, pipelined.predicted)

    def test_pipeline_without_pool_degrades_to_sequential(self):
        config = PracticalStudyConfig(**self.CONFIG)
        inline = run_practical_study(config)
        forced = run_practical_study(config, workers=0, pipeline=True)
        assert np.array_equal(inline.measured, forced.measured)

    def test_pipeline_requires_batched_engine(self):
        config = PracticalStudyConfig(**self.CONFIG)
        with pytest.raises(ValueError, match="batched"):
            run_practical_study(config, engine="scalar", pipeline=True)

    def test_legacy_transport_forces_sequential_driver(self, pool):
        """transport='legacy' cannot pipeline; with workers it must fall
        back to the sequential legacy dispatch, not crash mid-sweep."""
        config = PracticalStudyConfig(**self.CONFIG)
        reference = run_practical_study(config)
        legacy = run_practical_study(config, workers=2, transport="legacy")
        assert np.array_equal(reference.measured, legacy.measured)
        with pytest.raises(ValueError, match="legacy"):
            run_practical_study(config, pipeline=True, transport="legacy")

    def test_explicit_pool_implies_fanout(self, pool):
        """Passing pool= without workers= must use the pool, not silently
        run in-process — and stay bit-identical either way."""
        config = PracticalStudyConfig(**self.CONFIG)
        reference = run_practical_study(config)
        pooled = run_practical_study(config, pool=pool)
        assert np.array_equal(reference.measured, pooled.measured)
        simulation_config = SimulationStudyConfig(
            cluster_counts=(3,), iterations=20, seed=29
        )
        assert np.array_equal(
            run_simulation_study(simulation_config).makespans,
            run_simulation_study(simulation_config, pool=pool).makespans,
        )

    def test_abort_releases_pending_shipments(self, grid5000, pool):
        executor = PipelinedExecutor(
            grid5000, config=NetworkConfig(noise_sigma=0.05, seed=3), pool=pool
        )
        for index in range(2):
            executor.submit(
                [
                    ExecutionTask(
                        binomial_bcast_program(grid5000, 4_096, root_rank=0),
                        noise_seed=derive_seed(3, index),
                    )
                ]
            )
        executor.abort()
        with pytest.raises(RuntimeError, match="finish"):
            executor.finish()

    @pytest.mark.parametrize("transport", TRANSPORT_PARAMS)
    def test_transport_invariance(self, transport, pool):
        config = PracticalStudyConfig(**self.CONFIG)
        reference = run_practical_study(config)
        shipped = run_practical_study(config, workers=2, transport=transport)
        assert np.array_equal(reference.measured, shipped.measured)

    def test_pool_reuse_across_two_studies_is_bit_identical(self, pool):
        """Back-to-back studies on one pool == fresh runs of each study."""
        practical_config = PracticalStudyConfig(**self.CONFIG)
        simulation_config = SimulationStudyConfig(
            cluster_counts=(3, 4), iterations=30, seed=17
        )
        first = run_practical_study(practical_config, workers=2, pool=pool)
        second = run_simulation_study(simulation_config, workers=2, pool=pool)
        third = run_practical_study(practical_config, workers=2, pool=pool)
        assert np.array_equal(first.measured, third.measured)
        assert np.array_equal(
            first.baseline_measured, third.baseline_measured
        )
        reference = run_practical_study(practical_config)
        simulation_reference = run_simulation_study(simulation_config)
        assert np.array_equal(first.measured, reference.measured)
        assert np.array_equal(
            second.makespans, simulation_reference.makespans
        )

    def test_executor_finish_is_single_use(self, grid5000):
        executor = PipelinedExecutor(grid5000)
        executor.submit(
            [ExecutionTask(binomial_bcast_program(grid5000, 1_024, root_rank=0))]
        )
        assert len(executor.finish()) == 1
        with pytest.raises(RuntimeError, match="finish"):
            executor.finish()
        with pytest.raises(RuntimeError, match="finish"):
            executor.submit([])


class TestSimulationStudyTransports:
    """Seed-shipping vs stack-shipping Monte-Carlo drivers are bit-identical."""

    CONFIG = dict(cluster_counts=(3, 5), iterations=40, seed=23)

    @pytest.mark.parametrize("transport", TRANSPORT_PARAMS)
    def test_stack_shipping_matches_inline(self, transport, pool):
        config = SimulationStudyConfig(**self.CONFIG)
        inline = run_simulation_study(config)
        shipped = run_simulation_study(config, workers=2, transport=transport)
        assert np.array_equal(inline.makespans, shipped.makespans)

    def test_stack_shipping_with_fallback_heuristic(self, pool):
        """A heuristic without a batched kernel routes its chunks through the
        seed-shipping path; results must still be bit-identical."""
        config = SimulationStudyConfig(
            cluster_counts=(3,),
            iterations=12,
            seed=23,
            heuristics=("ecef", "optimal"),
        )
        inline = run_simulation_study(config)
        shipped = run_simulation_study(config, workers=2, transport="pickle")
        assert np.array_equal(inline.makespans, shipped.makespans)


class TestReplicas:
    CONFIG = dict(
        message_sizes=(65_536, 1_048_576),
        noise_sigma=0.08,
        heuristics=("ecef", "fef"),
    )

    def test_rejects_bad_replicas(self):
        config = PracticalStudyConfig(**self.CONFIG)
        with pytest.raises(ValueError, match="replicas"):
            run_practical_study(config, replicas=0)

    def test_single_replica_is_backward_compatible(self):
        """replicas=1 keeps the historical (seed, label, size) noise seeds."""
        config = PracticalStudyConfig(**self.CONFIG)
        result = run_practical_study(config, replicas=1)
        assert result.num_replicas == 1
        assert np.array_equal(result.measured, result.measured_replicas[0])
        assert np.all(result.measured_std == 0.0)

    def test_replica_columns_and_aggregation(self, pool):
        config = PracticalStudyConfig(**self.CONFIG)
        result = run_practical_study(config, replicas=3)
        assert result.num_replicas == 3
        assert result.measured_replicas.shape == (3, 2, 2)
        assert result.baseline_replicas.shape == (3, 2)
        assert np.array_equal(
            result.measured, result.measured_replicas.mean(axis=0)
        )
        assert np.array_equal(
            result.measured_std, result.measured_replicas.std(axis=0)
        )
        assert np.all(result.measured_std > 0)
        # replicas are genuinely independent measurements
        assert not np.array_equal(
            result.measured_replicas[0], result.measured_replicas[1]
        )
        # and the same at any worker count / driver
        fanned = run_practical_study(config, replicas=3, workers=2)
        assert np.array_equal(
            result.measured_replicas, fanned.measured_replicas
        )
        assert np.array_equal(
            result.baseline_replicas, fanned.baseline_replicas
        )

    def test_replica_series_accessor(self):
        config = PracticalStudyConfig(**self.CONFIG)
        result = run_practical_study(config, replicas=2)
        series = result.measured_series("ECEF", replica=1)
        assert series == result.measured_replicas[1, :, 0].tolist()
        with pytest.raises(ValueError, match="replica"):
            result.measured_series("ECEF", replica=5)


class TestChunkingUnit:
    """Unit tests for the cost-aware chunking and executor-selection layer."""

    def test_partition_balances_skewed_workload(self):
        # Synthetic skew: one task costs 20x the other nineteen (the
        # all-to-all-vs-bcast ratio on the Table 3 grid).
        costs = [20.0] + [1.0] * 19
        units = [(index, index + 1) for index in range(20)]
        chunks = partition_by_cost(units, costs, 4)
        loads = [sum(costs[start:end]) for start, end in chunks]
        # The expensive task gets its own chunk; the cheap tasks spread out.
        assert max(loads) == 20.0
        assert min(loads) >= 5.0
        # A task-count split of the same workload is badly unbalanced.
        fixed_loads = [sum(costs[start : start + 5]) for start in range(0, 20, 5)]
        assert max(fixed_loads) == 24.0

    def test_partition_isolates_heavy_tail_unit(self):
        # Regression: a ~20x unit at the *end* of the batch (where
        # run_chained_study's scatter->alltoall ordering puts it) must get
        # its own chunk instead of absorbing every cheap unit before it.
        costs = [1.0] * 19 + [20.0]
        units = [(index, index + 1) for index in range(20)]
        chunks = partition_by_cost(units, costs, 4)
        loads = [sum(costs[start:end]) for start, end in chunks]
        assert max(loads) == 20.0
        assert chunks[-1] == (19, 20)

    def test_partition_splits_two_units_across_two_chunks(self):
        assert partition_by_cost([(0, 1), (1, 2)], [1.0, 100.0], 2) == [
            (0, 1),
            (1, 2),
        ]

    def test_partition_covers_every_task_in_order(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        units = [(index, index + 1) for index in range(8)]
        chunks = partition_by_cost(units, costs, 3)
        assert chunks[0][0] == 0
        assert chunks[-1][1] == 8
        for (_, left_end), (right_start, _) in zip(chunks, chunks[1:]):
            assert left_end == right_start

    def test_partition_never_splits_chain_units(self):
        units = [(0, 3), (3, 4), (4, 8)]
        costs = [30.0, 1.0, 8.0]
        chunks = partition_by_cost(units, costs, 2)
        assert chunks == [(0, 3), (3, 8)]

    def test_partition_caps_chunks_at_unit_count(self):
        assert partition_by_cost([(0, 5)], [7.0], 4) == [(0, 5)]

    def test_partition_rejects_mismatched_costs(self):
        with pytest.raises(ValueError, match="costs"):
            partition_by_cost([(0, 1)], [1.0, 2.0], 2)

    def test_cost_model_prior_then_observation(self):
        model = CostModel()
        assert not model.observed
        prior = model.seconds_for(1_000.0)
        assert prior > 0.0
        model.observe(1_000.0, 2.0)
        assert model.observed
        assert model.units_per_second == 500.0
        assert model.seconds_for(250.0) == pytest.approx(0.5)

    def test_program_cost_counts_messages(self, grid5000):
        bcast = binomial_bcast_program(grid5000, 1_024, root_rank=0)
        alltoall = grid_aware_alltoall_program(grid5000, 64)
        assert program_cost(bcast) == 1 + sum(
            len(sends) for sends in bcast.sends.values()
        )
        # The motivating skew: an all-to-all costs many times a bcast.
        assert program_cost(alltoall) > 5 * program_cost(bcast)

    def test_resolve_executor_env_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert resolve_executor(None) == "auto"
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        assert resolve_executor(None) == "thread"
        assert resolve_executor("process") == "process"
        monkeypatch.setenv("REPRO_EXECUTOR", "hamster-wheel")
        with pytest.raises(ValueError, match="executor"):
            resolve_executor(None)

    def test_choose_executor_splits_on_cost(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert choose_executor(None, AUTO_THREAD_MAX_UNITS) == "thread"
        assert choose_executor(None, AUTO_THREAD_MAX_UNITS + 1) == "process"
        # Naming a transport pins auto to the lane that ships.
        assert choose_executor(None, 10, transport="pickle") == "process"
        assert choose_executor("thread", 10**9) == "thread"


class TestThreadPool:
    def test_kind_markers(self, pool, thread_pool):
        assert pool.kind == "process"
        assert thread_pool.kind == "thread"
        assert isinstance(thread_pool, ThreadStudyPool)

    def test_get_pool_keeps_lanes_separate(self, pool, thread_pool):
        assert get_pool(2) is pool
        assert get_pool(2, kind="thread") is thread_pool
        assert get_pool(2, kind="thread") is not pool

    def test_get_pool_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            get_pool(2, kind="fiber")

    def test_thread_pool_passes_arguments_by_reference(self, thread_pool):
        marker = object()
        assert thread_pool.submit(lambda value: value, marker).get() is marker


class TestExecutorEquivalence:
    """Thread vs process vs inline bit-identity on all five study drivers."""

    PRACTICAL = dict(
        message_sizes=(65_536, 1_048_576),
        noise_sigma=0.08,
        heuristics=("ecef", "fef"),
    )
    COLLECTIVE = dict(message_sizes=(2_048, 16_384), noise_sigma=0.05)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_practical_study(self, executor, pool, thread_pool):
        config = PracticalStudyConfig(**self.PRACTICAL)
        inline = run_practical_study(config, workers=0, pipeline=False)
        fanned = run_practical_study(config, workers=2, executor=executor)
        assert np.array_equal(inline.measured, fanned.measured)
        assert np.array_equal(inline.baseline_measured, fanned.baseline_measured)
        assert np.array_equal(inline.predicted, fanned.predicted)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_simulation_study(self, executor, pool, thread_pool):
        config = SimulationStudyConfig(cluster_counts=(3, 4), iterations=24, seed=11)
        inline = run_simulation_study(config)
        fanned = run_simulation_study(config, workers=2, executor=executor)
        assert np.array_equal(inline.makespans, fanned.makespans)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_scatter_study(self, executor, heterogeneous_grid, pool, thread_pool):
        config = PracticalStudyConfig(**self.COLLECTIVE)
        inline = run_scatter_study(config, grid=heterogeneous_grid)
        fanned = run_scatter_study(
            config, grid=heterogeneous_grid, workers=2, executor=executor
        )
        assert np.array_equal(inline.measured, fanned.measured)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_alltoall_study(self, executor, heterogeneous_grid, pool, thread_pool):
        config = PracticalStudyConfig(**self.COLLECTIVE)
        inline = run_alltoall_study(config, grid=heterogeneous_grid)
        fanned = run_alltoall_study(
            config, grid=heterogeneous_grid, workers=2, executor=executor
        )
        assert np.array_equal(inline.measured, fanned.measured)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_chained_study(self, executor, heterogeneous_grid, pool, thread_pool):
        config = PracticalStudyConfig(**self.COLLECTIVE)
        kwargs = dict(grid=heterogeneous_grid, stages=("scatter", "alltoall"))
        inline = run_chained_study(config, **kwargs)
        fanned = run_chained_study(config, workers=2, executor=executor, **kwargs)
        assert np.array_equal(inline.warm, fanned.warm)
        assert np.array_equal(inline.fresh, fanned.fresh)

    def test_auto_lane_is_bit_identical_too(self, pool, thread_pool):
        config = PracticalStudyConfig(**self.PRACTICAL)
        inline = run_practical_study(config, workers=0, pipeline=False)
        auto = run_practical_study(config, workers=2, executor="auto")
        assert np.array_equal(inline.measured, auto.measured)

    def test_explicit_thread_pool_selects_thread_lane(self, grid5000, thread_pool):
        tasks = [
            ExecutionTask(
                binomial_bcast_program(grid5000, 16_384, root_rank=0),
                noise_seed=derive_seed(7, index),
            )
            for index in range(6)
        ]
        config = NetworkConfig(noise_sigma=0.05, seed=7)
        inline = execute_programs(grid5000, tasks, config=config)
        pooled = execute_programs(grid5000, tasks, config=config, pool=thread_pool)
        assert _makespans(inline) == _makespans(pooled)

    def test_rejects_unknown_executor(self, grid5000):
        program = binomial_bcast_program(grid5000, 1_024, root_rank=0)
        with pytest.raises(ValueError, match="executor"):
            execute_programs(grid5000, [program, program], executor="carrier-pigeon")

    def test_legacy_transport_rejects_explicit_pool(self, grid5000, pool):
        # The legacy dispatch spawns its own fresh pool (that is what it
        # benchmarks); silently ignoring pool= would contradict the "a
        # passed pool's kind decides the lane" contract.
        program = binomial_bcast_program(grid5000, 1_024, root_rank=0)
        with pytest.raises(ValueError, match="legacy"):
            execute_programs(
                grid5000, [program, program], transport="legacy", pool=pool
            )

    def test_legacy_transport_rejects_thread_executor(self, grid5000):
        # Same contract from the other side: an explicit thread request
        # cannot be silently downgraded to the fresh-process baseline.
        program = binomial_bcast_program(grid5000, 1_024, root_rank=0)
        with pytest.raises(ValueError, match="legacy"):
            execute_programs(
                grid5000,
                [program, program],
                workers=2,
                executor="thread",
                transport="legacy",
            )

    def test_scalar_engine_honours_explicit_pools_of_either_kind(
        self, grid5000, pool, thread_pool
    ):
        tasks = [
            ExecutionTask(
                binomial_bcast_program(grid5000, 2_048, root_rank=0),
                noise_seed=derive_seed(17, index),
            )
            for index in range(6)
        ]
        config = NetworkConfig(noise_sigma=0.05, seed=17)
        inline = execute_programs(grid5000, tasks, config=config, engine="scalar")
        for explicit in (pool, thread_pool):
            pooled = execute_programs(
                grid5000, tasks, config=config, engine="scalar", pool=explicit
            )
            assert _makespans(pooled) == _makespans(inline)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_scalar_engine_fans_out_on_both_lanes(
        self, grid5000, executor, pool, thread_pool
    ):
        tasks = [
            ExecutionTask(
                flat_scatter_program(grid5000, 1_024, root_rank=0),
                noise_seed=derive_seed(13, index),
            )
            for index in range(6)
        ]
        config = NetworkConfig(noise_sigma=0.05, seed=13)
        inline = execute_programs(grid5000, tasks, config=config, engine="scalar")
        fanned = execute_programs(
            grid5000,
            tasks,
            config=config,
            engine="scalar",
            workers=2,
            executor=executor,
        )
        assert _makespans(inline) == _makespans(fanned)


class TestAdaptiveChunking:
    """Adaptive vs fixed chunking bit-identity, on mixed workloads too."""

    def _mixed_tasks(self, grid):
        # The motivating skew: cheap broadcasts interleaved with ~20x
        # all-to-alls, plus a warm chain that must stay atomic.
        expensive = grid_aware_alltoall_program(grid, 64)
        cheap = binomial_bcast_program(grid, 16_384, root_rank=0)
        tasks = []
        for index in range(6):
            tasks.append(
                ExecutionTask(
                    expensive if index % 3 == 0 else cheap,
                    noise_seed=derive_seed(21, index),
                )
            )
        tasks.append(ExecutionTask(cheap, noise_seed=derive_seed(21, "chain")))
        tasks.append(ExecutionTask(expensive, reset_network=False))
        return tasks

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_adaptive_matches_fixed(self, grid5000, executor, pool, thread_pool):
        tasks = self._mixed_tasks(grid5000)
        config = NetworkConfig(noise_sigma=0.08, seed=21)
        inline = execute_programs(grid5000, tasks, config=config)
        adaptive = execute_programs(
            grid5000,
            tasks,
            config=config,
            workers=2,
            executor=executor,
            chunking="adaptive",
        )
        fixed = execute_programs(
            grid5000,
            tasks,
            config=config,
            workers=2,
            executor=executor,
            chunking="fixed",
        )
        assert _makespans(adaptive) == _makespans(inline)
        assert _makespans(fixed) == _makespans(inline)

    def test_practical_study_chunking_invariance(self, pool):
        config = PracticalStudyConfig(
            message_sizes=(65_536, 1_048_576),
            noise_sigma=0.08,
            heuristics=("ecef", "fef"),
        )
        adaptive = run_practical_study(config, workers=2, chunking="adaptive")
        fixed = run_practical_study(config, workers=2, chunking="fixed")
        assert np.array_equal(adaptive.measured, fixed.measured)
        assert np.array_equal(adaptive.baseline_measured, fixed.baseline_measured)

    def test_chained_study_chunking_invariance(self, heterogeneous_grid, pool):
        config = PracticalStudyConfig(message_sizes=(2_048, 16_384), noise_sigma=0.05)
        kwargs = dict(grid=heterogeneous_grid, stages=("scatter", "alltoall"))
        adaptive = run_chained_study(
            config, workers=2, chunking="adaptive", **kwargs
        )
        fixed = run_chained_study(config, workers=2, chunking="fixed", **kwargs)
        assert np.array_equal(adaptive.warm, fixed.warm)
        assert np.array_equal(adaptive.fresh, fixed.fresh)

    def test_rejects_unknown_chunking(self, grid5000):
        program = binomial_bcast_program(grid5000, 1_024, root_rank=0)
        with pytest.raises(ValueError, match="chunking"):
            execute_programs(grid5000, [program, program], chunking="vibes")

    def test_pipelined_cost_model_learns_within_study(self, grid5000, thread_pool):
        executor = PipelinedExecutor(
            grid5000,
            config=NetworkConfig(noise_sigma=0.05, seed=3),
            pool=thread_pool,
        )
        assert not executor.cost_model.observed
        program = binomial_bcast_program(grid5000, 65_536, root_rank=0)
        for index in range(4):
            executor.submit(
                [
                    ExecutionTask(program, noise_seed=derive_seed(3, index, inner))
                    for inner in range(8)
                ]
            )
        results = executor.finish()
        assert len(results) == 32
        # finish() collects every chunk's wall time into the model.
        assert executor.cost_model.observed


class TestWireProtocol:
    """Frame encode/decode of the distributed lane's socket protocol."""

    @staticmethod
    def _round_trip(message):
        frame = wire.encode_message(message)
        header = frame[: 16]
        import struct

        magic, version, flags, length = struct.unpack("!4sBBxxQ", header)
        assert magic == wire.MAGIC
        assert version == wire.WIRE_VERSION
        assert length == len(frame) - 16
        return wire.decode_payload(frame[16:], flags), flags

    def test_round_trip_preserves_structures_and_arrays(self):
        message = {
            "job": 7,
            "fn": "repro.utils.rng:derive_seed",
            "args": (
                3,
                [1.5, "label"],
                {"gap": np.linspace(0.0, 1.0, 37), "dest": np.arange(11)},
            ),
        }
        decoded, _ = self._round_trip(message)
        assert decoded["job"] == 7
        assert decoded["fn"] == message["fn"]
        assert decoded["args"][0] == 3
        assert decoded["args"][1] == [1.5, "label"]
        for name, array in message["args"][2].items():
            restored = decoded["args"][2][name]
            assert restored.dtype == array.dtype
            assert np.array_equal(restored, array)

    def test_large_frames_compress_small_ones_do_not(self):
        small, small_flags = self._round_trip({"x": 1})
        assert small == {"x": 1}
        assert not small_flags & wire.FLAG_ZLIB
        big_message = {"z": np.zeros(1_000_000)}
        frame = wire.encode_message(big_message)
        assert len(frame) < big_message["z"].nbytes  # zlib actually engaged
        decoded, big_flags = self._round_trip(big_message)
        assert big_flags & wire.FLAG_ZLIB
        assert np.array_equal(decoded["z"], big_message["z"])

    @pytest.mark.parametrize("transport", TRANSPORT_PARAMS)
    def test_shipments_cross_the_wire_as_arrays(self, transport):
        arrays = {"stack": np.arange(24.0).reshape(2, 3, 4)}
        shipment = ArrayShipment.pack(arrays, transport=transport)
        try:
            decoded, _ = self._round_trip({"ship": shipment})
            crossed = decoded["ship"]
            assert isinstance(crossed, wire.WireShipment)
            assert np.array_equal(crossed.load()["stack"], arrays["stack"])
            crossed.close()
            crossed.unlink()  # no-op by contract
            with pytest.raises(RuntimeError, match="closed"):
                crossed.load()
        finally:
            shipment.unlink()

    def test_truncated_and_corrupt_frames_are_rejected(self):
        import socket as socket_module

        left, right = socket_module.socketpair()
        try:
            frame = wire.encode_message({"job": 1})
            left.sendall(frame[: len(frame) - 3])
            left.close()
            with pytest.raises(wire.WireError, match="mid-frame"):
                wire.recv_message(right)
        finally:
            right.close()
        left, right = socket_module.socketpair()
        try:
            left.sendall(b"NOPE" + bytes(12))
            with pytest.raises(wire.WireError, match="magic"):
                wire.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        import socket as socket_module

        left, right = socket_module.socketpair()
        left.close()
        try:
            assert wire.recv_message(right) is None
        finally:
            right.close()


class TestHostsResolution:
    def test_parse_hosts_ports_and_default(self):
        assert parse_hosts("a:7100, b ,c:9") == (
            ("a", 7100),
            ("b", DEFAULT_AGENT_PORT),
            ("c", 9),
        )

    def test_parse_hosts_ipv6(self):
        assert parse_hosts("[::1]:7100,fe80::2") == (
            ("::1", 7100),
            ("fe80::2", DEFAULT_AGENT_PORT),
        )
        with pytest.raises(ValueError, match="IPv6"):
            parse_hosts("[::1junk")

    def test_parse_hosts_rejects_garbage(self):
        with pytest.raises(ValueError, match="port"):
            parse_hosts("a:notaport")
        with pytest.raises(ValueError, match="empty host"):
            parse_hosts(":7100")
        with pytest.raises(ValueError, match="no agent addresses"):
            parse_hosts(" , ")

    def test_resolve_hosts_env_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOSTS", raising=False)
        assert resolve_hosts(None) is None
        monkeypatch.setenv("REPRO_HOSTS", "agent-1:7100,agent-2:7100")
        assert resolve_hosts(None) == (("agent-1", 7100), ("agent-2", 7100))
        # An explicit argument wins over the environment.
        assert resolve_hosts("other:5") == (("other", 5),)

    def test_get_pool_remote_caching_by_hosts(self, monkeypatch):
        """One cached remote pool per hosts spec; loopback grows on demand."""
        import repro.runtime.pool as pool_module
        import repro.runtime.remote as remote_module

        created = []

        class FakeRemotePool:
            kind = "remote"

            def __init__(self, workers=None, *, hosts=None):
                self.hosts_spec = resolve_hosts(hosts)
                self.workers = max(2, int(workers or 0))
                self._alive = True
                created.append(self)

            @property
            def alive(self):
                return self._alive

            def close(self):
                self._alive = False

        monkeypatch.delenv("REPRO_HOSTS", raising=False)
        monkeypatch.setattr(remote_module, "RemoteStudyPool", FakeRemotePool)
        monkeypatch.setitem(pool_module._global_pools, "remote", None)
        first = get_pool(2, kind="remote")
        assert get_pool(2, kind="remote") is first
        named = get_pool(2, kind="remote", hosts="a:7100")
        assert named is not first and not first.alive
        assert get_pool(2, kind="remote", hosts="a:7100") is named
        # Loopback pools regrow when more workers are requested.
        loopback = get_pool(2, kind="remote")
        assert get_pool(4, kind="remote") is not loopback
        assert len(created) == 4

    def test_engage_remote_lane(self, monkeypatch):
        import repro.runtime.pool as pool_module
        import repro.runtime.remote as remote_module

        class FakeRemotePool:
            kind = "remote"

            def __init__(self, workers=None, *, hosts=None):
                self.hosts_spec = resolve_hosts(hosts)
                self.workers = max(2, int(workers or 0))
                self.alive = True

            def close(self):
                self.alive = False

        monkeypatch.delenv("REPRO_HOSTS", raising=False)
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        monkeypatch.setattr(remote_module, "RemoteStudyPool", FakeRemotePool)
        monkeypatch.setitem(pool_module._global_pools, "remote", None)
        # Non-remote executors pass through untouched.
        assert engage_remote_lane(None, None, None, 0, None) == (None, 0)
        assert engage_remote_lane(None, "thread", None, 4, None) == (None, 4)
        # Remote with no local worker request adopts the agents' capacity.
        pool, workers = engage_remote_lane(None, "remote", None, 0, None)
        assert pool.kind == "remote" and workers == pool.workers == 2
        # An explicit in-process request is never overridden.
        assert engage_remote_lane(None, "remote", 0, 0, None) == (None, 0)
        # The legacy benchmark baseline never engages the lane.
        assert engage_remote_lane(None, "remote", None, 0, None, "legacy") == (
            None,
            0,
        )
        # An explicit pool always wins, whatever its lane — and with no
        # workers= it lifts the count to the pool's (the fan-out request
        # an explicit pool implies).
        class ExplicitPool:
            kind = "process"
            workers = 3

        marker = ExplicitPool()
        assert engage_remote_lane(marker, "remote", None, 0, None) == (marker, 3)
        assert engage_remote_lane(marker, "remote", 2, 2, None) == (marker, 2)
        # The environment engages the lane exactly like the argument.
        monkeypatch.setenv("REPRO_EXECUTOR", "remote")
        pool, workers = engage_remote_lane(None, None, None, 0, None)
        assert pool.kind == "remote" and workers == 2


class TestCostModelPersistence:
    def test_snapshot_restore_round_trip(self):
        model = CostModel()
        model.observe(1_000.0, 2.0)
        clone = CostModel().restore(model.snapshot())
        assert clone.observed
        assert clone.units_per_second == model.units_per_second
        with pytest.raises(ValueError, match="negative"):
            CostModel().restore({"units": -1.0, "seconds": 2.0})

    def test_save_and_load_through_env_cache(self, tmp_path, monkeypatch):
        cache = tmp_path / "costs.json"
        monkeypatch.setenv("REPRO_COST_CACHE", str(cache))
        model = CostModel()
        model.observe(5_000.0, 2.5)
        save_cost_model("pipeline", model)
        restored = load_cost_model("pipeline")
        assert restored.observed
        assert restored.units_per_second == model.units_per_second
        # Keys are independent documents in one file.
        other = CostModel()
        other.observe(100.0, 1.0)
        save_cost_model("other", other)
        assert load_cost_model("pipeline").units_per_second == 2_000.0
        assert load_cost_model("other").units_per_second == 100.0

    def test_cache_disabled_or_corrupt_falls_back_to_prior(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_COST_CACHE", raising=False)
        assert not load_cost_model("pipeline").observed
        model = CostModel()
        model.observe(10.0, 1.0)
        save_cost_model("pipeline", model)  # no-op without the env var
        cache = tmp_path / "costs.json"
        cache.write_text("{not json")
        monkeypatch.setenv("REPRO_COST_CACHE", str(cache))
        assert not load_cost_model("pipeline").observed
        # An unobserved model is never persisted (it would store the prior).
        save_cost_model("pipeline", CostModel())
        assert cache.read_text() == "{not json"

    def test_save_merges_instead_of_clobbering_unknown_keys(
        self, tmp_path, monkeypatch
    ):
        """A save only touches its own keys; foreign records survive."""
        cache = tmp_path / "costs.json"
        monkeypatch.setenv("REPRO_COST_CACHE", str(cache))
        cache.write_text(json.dumps({"foreign": {"units": 7.0, "seconds": 1.0}}))
        model = CostModel()
        model.observe(300.0, 2.0)
        other = CostModel()
        other.observe(40.0, 4.0)
        save_cost_models({"mine/a": model, "mine/b": other, "mine/idle": CostModel()})
        document = json.loads(cache.read_text())
        # The batch landed (minus the unobserved model), the foreign key
        # written by some other study/daemon is untouched.
        assert set(document) == {"foreign", "mine/a", "mine/b"}
        assert load_cost_model("foreign").units_per_second == 7.0
        assert load_cost_model("mine/a").units_per_second == 150.0

    def test_concurrent_thread_writers_lose_no_records(
        self, tmp_path, monkeypatch
    ):
        """N threads interleaving read-merge-write cycles drop nothing.

        This is the lost-update race the sidecar ``flock`` closes: before
        it, two writers could both read the same document and the slower
        ``os.replace`` reverted the faster writer's keys.
        """
        cache = tmp_path / "costs.json"
        monkeypatch.setenv("REPRO_COST_CACHE", str(cache))
        rounds = 25

        def writer(name: int) -> None:
            model = CostModel()
            model.observe(1_000.0 * (name + 1), 1.0)
            for index in range(rounds):
                save_cost_model(f"writer/{name}/{index}", model)

        threads = [
            threading.Thread(target=writer, args=(name,)) for name in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        document = json.loads(cache.read_text())
        expected = {
            f"writer/{name}/{index}"
            for name in range(4)
            for index in range(rounds)
        }
        assert set(document) == expected
        for name in range(4):
            assert (
                load_cost_model(f"writer/{name}/0").units_per_second
                == 1_000.0 * (name + 1)
            )

    def test_concurrent_process_writers_lose_no_records(
        self, tmp_path, monkeypatch
    ):
        """Two separate interpreters race the one cache file safely."""
        import subprocess
        import sys

        cache = tmp_path / "costs.json"
        monkeypatch.setenv("REPRO_COST_CACHE", str(cache))
        script = (
            "import sys\n"
            "from repro.runtime.chunking import CostModel, save_cost_model\n"
            "name = sys.argv[1]\n"
            "model = CostModel()\n"
            "model.observe(500.0, 1.0)\n"
            "for index in range(20):\n"
            "    save_cost_model(f'proc/{name}/{index}', model)\n"
        )
        workers = [
            subprocess.Popen([sys.executable, "-c", script, str(name)])
            for name in range(2)
        ]
        for worker in workers:
            assert worker.wait(timeout=60) == 0
        document = json.loads(cache.read_text())
        expected = {f"proc/{name}/{index}" for name in range(2) for index in range(20)}
        assert set(document) == expected

    def test_pipelined_executor_persists_observations(
        self, grid5000, thread_pool, tmp_path, monkeypatch
    ):
        cache = tmp_path / "costs.json"
        monkeypatch.setenv("REPRO_COST_CACHE", str(cache))
        program = binomial_bcast_program(grid5000, 65_536, root_rank=0)
        executor = PipelinedExecutor(
            grid5000,
            config=NetworkConfig(noise_sigma=0.05, seed=3),
            pool=thread_pool,
        )
        assert not executor.cost_model.observed  # first run: cache empty
        for index in range(3):
            executor.submit(
                [
                    ExecutionTask(program, noise_seed=derive_seed(3, index, i))
                    for i in range(8)
                ]
            )
        reference = [r.makespan for r in executor.finish()]
        assert cache.exists()
        # A fresh executor starts from the recorded throughput...
        warm = PipelinedExecutor(
            grid5000,
            config=NetworkConfig(noise_sigma=0.05, seed=3),
            pool=thread_pool,
        )
        assert warm.cost_model.observed
        # ...and the cache can never change results.
        for index in range(3):
            warm.submit(
                [
                    ExecutionTask(program, noise_seed=derive_seed(3, index, i))
                    for i in range(8)
                ]
            )
        assert [r.makespan for r in warm.finish()] == reference


class TestShipmentCleanup:
    def test_close_and_unlink_are_idempotent(self):
        shipment = ArrayShipment.pack({"x": np.ones(8)}, transport="pickle")
        shipment.load()
        shipment.close()
        shipment.close()
        shipment.unlink()
        shipment.unlink()

    def test_sweep_unlinks_abandoned_segments(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this platform")
        from multiprocessing import shared_memory

        shipment = ArrayShipment.pack({"x": np.ones(64)}, transport="shm")
        name = shipment.shm_name
        shipment.close()  # mapping dropped, segment deliberately left behind
        sweep_shipments()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        # The shipment's own unlink afterwards is a harmless no-op.
        shipment.unlink()

    def test_sweep_skips_other_owners(self):
        if not shared_memory_available():
            pytest.skip("no shared memory on this platform")
        import repro.runtime.transport as transport_module

        shipment = ArrayShipment.pack({"x": np.ones(16)}, transport="shm")
        try:
            # Pretend a (forked) parent owns the segment: the sweep of this
            # process must leave it alone.
            transport_module._owned_segments[shipment.shm_name] = -1
            sweep_shipments()
            assert np.array_equal(shipment.load()["x"], np.ones(16))
            shipment.close()
        finally:
            transport_module._owned_segments.pop(shipment.shm_name, None)
            shipment.unlink()


@pytest.fixture(scope="module")
def remote_pool():
    """A dedicated loopback remote pool: two agents, one worker each.

    Deliberately *not* the get_pool cache: the agent-loss test below kills
    one of a separate pool's agents, and this fixture's pool must stay
    two-agent for the bit-identity tests.
    """
    pool = RemoteStudyPool(2)
    yield pool
    pool.close()


class TestRemoteLane:
    """Remote-lane determinism: all five drivers, chains, duplicates, loss."""

    PRACTICAL = dict(
        message_sizes=(65_536, 1_048_576),
        noise_sigma=0.08,
        heuristics=("ecef", "fef"),
    )
    COLLECTIVE = dict(message_sizes=(2_048, 16_384), noise_sigma=0.05)

    def test_practical_study(self, remote_pool):
        config = PracticalStudyConfig(**self.PRACTICAL)
        inline = run_practical_study(config, workers=0, pipeline=False)
        remote = run_practical_study(config, workers=2, pool=remote_pool)
        assert np.array_equal(inline.measured, remote.measured)
        assert np.array_equal(inline.baseline_measured, remote.baseline_measured)
        assert np.array_equal(inline.predicted, remote.predicted)

    def test_simulation_study_seed_and_stack_shipping(self, remote_pool):
        config = SimulationStudyConfig(cluster_counts=(3, 4), iterations=24, seed=11)
        inline = run_simulation_study(config)
        seeds = run_simulation_study(config, workers=2, pool=remote_pool)
        assert np.array_equal(inline.makespans, seeds.makespans)
        stacks = run_simulation_study(
            config, workers=2, pool=remote_pool, transport="pickle"
        )
        assert np.array_equal(inline.makespans, stacks.makespans)

    def test_scatter_study(self, heterogeneous_grid, remote_pool):
        config = PracticalStudyConfig(**self.COLLECTIVE)
        inline = run_scatter_study(config, grid=heterogeneous_grid)
        remote = run_scatter_study(
            config, grid=heterogeneous_grid, workers=2, pool=remote_pool
        )
        assert np.array_equal(inline.measured, remote.measured)

    def test_alltoall_study(self, heterogeneous_grid, remote_pool):
        config = PracticalStudyConfig(**self.COLLECTIVE)
        inline = run_alltoall_study(config, grid=heterogeneous_grid)
        remote = run_alltoall_study(
            config, grid=heterogeneous_grid, workers=2, pool=remote_pool
        )
        assert np.array_equal(inline.measured, remote.measured)

    def test_chained_study(self, heterogeneous_grid, remote_pool):
        config = PracticalStudyConfig(**self.COLLECTIVE)
        kwargs = dict(grid=heterogeneous_grid, stages=("scatter", "alltoall"))
        inline = run_chained_study(config, **kwargs)
        remote = run_chained_study(config, workers=2, pool=remote_pool, **kwargs)
        assert np.array_equal(inline.warm, remote.warm)
        assert np.array_equal(inline.fresh, remote.fresh)

    def test_chains_stay_atomic_across_agents(self, grid5000, remote_pool):
        """Warm chains ship whole to one agent — interleaved with enough
        independent tasks that both agents certainly receive work."""
        expensive = grid_aware_alltoall_program(grid5000, 64)
        cheap = binomial_bcast_program(grid5000, 16_384, root_rank=0)
        tasks = []
        for index in range(6):
            tasks.append(
                ExecutionTask(
                    expensive if index % 3 == 0 else cheap,
                    noise_seed=derive_seed(37, index),
                )
            )
            tasks.append(ExecutionTask(cheap, noise_seed=derive_seed(37, index, "c")))
            tasks.append(ExecutionTask(expensive, reset_network=False))
        config = NetworkConfig(noise_sigma=0.08, seed=37)
        inline = execute_programs(grid5000, tasks, config=config)
        remote = execute_programs(
            grid5000, tasks, config=config, workers=2, pool=remote_pool
        )
        assert _makespans(remote) == _makespans(inline)

    def test_scalar_engine_on_the_remote_lane(self, grid5000, remote_pool):
        tasks = [
            ExecutionTask(
                flat_scatter_program(grid5000, 1_024, root_rank=0),
                noise_seed=derive_seed(41, index),
            )
            for index in range(6)
        ]
        config = NetworkConfig(noise_sigma=0.05, seed=41)
        inline = execute_programs(grid5000, tasks, config=config, engine="scalar")
        remote = execute_programs(
            grid5000,
            tasks,
            config=config,
            engine="scalar",
            workers=2,
            pool=remote_pool,
        )
        assert _makespans(remote) == _makespans(inline)

    def test_duplicate_result_delivery_is_discarded(self, remote_pool):
        handle = remote_pool.submit(derive_seed, 5)
        value = handle.get(timeout=60)
        assert value == derive_seed(5)
        before = remote_pool.duplicates_ignored
        # Replay the delivery, as an agent racing its own loss would: the
        # job is already settled, so the replay must be counted and dropped.
        remote_pool._deliver(
            remote_pool._agents[0], {"job": handle.job_id, "result": -1}
        )
        assert remote_pool.duplicates_ignored == before + 1
        assert handle.get() == value  # first delivery won

    def test_submit_rejects_unimportable_functions(self, remote_pool):
        with pytest.raises(ValueError, match="module-level"):
            remote_pool.submit(lambda args: args, ())

    def test_agent_loss_mid_run_requeues_bit_identically(self):
        """SIGKILL one of two agents with a study in flight: the coordinator
        requeues the lost chunks and the results stay bit-identical."""
        config = PracticalStudyConfig(
            message_sizes=(65_536, 1_048_576, 4_194_304),
            noise_sigma=0.08,
            heuristics=("ecef", "fef", "flat_tree"),
        )
        inline = run_practical_study(config, workers=0, pipeline=False)
        # fallback="fail" keeps the historical contract under test here:
        # losing the last agent is a hard failure, not a degradation to the
        # local lane (that path has its own tests in TestChaosRemoteLane).
        pool = RemoteStudyPool(2, fallback="fail")
        try:
            victim = pool._agents[0]
            victim.process.kill()  # dies with the first chunks in flight
            survived = run_practical_study(config, workers=2, pool=pool)
            assert np.array_equal(inline.measured, survived.measured)
            assert np.array_equal(
                inline.baseline_measured, survived.baseline_measured
            )
            assert not victim.alive and pool.alive
            # Losing the *last* agent is a hard failure, not a hang
            # (raised at submit if the loss was already detected, at get
            # once the requeue finds no survivors otherwise).
            pool._agents[1].process.kill()
            with pytest.raises(RuntimeError, match="agent"):
                pool.submit(derive_seed, 9).get(timeout=60)
        finally:
            pool.close()


class TestElasticRemoteLane:
    """Cost balancing, stealing, heartbeats and membership — none of which
    may ever change results."""

    COLLECTIVE = dict(message_sizes=(2_048, 16_384), noise_sigma=0.05)

    @staticmethod
    def _terminate(process) -> None:
        process.terminate()
        process.wait(timeout=15)

    def test_work_stealing_drains_a_skewed_fleet(self):
        """A 30x-slower agent's queued frames migrate to the fast agent;
        results stay correct and the fleet weights reflect the skew."""
        fast_proc, fast_addr = _spawn_loopback_agent(1)
        slow_proc, slow_addr = _spawn_loopback_agent(1, slowdown=30.0)
        pool = RemoteStudyPool(hosts=(fast_addr, slow_addr))
        try:
            handles = [
                pool.submit(_diagnostic_sleep, (0.01, index), units=1.0)
                for index in range(16)
            ]
            assert [handle.get(timeout=120) for handle in handles] == list(
                range(16)
            )
            by_address = {(link.host, link.port): link for link in pool._agents}
            fast, slow = by_address[fast_addr], by_address[slow_addr]
            assert fast.completed + slow.completed == 16
            assert fast.completed > slow.completed
            assert pool.steals > 0
            weights = pool.partition_weights()
            assert weights is not None and len(weights) == 2
            assert weights[0] > 2.0 * weights[1]  # skew observed, sorted
        finally:
            pool.close()
            self._terminate(fast_proc)
            self._terminate(slow_proc)

    def test_mid_study_join_steals_queued_work(self, heterogeneous_grid):
        """An agent joined via add_host while jobs are queued immediately
        receives stolen work — and two drivers stay bit-identical on the
        grown fleet."""
        slow_proc, slow_addr = _spawn_loopback_agent(1, slowdown=30.0)
        fast_proc = None
        pool = RemoteStudyPool(hosts=(slow_addr,))
        try:
            handles = [
                pool.submit(_diagnostic_sleep, (0.01, index), units=1.0)
                for index in range(16)
            ]
            fast_proc, fast_addr = _spawn_loopback_agent(1)
            joined = pool.add_host(f"{fast_addr[0]}:{fast_addr[1]}")
            # Re-adding a connected address is a no-op returning the link.
            assert pool.add_host(*fast_addr) is joined
            assert [handle.get(timeout=120) for handle in handles] == list(
                range(16)
            )
            assert joined.completed > 0
            assert pool.steals > 0
            config = PracticalStudyConfig(**self.COLLECTIVE)
            inline = run_scatter_study(config, grid=heterogeneous_grid)
            grown = run_scatter_study(
                config, grid=heterogeneous_grid, workers=2, pool=pool
            )
            assert np.array_equal(inline.measured, grown.measured)
            kwargs = dict(grid=heterogeneous_grid, stages=("scatter", "alltoall"))
            inline_chain = run_chained_study(config, **kwargs)
            grown_chain = run_chained_study(config, workers=2, pool=pool, **kwargs)
            assert np.array_equal(inline_chain.warm, grown_chain.warm)
            assert np.array_equal(inline_chain.fresh, grown_chain.fresh)
        finally:
            pool.close()
            self._terminate(slow_proc)
            if fast_proc is not None:
                self._terminate(fast_proc)

    def test_missed_heartbeats_mark_agent_dead_and_requeue(
        self, heterogeneous_grid
    ):
        """SIGSTOP an agent (socket stays open — only the heartbeat can tell
        it is gone): its frames land on the survivor and two drivers stay
        bit-identical."""
        config = PracticalStudyConfig(**self.COLLECTIVE)
        inline = run_scatter_study(config, grid=heterogeneous_grid)
        chain_kwargs = dict(
            grid=heterogeneous_grid, stages=("scatter", "alltoall")
        )
        inline_chain = run_chained_study(config, **chain_kwargs)
        pool = RemoteStudyPool(2, heartbeat=0.15)
        victim = pool._agents[0]
        try:
            os.kill(victim.process.pid, signal.SIGSTOP)
            survived = run_scatter_study(
                config, grid=heterogeneous_grid, workers=2, pool=pool
            )
            assert np.array_equal(inline.measured, survived.measured)
            assert not victim.alive and pool.alive
            survived_chain = run_chained_study(
                config, workers=2, pool=pool, **chain_kwargs
            )
            assert np.array_equal(inline_chain.warm, survived_chain.warm)
            assert np.array_equal(inline_chain.fresh, survived_chain.fresh)
        finally:
            try:
                os.kill(victim.process.pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
            pool.close()

    def test_agent_answers_pings_inline(self):
        """A raw ping frame comes back as a pong echoing the sequence."""
        process, (host, port) = _spawn_loopback_agent(1)
        try:
            with socket.create_connection((host, port), timeout=30) as sock:
                hello = wire.recv_message(sock)
                assert hello["hello"] == wire.WIRE_VERSION
                wire.send_message(sock, wire.control_message(wire.OP_PING, seq=7))
                pong = wire.recv_message(sock)
                assert pong == {"op": wire.OP_PONG, "seq": 7}
                wire.send_message(sock, wire.control_message(wire.OP_SHUTDOWN))
        finally:
            self._terminate(process)

    def test_connect_retries_until_agent_appears(self):
        """The coordinator's handshake retries with backoff: an agent that
        binds half a second late is still connected within the deadline."""
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind(("127.0.0.1", 0))
            host, port = probe.getsockname()[:2]
        finally:
            probe.close()
        server = AgentServer(host=host, port=port, workers=1)

        def _bind_late():
            time.sleep(0.5)
            server.serve_forever()

        thread = threading.Thread(target=_bind_late, daemon=True)
        started = time.monotonic()
        thread.start()
        pool = None
        try:
            pool = RemoteStudyPool(hosts=((host, port),))
            assert time.monotonic() - started >= 0.4  # first attempts refused
            assert pool.submit(derive_seed, 23).get(timeout=60) == derive_seed(23)
        finally:
            if pool is not None:
                pool.close()
            server.close()
            thread.join(timeout=15)

    def test_rescan_hosts_joins_newly_named_agents(self, monkeypatch):
        first_proc, first_addr = _spawn_loopback_agent(1)
        second_proc, second_addr = _spawn_loopback_agent(1)
        pool = RemoteStudyPool(hosts=(first_addr,))
        try:
            assert pool.workers == 1
            monkeypatch.setenv(
                "REPRO_HOSTS",
                ",".join(f"{host}:{port}" for host, port in (first_addr, second_addr)),
            )
            added = pool.rescan_hosts()
            assert [(link.host, link.port) for link in added] == [second_addr]
            assert pool.workers == 2
            assert pool.rescan_hosts() == []  # idempotent
            handles = [pool.submit(derive_seed, index) for index in range(8)]
            assert [handle.get(timeout=60) for handle in handles] == [
                derive_seed(index) for index in range(8)
            ]
        finally:
            pool.close()
            self._terminate(first_proc)
            self._terminate(second_proc)

    def test_balancing_is_validated_and_count_mode_round_trips(self):
        with pytest.raises(ValueError, match="balancing"):
            RemoteStudyPool(2, balancing="vibes")
        pool = RemoteStudyPool(2, balancing="count")
        try:
            assert pool.balancing == "count"
            assert pool.partition_weights() is None  # baseline: uniform split
            handles = [pool.submit(derive_seed, index) for index in range(8)]
            assert [handle.get(timeout=60) for handle in handles] == [
                derive_seed(index) for index in range(8)
            ]
            assert pool.steals == 0  # count mode never steals
        finally:
            pool.close()

    def test_default_balancing_is_cost(self, remote_pool):
        assert remote_pool.balancing == "cost"
        weights = remote_pool.partition_weights()
        assert weights is not None
        assert len(weights) == sum(
            max(1, link.workers) for link in remote_pool._agents if link.alive
        )


class TestFaultPlan:
    """The chaos harness itself: selectors, seeded streams, validation."""

    def test_selector_precedence_name_then_index_then_wildcard(self):
        plan = FaultPlan(
            agents={
                "a:1": {"drop_rate": 1.0},
                "#1": {"delay_rate": 1.0},
                "*": {"corrupt_rate": 1.0},
            }
        )
        plan.register("a:1")  # join index 0: exact name still wins
        plan.register("b:2")  # join index 1
        plan.register("c:3")  # join index 2: only the wildcard matches
        assert plan.on_send("a:1")[0] == SEND_DROP
        assert plan.on_send("b:2")[0] == SEND_DELAY
        assert plan.on_send("c:3")[0] == SEND_CORRUPT

    def test_send_schedule_replays_from_its_seed(self):
        knobs = {"drop_rate": 0.3, "corrupt_rate": 0.2, "delay_rate": 0.2}

        def schedule(seed):
            plan = FaultPlan(seed=seed, agents={"*": dict(knobs)})
            return [plan.on_send("x:1")[0] for _ in range(64)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        assert set(schedule(7)) == {SEND_OK, SEND_DROP, SEND_DELAY, SEND_CORRUPT}

    def test_unknown_knobs_and_bad_rates_are_rejected(self):
        with pytest.raises(ValueError, match="unknown fault knob"):
            FaultPlan(agents={"*": {"drop_rat": 1.0}})
        with pytest.raises(ValueError, match="drop_rate"):
            FaultPlan(agents={"*": {"drop_rate": 1.5}})
        with pytest.raises(ValueError, match="seed"):
            FaultPlan.from_spec({"seed": "lots"})

    def test_crash_refuses_reconnects_forever(self):
        plan = FaultPlan(
            agents={"*": {"refuse_connects": 2, "crash_after_results": 2}}
        )
        assert plan.refuse_connect("x:1")  # the first two attempts bounce
        assert plan.refuse_connect("x:1")
        assert not plan.refuse_connect("x:1")
        assert plan.after_result("x:1") is None
        assert plan.after_result("x:1") == FAULT_CRASH
        assert plan.refuse_connect("x:1")  # crashed: refused forever

    def test_hang_black_holes_every_site_until_expiry(self):
        plan = FaultPlan(
            agents={"*": {"hang_after_results": 1, "hang_seconds": 0.2}}
        )
        assert plan.after_result("x:1") == FAULT_HANG
        assert plan.absorb_receive("x:1")
        assert plan.on_send("x:1")[0] == SEND_DROP
        assert plan.refuse_connect("x:1")
        time.sleep(0.25)
        assert not plan.absorb_receive("x:1")
        assert plan.on_send("x:1")[0] == SEND_OK
        # The trigger is one-shot: more results never re-arm the hole.
        assert plan.after_result("x:1") is None
        assert not plan.absorb_receive("x:1")

    def test_json_file_and_env_var_round_trip(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps({"seed": 3, "agents": {"#0": {"drop_rate": 0.5}}})
        )
        assert resolve_fault_plan(str(path)).seed == 3
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(path))
        assert resolve_fault_plan(None).seed == 3
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert resolve_fault_plan(None) is None  # production default: off

    def test_corrupt_frame_keeps_length_and_breaks_magic(self):
        frame = wire.encode_message({"job": 1})
        mangled = corrupt_frame(frame)
        assert len(mangled) == len(frame)
        assert mangled[:4] != wire.MAGIC


class TestChaosRemoteLane:
    """Recovery under the seeded fault harness.

    Every injected misbehaviour — crashes, black holes, dropped and
    corrupted frames, admission rejects, full-fleet loss — may only move
    chunks around; results must stay bit-identical to the inline path,
    and every re-dispatched frame must be accounted for."""

    PRACTICAL = dict(
        message_sizes=(65_536, 1_048_576),
        noise_sigma=0.08,
        heuristics=("ecef", "fef"),
    )
    COLLECTIVE = dict(message_sizes=(2_048, 16_384), noise_sigma=0.05)

    @staticmethod
    def _terminate(process) -> None:
        process.terminate()
        process.wait(timeout=15)

    def test_all_five_drivers_bit_identical_under_injected_crash(
        self, heterogeneous_grid
    ):
        """Agent #0 is killed (SIGKILL, reconnects refused) after two
        results, with jittery sends on the survivor; all five study drivers
        still reproduce the inline numbers exactly."""
        plan = FaultPlan(
            seed=101,
            agents={
                "#0": {"crash_after_results": 2},
                "#1": {"delay_rate": 0.25, "delay_seconds": 0.02},
            },
        )
        practical = PracticalStudyConfig(**self.PRACTICAL)
        collective = PracticalStudyConfig(**self.COLLECTIVE)
        simulation = SimulationStudyConfig(
            cluster_counts=(3, 4), iterations=24, seed=11
        )
        chain_kwargs = dict(
            grid=heterogeneous_grid, stages=("scatter", "alltoall")
        )
        pool = RemoteStudyPool(2, faults=plan, fallback="fail")
        try:
            remote = run_practical_study(practical, workers=2, pool=pool)
            inline = run_practical_study(practical, workers=0, pipeline=False)
            assert np.array_equal(inline.measured, remote.measured)
            assert np.array_equal(inline.predicted, remote.predicted)
            # Enough direct deliveries to guarantee #0 reaches its crash
            # trigger (a short study may route it fewer than two results).
            warmup = [pool.submit(derive_seed, index) for index in range(8)]
            assert [handle.get(timeout=60) for handle in warmup] == [
                derive_seed(index) for index in range(8)
            ]
            assert any(not link.alive for link in pool._agents)  # it died
            assert pool.reconnects == 0  # a crashed agent never rejoins
            seeds = run_simulation_study(simulation, workers=2, pool=pool)
            assert np.array_equal(
                run_simulation_study(simulation).makespans, seeds.makespans
            )
            scatter = run_scatter_study(
                collective, grid=heterogeneous_grid, workers=2, pool=pool
            )
            assert np.array_equal(
                run_scatter_study(collective, grid=heterogeneous_grid).measured,
                scatter.measured,
            )
            alltoall = run_alltoall_study(
                collective, grid=heterogeneous_grid, workers=2, pool=pool
            )
            assert np.array_equal(
                run_alltoall_study(
                    collective, grid=heterogeneous_grid
                ).measured,
                alltoall.measured,
            )
            chained = run_chained_study(
                collective, workers=2, pool=pool, **chain_kwargs
            )
            inline_chain = run_chained_study(collective, **chain_kwargs)
            assert np.array_equal(inline_chain.warm, chained.warm)
            assert np.array_equal(inline_chain.fresh, chained.fresh)
        finally:
            pool.close()

    def test_frame_deadline_reroutes_dropped_frames(self):
        """Every frame to agent #0 vanishes (heartbeats off, so deadlines
        are the only detector): expired frames re-route to the survivor and
        every job still settles correctly."""
        plan = FaultPlan(seed=5, agents={"#0": {"drop_rate": 1.0}})
        pool = RemoteStudyPool(
            2, faults=plan, heartbeat=0.0, frame_timeout=0.2, fallback="fail"
        )
        try:
            handles = [
                pool.submit(derive_seed, index, units=0.01) for index in range(12)
            ]
            assert [handle.get(timeout=120) for handle in handles] == [
                derive_seed(index) for index in range(12)
            ]
            assert pool.deadline_expired >= 1
        finally:
            pool.close()

    def test_admission_rejects_back_off_and_recover(self):
        """Agents with a one-frame queue bound bounce the prefetch overflow
        BUSY; the coordinator backs off, retries, and loses nothing."""
        agents = [_spawn_loopback_agent(1, queue_bound=1) for _ in range(2)]
        pool = RemoteStudyPool(
            hosts=[address for _, address in agents], fallback="fail"
        )
        try:
            handles = [
                pool.submit(_diagnostic_sleep, (0.05, index), units=1.0)
                for index in range(12)
            ]
            assert [handle.get(timeout=120) for handle in handles] == list(
                range(12)
            )
            assert pool.busy_rejects >= 1
            assert pool.degraded_jobs == 0  # retried, never given up on
        finally:
            pool.close()
            for process, _ in agents:
                self._terminate(process)

    def test_hung_agent_is_reprobed_and_readmitted(self):
        """Agent #1 black-holes after its first result (socket open, all
        frames absorbed — a frozen host): heartbeats declare it dead, its
        frames finish on the survivor, and once the hole expires the
        probation prober re-admits it."""
        plan = FaultPlan(
            seed=13,
            agents={"#1": {"hang_after_results": 1, "hang_seconds": 1.0}},
        )
        pool = RemoteStudyPool(2, faults=plan, heartbeat=0.1, fallback="fail")
        try:
            handles = [
                pool.submit(_diagnostic_sleep, (0.02, index), units=1.0)
                for index in range(24)
            ]
            assert [handle.get(timeout=120) for handle in handles] == list(
                range(24)
            )
            deadline = time.monotonic() + 30
            while pool.reconnects < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.reconnects >= 1
            assert sum(1 for link in pool._agents if link.alive) == 2
            more = [pool.submit(derive_seed, index) for index in range(8)]
            assert [handle.get(timeout=60) for handle in more] == [
                derive_seed(index) for index in range(8)
            ]
        finally:
            pool.close()

    def test_corrupted_streams_reconnect_and_finish(self):
        """Agent #0 refuses its first connect, then every frame to it is
        sent with a mangled header — the agent drops the stream each time;
        the coordinator requeues elsewhere, re-probes, and finishes."""
        plan = FaultPlan(
            seed=3,
            agents={"#0": {"refuse_connects": 1, "corrupt_rate": 1.0}},
        )
        pool = RemoteStudyPool(2, faults=plan, fallback="fail")
        try:
            handles = [pool.submit(derive_seed, index) for index in range(12)]
            assert [handle.get(timeout=120) for handle in handles] == [
                derive_seed(index) for index in range(12)
            ]
            deadline = time.monotonic() + 30
            while pool.reconnects < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.reconnects >= 1
        finally:
            pool.close()

    def test_full_fleet_loss_degrades_to_local_lane_bit_identically(self):
        """Every agent crashes after its first result: outstanding and new
        chunks drain through the local process lane and the study's numbers
        are still bit-identical to the inline run."""
        plan = FaultPlan(seed=23, agents={"*": {"crash_after_results": 1}})
        config = SimulationStudyConfig(
            cluster_counts=(3, 4), iterations=24, seed=11
        )
        inline = run_simulation_study(config)
        pool = RemoteStudyPool(2, faults=plan)  # fallback="local" default
        try:
            degraded = run_simulation_study(config, workers=2, pool=pool)
            assert np.array_equal(inline.makespans, degraded.makespans)
            handles = [pool.submit(derive_seed, index) for index in range(8)]
            assert [handle.get(timeout=60) for handle in handles] == [
                derive_seed(index) for index in range(8)
            ]
            assert not any(link.alive for link in pool._agents)
            assert pool.degraded_jobs >= 1
            assert pool.alive  # under fallback="local" the pool still serves
        finally:
            pool.close()

    def test_fallback_fail_restores_the_hard_failure(self):
        plan = FaultPlan(
            seed=29, agents={"*": {"crash_after_results": 1, "refuse_connects": 0}}
        )
        pool = RemoteStudyPool(2, faults=plan, fallback="fail")
        try:
            handles = [
                pool.submit(_diagnostic_sleep, (0.05, index), units=1.0)
                for index in range(8)
            ]
            outcomes = []
            for handle in handles:
                try:
                    outcomes.append(handle.get(timeout=120))
                except RuntimeError:
                    outcomes.append("failed")
            assert "failed" in outcomes  # the fleet died and said so
            assert pool.degraded_jobs == 0
            assert not pool.alive
        finally:
            pool.close()

    def test_late_results_after_deadline_count_as_duplicates(self):
        """A deadline expiry re-dispatches a frame that the original agent
        is still executing; the late original (or the twin) is discarded
        through the duplicate path and the job settles exactly once."""
        pool = RemoteStudyPool(2, frame_timeout=0.2, fallback="fail")
        try:
            handle = pool.submit(_diagnostic_sleep, (0.6, "slow"), units=0.01)
            assert handle.get(timeout=60) == "slow"
            assert pool.deadline_expired >= 1
            deadline = time.monotonic() + 30
            while pool.duplicates_ignored < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            # Every re-dispatched execution beyond the first is accounted
            # as a discarded duplicate; exactly one delivery completed.
            assert pool.duplicates_ignored >= 1
            assert sum(link.completed for link in pool._agents) == 1
        finally:
            pool.close()

    def test_sigterm_drains_in_flight_frames_gracefully(self):
        """SIGTERM mid-frame: the agent finishes the frame, flushes the
        result, refuses new work, and exits 0 — nothing is lost, nothing
        needs re-dispatch."""
        process, address = _spawn_loopback_agent(1)
        pool = RemoteStudyPool(hosts=(address,), fallback="fail")
        try:
            handle = pool.submit(_diagnostic_sleep, (0.8, "drained"), units=1.0)
            time.sleep(0.25)  # let the frame reach the agent and start
            process.send_signal(signal.SIGTERM)
            assert handle.get(timeout=60) == "drained"
            assert process.wait(timeout=60) == 0
        finally:
            pool.close()
            if process.poll() is None:
                process.kill()
                process.wait(timeout=15)
