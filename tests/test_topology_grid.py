"""Tests for repro.topology.grid."""

from __future__ import annotations

import pytest

from repro.model.plogp import GapFunction
from repro.topology.cluster import Cluster
from repro.topology.grid import Grid, InterClusterLink, complete_links


def make_clusters(count: int, size: int = 2) -> list[Cluster]:
    return [
        Cluster(cluster_id=i, size=size, fixed_broadcast_time=0.1 * (i + 1))
        for i in range(count)
    ]


def full_links(count: int, latency: float = 0.01, gap: float = 0.2):
    return {
        (i, j): InterClusterLink.from_values(latency=latency, gap=gap)
        for i in range(count)
        for j in range(i + 1, count)
    }


class TestInterClusterLink:
    def test_transfer_time(self):
        link = InterClusterLink.from_values(latency=0.01, gap=0.3)
        assert link.transfer_time(123) == pytest.approx(0.31)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            InterClusterLink.from_values(latency=-0.01, gap=0.3)

    def test_rejects_non_gapfunction(self):
        with pytest.raises(TypeError):
            InterClusterLink(latency=0.0, gap=0.5)  # type: ignore[arg-type]


class TestGridConstruction:
    def test_basic_properties(self):
        grid = Grid(make_clusters(3), full_links(3))
        assert grid.num_clusters == 3
        assert grid.num_nodes == 6
        assert len(grid.nodes) == 6

    def test_rank_assignment_is_contiguous(self):
        grid = Grid(make_clusters(3, size=4), full_links(3))
        assert [n.rank for n in grid.nodes] == list(range(12))
        assert grid.coordinator_rank(0) == 0
        assert grid.coordinator_rank(1) == 4
        assert grid.coordinator_rank(2) == 8

    def test_cluster_of_rank(self):
        grid = Grid(make_clusters(3, size=4), full_links(3))
        assert grid.cluster_of_rank(0) == 0
        assert grid.cluster_of_rank(5) == 1
        assert grid.cluster_of_rank(11) == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Grid([], {})

    def test_rejects_misordered_cluster_ids(self):
        clusters = [
            Cluster(cluster_id=1, size=1),
            Cluster(cluster_id=0, size=1),
        ]
        with pytest.raises(ValueError, match="must match their position"):
            Grid(clusters, full_links(2))

    def test_rejects_missing_link(self):
        links = full_links(3)
        del links[(0, 2)]
        with pytest.raises(ValueError, match="missing inter-cluster link"):
            Grid(make_clusters(3), links)

    def test_rejects_self_link(self):
        links = full_links(2)
        links[(0, 0)] = InterClusterLink.from_values(latency=0.01, gap=0.1)
        with pytest.raises(ValueError, match="itself"):
            Grid(make_clusters(2), links)

    def test_rejects_out_of_range_link(self):
        links = full_links(2)
        links[(0, 5)] = InterClusterLink.from_values(latency=0.01, gap=0.1)
        with pytest.raises(ValueError, match="unknown cluster"):
            Grid(make_clusters(2), links)


class TestGridAccessors:
    def test_link_lookup_is_symmetric(self):
        links = full_links(3)
        links[(1, 2)] = InterClusterLink.from_values(latency=0.05, gap=0.4)
        grid = Grid(make_clusters(3), links)
        assert grid.latency(1, 2) == grid.latency(2, 1) == 0.05
        assert grid.gap(2, 1, 0) == pytest.approx(0.4)

    def test_link_to_self_raises(self):
        grid = Grid(make_clusters(2), full_links(2))
        with pytest.raises(ValueError):
            grid.link(1, 1)

    def test_unknown_cluster_raises(self):
        grid = Grid(make_clusters(2), full_links(2))
        with pytest.raises(ValueError):
            grid.cluster(5)
        with pytest.raises(ValueError):
            grid.node(99)

    def test_broadcast_times_match_clusters(self):
        grid = Grid(make_clusters(3), full_links(3))
        assert grid.broadcast_times(0) == pytest.approx([0.1, 0.2, 0.3])
        assert grid.broadcast_time(2, 0) == pytest.approx(0.3)

    def test_transfer_time(self):
        grid = Grid(make_clusters(2), full_links(2, latency=0.01, gap=0.2))
        assert grid.transfer_time(0, 1, 12345) == pytest.approx(0.21)


class TestNodeLinkParameters:
    def test_same_node_is_free(self):
        grid = Grid(make_clusters(2), full_links(2))
        params = grid.node_link_parameters(0, 0)
        assert params.point_to_point_time(1_000_000) == 0.0

    def test_intra_cluster_uses_intra_params(self):
        from repro.model.plogp import PLogPParameters

        intra = PLogPParameters.from_values(latency=1e-4, gap=1e-3, num_procs=4)
        clusters = [
            Cluster(cluster_id=0, size=4, intra_params=intra),
            Cluster(cluster_id=1, size=4, fixed_broadcast_time=0.5),
        ]
        grid = Grid(clusters, full_links(2))
        params = grid.node_link_parameters(0, 2)
        assert params.latency == pytest.approx(1e-4)

    def test_inter_cluster_uses_link(self):
        grid = Grid(make_clusters(2, size=2), full_links(2, latency=0.02, gap=0.3))
        params = grid.node_link_parameters(0, 2)
        assert params.latency == pytest.approx(0.02)
        assert params.gap(0) == pytest.approx(0.3)

    def test_fixed_time_cluster_gets_proportional_model(self):
        grid = Grid(make_clusters(2, size=8), full_links(2))
        params = grid.node_link_parameters(0, 1)
        # The synthesised intra-cluster hop cost must be positive and bounded
        # by the cluster's fixed broadcast time.
        assert 0 < params.point_to_point_time(0) <= 0.1


class TestNetworkxExport:
    def test_graph_structure(self):
        grid = Grid(make_clusters(4), full_links(4))
        graph = grid.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 6
        assert graph.nodes[1]["size"] == 2
        assert graph.edges[0, 1]["transfer_time"] == pytest.approx(0.21)


class TestCompleteLinks:
    def test_builds_upper_triangle(self):
        latencies = [[0, 0.01, 0.02], [0.01, 0, 0.03], [0.02, 0.03, 0]]
        gaps = [[0, 0.1, 0.2], [0.1, 0, 0.3], [0.2, 0.3, 0]]
        links = complete_links(latencies, gaps)
        assert set(links) == {(0, 1), (0, 2), (1, 2)}
        assert links[(1, 2)].latency == pytest.approx(0.03)

    def test_rejects_ragged_matrix(self):
        with pytest.raises(ValueError):
            complete_links([[0, 1], [1, 0, 2]], [[0, 1], [1, 0]])
