"""Tests for repro.topology.grid5000 (the Table 3 topology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.grid5000 import (
    DEFAULT_TCP_WINDOW,
    GRID5000_CLUSTER_NAMES,
    GRID5000_CLUSTER_SIZES,
    GRID5000_LATENCY_US,
    build_grid5000_topology,
    build_node_latency_matrix,
    cluster_membership,
    effective_bandwidth,
)


class TestTable3Data:
    def test_six_clusters_of_88_machines(self):
        assert len(GRID5000_CLUSTER_SIZES) == 6
        assert sum(GRID5000_CLUSTER_SIZES) == 88
        assert GRID5000_CLUSTER_SIZES == (31, 29, 6, 1, 1, 20)

    def test_latency_matrix_is_symmetric(self):
        matrix = np.asarray(GRID5000_LATENCY_US)
        assert matrix.shape == (6, 6)
        assert np.allclose(matrix, matrix.T)

    def test_paper_values_present(self):
        matrix = np.asarray(GRID5000_LATENCY_US)
        assert matrix[0, 0] == pytest.approx(47.56)
        assert matrix[0, 2] == pytest.approx(12181.52)
        assert matrix[5, 5] == pytest.approx(27.53)
        assert matrix[0, 5] == pytest.approx(5210.99)


class TestTopologyConstruction:
    def test_cluster_structure(self, grid5000):
        assert grid5000.num_clusters == 6
        assert grid5000.num_nodes == 88
        assert [c.size for c in grid5000.clusters] == list(GRID5000_CLUSTER_SIZES)
        assert [c.name for c in grid5000.clusters] == list(GRID5000_CLUSTER_NAMES)

    def test_inter_cluster_latencies_match_table3(self, grid5000):
        for i in range(6):
            for j in range(6):
                if i == j:
                    continue
                expected = GRID5000_LATENCY_US[i][j] * 1e-6
                assert grid5000.latency(i, j) == pytest.approx(expected)

    def test_single_machine_clusters_have_zero_broadcast_time(self, grid5000):
        assert grid5000.broadcast_time(3, 4_194_304) == 0.0
        assert grid5000.broadcast_time(4, 4_194_304) == 0.0

    def test_larger_clusters_take_longer(self, grid5000):
        t_orsay = grid5000.broadcast_time(0, 1_048_576)   # 31 machines
        t_idpot = grid5000.broadcast_time(2, 1_048_576)   # 6 machines
        assert t_orsay > t_idpot > 0

    def test_wan_links_slower_than_lan_links(self, grid5000):
        wan = grid5000.transfer_time(0, 2, 1_048_576)      # Orsay <-> IDPOT
        lan = grid5000.transfer_time(0, 1, 1_048_576)      # Orsay-A <-> Orsay-B
        assert wan > 5 * lan

    def test_alternative_local_algorithm(self):
        flat = build_grid5000_topology(broadcast_algorithm="flat")
        binomial = build_grid5000_topology(broadcast_algorithm="binomial")
        assert flat.broadcast_time(0, 1_048_576) > binomial.broadcast_time(0, 1_048_576)


class TestEffectiveBandwidth:
    def test_wan_is_window_limited(self):
        bandwidth = effective_bandwidth(12e-3)
        assert bandwidth == pytest.approx(DEFAULT_TCP_WINDOW / (2 * 12e-3))

    def test_lan_is_nic_limited(self):
        assert effective_bandwidth(60e-6) == pytest.approx(110e6)

    def test_monotone_in_latency(self):
        assert effective_bandwidth(12e-3) < effective_bandwidth(5e-3)


class TestNodeLatencyMatrix:
    def test_shape_and_symmetry(self):
        matrix = build_node_latency_matrix()
        assert matrix.shape == (88, 88)
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    def test_block_structure(self):
        matrix = build_node_latency_matrix()
        membership = cluster_membership()
        # two Orsay-A machines
        assert matrix[1, 2] == pytest.approx(47.56e-6)
        # an Orsay-A machine and a Toulouse machine
        toulouse_first = membership.index(5)
        assert matrix[0, toulouse_first] == pytest.approx(5210.99e-6)

    def test_membership_vector(self):
        membership = cluster_membership()
        assert len(membership) == 88
        assert membership.count(0) == 31
        assert membership.count(5) == 20

    def test_jitter_perturbs_but_preserves_symmetry(self):
        noisy = build_node_latency_matrix(jitter=0.1, seed=3)
        clean = build_node_latency_matrix()
        assert not np.allclose(noisy, clean)
        assert np.allclose(noisy, noisy.T)
        assert np.all(noisy >= 0)

    def test_jitter_rejects_negative(self):
        with pytest.raises(ValueError):
            build_node_latency_matrix(jitter=-0.1)
