"""Tests for repro.core.lookahead."""

from __future__ import annotations

import pytest

from repro.core.base import SchedulingState
from repro.core.lookahead import (
    LOOKAHEAD_FUNCTIONS,
    average_informed_lookahead,
    average_latency_lookahead,
    get_lookahead,
    grid_aware_max_lookahead,
    grid_aware_min_lookahead,
    min_edge_lookahead,
    no_lookahead,
)


@pytest.fixture
def state(heterogeneous_grid):
    return SchedulingState(grid=heterogeneous_grid, message_size=1_000, root=0)


class TestLookaheadValues:
    def test_no_lookahead_is_zero(self, state):
        assert no_lookahead(state, 1) == 0.0

    def test_min_edge_uses_cheapest_outgoing(self, state):
        # From cluster 1, the only other waiting cluster is 2: g=0.3, L=0.005.
        assert min_edge_lookahead(state, 1) == pytest.approx(0.305)

    def test_average_latency_over_waiting_set(self, state):
        assert average_latency_lookahead(state, 1) == pytest.approx(0.305)

    def test_grid_aware_min_adds_t(self, state):
        # Reaches cluster 2 whose T = 0.05.
        assert grid_aware_min_lookahead(state, 1) == pytest.approx(0.305 + 0.05)

    def test_grid_aware_max_adds_t(self, state):
        # From cluster 2 the only other waiting cluster is 1 (T = 2.0).
        assert grid_aware_max_lookahead(state, 2) == pytest.approx(0.305 + 2.0)

    def test_last_waiting_cluster_has_zero_lookahead(self, state):
        state.commit(0, 1)
        for function in LOOKAHEAD_FUNCTIONS.values():
            assert function(state, 2) == 0.0

    def test_average_informed_includes_candidate_promotion(self, state):
        value = average_informed_lookahead(state, 1)
        # Sources {0, 1} towards target {2}: mean of (0.51, 0.305).
        assert value == pytest.approx((0.51 + 0.305) / 2)


class TestRegistry:
    def test_all_registered_names_resolve(self):
        for name in LOOKAHEAD_FUNCTIONS:
            assert callable(get_lookahead(name))

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown lookahead"):
            get_lookahead("nope")

    def test_expected_names_present(self):
        assert {"min_edge", "grid_aware_min", "grid_aware_max"} <= set(LOOKAHEAD_FUNCTIONS)
