"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import assume, given, settings, strategies as st

from repro.collectives.cost import predict_tree_time
from repro.collectives.trees import make_tree
from repro.core.registry import PAPER_HEURISTICS, get_heuristic
from repro.core.schedule import evaluate_order
from repro.model.plogp import GapFunction, PLogPParameters
from repro.model.prediction import predict_binomial_broadcast, predict_flat_broadcast
from repro.topology.cluster import Cluster
from repro.topology.grid import Grid, InterClusterLink

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

latencies = st.floats(min_value=1e-6, max_value=0.05, allow_nan=False)
gaps = st.floats(min_value=1e-3, max_value=1.0, allow_nan=False)
broadcast_times = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
message_sizes = st.integers(min_value=0, max_value=8_000_000)


@st.composite
def grids(draw, min_clusters: int = 2, max_clusters: int = 6) -> Grid:
    """Random heterogeneous grids with fully specified pairwise parameters."""
    count = draw(st.integers(min_value=min_clusters, max_value=max_clusters))
    clusters = [
        Cluster(
            cluster_id=index,
            size=draw(st.integers(min_value=1, max_value=4)),
            fixed_broadcast_time=draw(broadcast_times),
        )
        for index in range(count)
    ]
    links = {
        (i, j): InterClusterLink.from_values(latency=draw(latencies), gap=draw(gaps))
        for i in range(count)
        for j in range(i + 1, count)
    }
    return Grid(clusters, links)


@st.composite
def gap_control_points(draw):
    sizes = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    sizes = sorted(sizes)
    values = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=len(sizes),
                max_size=len(sizes),
            )
        )
    )
    return list(zip(sizes, values))


# ---------------------------------------------------------------------------
# pLogP model properties
# ---------------------------------------------------------------------------


class TestGapFunctionProperties:
    @given(points=gap_control_points(), size=st.floats(min_value=0, max_value=2e7))
    @settings(max_examples=60)
    def test_gap_is_non_negative_everywhere(self, points, size):
        assert GapFunction.from_points(points)(size) >= 0.0

    @given(points=gap_control_points(), a=message_sizes, b=message_sizes)
    @settings(max_examples=60)
    def test_gap_is_monotone_non_decreasing(self, points, a, b):
        gap = GapFunction.from_points(points)
        small, large = sorted((a, b))
        assert gap(small) <= gap(large) + 1e-12

    @given(
        overhead=st.floats(min_value=0, max_value=0.1, allow_nan=False),
        bandwidth=st.floats(min_value=1e3, max_value=1e10, allow_nan=False),
        size=message_sizes,
    )
    @settings(max_examples=60)
    def test_affine_gap_matches_formula(self, overhead, bandwidth, size):
        gap = GapFunction.from_bandwidth(overhead=overhead, bandwidth=bandwidth)
        assert math.isclose(gap(size), overhead + size / bandwidth, rel_tol=1e-9, abs_tol=1e-12)


class TestPredictionProperties:
    @given(
        procs=st.integers(min_value=1, max_value=64),
        latency=latencies,
        gap=gaps,
        size=message_sizes,
    )
    @settings(max_examples=60)
    def test_binomial_never_slower_than_flat_when_gap_dominates(
        self, procs, latency, gap, size
    ):
        """When the gap dominates the latency, the binomial tree's extra hops
        are free and it cannot lose to the flat tree.  (When latency dominates
        the flat tree can win — that regime is exactly what the per-cluster
        tree selector of repro.collectives.selector is for.)"""
        assume(latency <= gap)
        params = PLogPParameters.from_values(latency=latency, gap=gap, num_procs=procs)
        assert (
            predict_binomial_broadcast(params, size)
            <= predict_flat_broadcast(params, size) + 1e-12
        )

    @given(
        procs=st.integers(min_value=1, max_value=64),
        latency=latencies,
        gap=gaps,
        size=message_sizes,
    )
    @settings(max_examples=60)
    def test_binomial_never_slower_than_chain(self, procs, latency, gap, size):
        from repro.model.prediction import predict_chain_broadcast

        params = PLogPParameters.from_values(latency=latency, gap=gap, num_procs=procs)
        assert (
            predict_binomial_broadcast(params, size)
            <= predict_chain_broadcast(params, size) + 1e-12
        )

    @given(
        procs=st.integers(min_value=1, max_value=32),
        latency=latencies,
        gap=gaps,
        size=message_sizes,
        shape=st.sampled_from(["binomial", "flat", "chain", "binary"]),
    )
    @settings(max_examples=60)
    def test_tree_cost_non_negative_and_zero_only_for_singleton(
        self, procs, latency, gap, size, shape
    ):
        params = PLogPParameters.from_values(latency=latency, gap=gap, num_procs=procs)
        cost = predict_tree_time(make_tree(shape, procs), params, size)
        if procs == 1:
            assert cost == 0.0
        else:
            assert cost > 0.0


# ---------------------------------------------------------------------------
# tree properties
# ---------------------------------------------------------------------------


class TestTreeProperties:
    @given(
        size=st.integers(min_value=1, max_value=200),
        shape=st.sampled_from(["binomial", "flat", "chain", "binary"]),
    )
    @settings(max_examples=80)
    def test_every_tree_is_spanning(self, size, shape):
        tree = make_tree(shape, size)
        assert len(tree.edges()) == size - 1
        reached = {0}
        for parent, child in tree.edges():
            assert parent in reached
            reached.add(child)
        assert reached == set(range(size))

    @given(size=st.integers(min_value=2, max_value=200))
    @settings(max_examples=60)
    def test_binomial_root_fanout_is_ceil_log2(self, size):
        tree = make_tree("binomial", size)
        assert len(tree.children[0]) == math.ceil(math.log2(size))


# ---------------------------------------------------------------------------
# scheduling properties
# ---------------------------------------------------------------------------


class TestScheduleProperties:
    @given(grid=grids(), size=message_sizes, key=st.sampled_from(PAPER_HEURISTICS))
    @settings(max_examples=80, deadline=None)
    def test_every_heuristic_yields_a_valid_schedule(self, grid, size, key):
        heuristic = get_heuristic(key)
        schedule = heuristic.schedule(grid, size)
        schedule.validate()
        assert schedule.makespan >= 0.0
        assert len(schedule.transfers) == grid.num_clusters - 1

    @given(grid=grids(), size=message_sizes, key=st.sampled_from(PAPER_HEURISTICS))
    @settings(max_examples=60, deadline=None)
    def test_makespan_lower_bound(self, grid, size, key):
        """No schedule can beat the cheapest direct transfer to the most
        expensive cluster (its own local broadcast included)."""
        heuristic = get_heuristic(key)
        schedule = heuristic.schedule(grid, size, root=0)
        lower_bound = 0.0
        for cluster in range(1, grid.num_clusters):
            cheapest_incoming = min(
                grid.transfer_time(other, cluster, size)
                for other in range(grid.num_clusters)
                if other != cluster
            )
            lower_bound = max(
                lower_bound, cheapest_incoming + grid.broadcast_time(cluster, size)
            )
        lower_bound = max(lower_bound, grid.broadcast_time(0, size))
        assert schedule.makespan >= lower_bound - 1e-9

    @given(grid=grids(), size=message_sizes)
    @settings(max_examples=40, deadline=None)
    def test_makespan_invariant_to_transfer_reordering(self, grid, size):
        """evaluate_order only depends on the decision sequence, so evaluating
        the same order twice gives identical schedules."""
        heuristic = get_heuristic("ecef_la")
        schedule = heuristic.schedule(grid, size)
        replayed = evaluate_order(grid, size, schedule.root, schedule.order)
        assert replayed.makespan == schedule.makespan
        assert replayed.arrival_times == schedule.arrival_times

    @given(grid=grids(max_clusters=5), size=message_sizes)
    @settings(max_examples=30, deadline=None)
    def test_heuristics_never_beat_optimal(self, grid, size):
        from repro.core.optimal import OptimalSearch

        best = OptimalSearch().schedule(grid, size).makespan
        for key in ("ecef", "ecef_la", "bottom_up", "flat_tree"):
            assert get_heuristic(key).makespan(grid, size) >= best - 1e-9

    @given(grid=grids(), root=st.integers(min_value=0, max_value=5), size=message_sizes)
    @settings(max_examples=50, deadline=None)
    def test_root_rotation_always_valid(self, grid, root, size):
        root = root % grid.num_clusters
        schedule = get_heuristic("ecef_lat_max").schedule(grid, size, root=root)
        schedule.validate()
        assert schedule.arrival_times[root] == 0.0
