"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import assume, given, settings, strategies as st

from repro.collectives.cost import predict_tree_time
from repro.collectives.trees import make_tree
from repro.core.registry import PAPER_HEURISTICS, get_heuristic
from repro.core.schedule import evaluate_order
from repro.model.plogp import GapFunction, PLogPParameters
from repro.model.prediction import predict_binomial_broadcast, predict_flat_broadcast
from repro.topology.cluster import Cluster
from repro.topology.grid import Grid, InterClusterLink

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

latencies = st.floats(min_value=1e-6, max_value=0.05, allow_nan=False)
gaps = st.floats(min_value=1e-3, max_value=1.0, allow_nan=False)
broadcast_times = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
message_sizes = st.integers(min_value=0, max_value=8_000_000)


@st.composite
def grids(draw, min_clusters: int = 2, max_clusters: int = 6) -> Grid:
    """Random heterogeneous grids with fully specified pairwise parameters."""
    count = draw(st.integers(min_value=min_clusters, max_value=max_clusters))
    clusters = [
        Cluster(
            cluster_id=index,
            size=draw(st.integers(min_value=1, max_value=4)),
            fixed_broadcast_time=draw(broadcast_times),
        )
        for index in range(count)
    ]
    links = {
        (i, j): InterClusterLink.from_values(latency=draw(latencies), gap=draw(gaps))
        for i in range(count)
        for j in range(i + 1, count)
    }
    return Grid(clusters, links)


@st.composite
def gap_control_points(draw):
    sizes = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    sizes = sorted(sizes)
    values = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=len(sizes),
                max_size=len(sizes),
            )
        )
    )
    return list(zip(sizes, values))


# ---------------------------------------------------------------------------
# pLogP model properties
# ---------------------------------------------------------------------------


class TestGapFunctionProperties:
    @given(points=gap_control_points(), size=st.floats(min_value=0, max_value=2e7))
    @settings(max_examples=60)
    def test_gap_is_non_negative_everywhere(self, points, size):
        assert GapFunction.from_points(points)(size) >= 0.0

    @given(points=gap_control_points(), a=message_sizes, b=message_sizes)
    @settings(max_examples=60)
    def test_gap_is_monotone_non_decreasing(self, points, a, b):
        gap = GapFunction.from_points(points)
        small, large = sorted((a, b))
        assert gap(small) <= gap(large) + 1e-12

    @given(
        overhead=st.floats(min_value=0, max_value=0.1, allow_nan=False),
        bandwidth=st.floats(min_value=1e3, max_value=1e10, allow_nan=False),
        size=message_sizes,
    )
    @settings(max_examples=60)
    def test_affine_gap_matches_formula(self, overhead, bandwidth, size):
        gap = GapFunction.from_bandwidth(overhead=overhead, bandwidth=bandwidth)
        assert math.isclose(gap(size), overhead + size / bandwidth, rel_tol=1e-9, abs_tol=1e-12)


class TestPredictionProperties:
    @given(
        procs=st.integers(min_value=1, max_value=64),
        latency=latencies,
        gap=gaps,
        size=message_sizes,
    )
    @settings(max_examples=60)
    def test_binomial_never_slower_than_flat_when_gap_dominates(
        self, procs, latency, gap, size
    ):
        """When the gap dominates the latency, the binomial tree's extra hops
        are free and it cannot lose to the flat tree.  (When latency dominates
        the flat tree can win — that regime is exactly what the per-cluster
        tree selector of repro.collectives.selector is for.)"""
        assume(latency <= gap)
        params = PLogPParameters.from_values(latency=latency, gap=gap, num_procs=procs)
        assert (
            predict_binomial_broadcast(params, size)
            <= predict_flat_broadcast(params, size) + 1e-12
        )

    @given(
        procs=st.integers(min_value=1, max_value=64),
        latency=latencies,
        gap=gaps,
        size=message_sizes,
    )
    @settings(max_examples=60)
    def test_binomial_never_slower_than_chain(self, procs, latency, gap, size):
        from repro.model.prediction import predict_chain_broadcast

        params = PLogPParameters.from_values(latency=latency, gap=gap, num_procs=procs)
        assert (
            predict_binomial_broadcast(params, size)
            <= predict_chain_broadcast(params, size) + 1e-12
        )

    @given(
        procs=st.integers(min_value=1, max_value=32),
        latency=latencies,
        gap=gaps,
        size=message_sizes,
        shape=st.sampled_from(["binomial", "flat", "chain", "binary"]),
    )
    @settings(max_examples=60)
    def test_tree_cost_non_negative_and_zero_only_for_singleton(
        self, procs, latency, gap, size, shape
    ):
        params = PLogPParameters.from_values(latency=latency, gap=gap, num_procs=procs)
        cost = predict_tree_time(make_tree(shape, procs), params, size)
        if procs == 1:
            assert cost == 0.0
        else:
            assert cost > 0.0


# ---------------------------------------------------------------------------
# tree properties
# ---------------------------------------------------------------------------


class TestTreeProperties:
    @given(
        size=st.integers(min_value=1, max_value=200),
        shape=st.sampled_from(["binomial", "flat", "chain", "binary"]),
    )
    @settings(max_examples=80)
    def test_every_tree_is_spanning(self, size, shape):
        tree = make_tree(shape, size)
        assert len(tree.edges()) == size - 1
        reached = {0}
        for parent, child in tree.edges():
            assert parent in reached
            reached.add(child)
        assert reached == set(range(size))

    @given(size=st.integers(min_value=2, max_value=200))
    @settings(max_examples=60)
    def test_binomial_root_fanout_is_ceil_log2(self, size):
        tree = make_tree("binomial", size)
        assert len(tree.children[0]) == math.ceil(math.log2(size))


# ---------------------------------------------------------------------------
# scheduling properties
# ---------------------------------------------------------------------------


class TestScheduleProperties:
    @given(grid=grids(), size=message_sizes, key=st.sampled_from(PAPER_HEURISTICS))
    @settings(max_examples=80, deadline=None)
    def test_every_heuristic_yields_a_valid_schedule(self, grid, size, key):
        heuristic = get_heuristic(key)
        schedule = heuristic.schedule(grid, size)
        schedule.validate()
        assert schedule.makespan >= 0.0
        assert len(schedule.transfers) == grid.num_clusters - 1

    @given(grid=grids(), size=message_sizes, key=st.sampled_from(PAPER_HEURISTICS))
    @settings(max_examples=60, deadline=None)
    def test_makespan_lower_bound(self, grid, size, key):
        """No schedule can beat the cheapest direct transfer to the most
        expensive cluster (its own local broadcast included)."""
        heuristic = get_heuristic(key)
        schedule = heuristic.schedule(grid, size, root=0)
        lower_bound = 0.0
        for cluster in range(1, grid.num_clusters):
            cheapest_incoming = min(
                grid.transfer_time(other, cluster, size)
                for other in range(grid.num_clusters)
                if other != cluster
            )
            lower_bound = max(
                lower_bound, cheapest_incoming + grid.broadcast_time(cluster, size)
            )
        lower_bound = max(lower_bound, grid.broadcast_time(0, size))
        assert schedule.makespan >= lower_bound - 1e-9

    @given(grid=grids(), size=message_sizes)
    @settings(max_examples=40, deadline=None)
    def test_makespan_invariant_to_transfer_reordering(self, grid, size):
        """evaluate_order only depends on the decision sequence, so evaluating
        the same order twice gives identical schedules."""
        heuristic = get_heuristic("ecef_la")
        schedule = heuristic.schedule(grid, size)
        replayed = evaluate_order(grid, size, schedule.root, schedule.order)
        assert replayed.makespan == schedule.makespan
        assert replayed.arrival_times == schedule.arrival_times

    @given(grid=grids(max_clusters=5), size=message_sizes)
    @settings(max_examples=30, deadline=None)
    def test_heuristics_never_beat_optimal(self, grid, size):
        from repro.core.optimal import OptimalSearch

        best = OptimalSearch().schedule(grid, size).makespan
        for key in ("ecef", "ecef_la", "bottom_up", "flat_tree"):
            assert get_heuristic(key).makespan(grid, size) >= best - 1e-9

    @given(grid=grids(), root=st.integers(min_value=0, max_value=5), size=message_sizes)
    @settings(max_examples=50, deadline=None)
    def test_root_rotation_always_valid(self, grid, root, size):
        root = root % grid.num_clusters
        schedule = get_heuristic("ecef_lat_max").schedule(grid, size, root=root)
        schedule.validate()
        assert schedule.arrival_times[root] == 0.0


# ---------------------------------------------------------------------------
# wire protocol properties
# ---------------------------------------------------------------------------


import numpy as np

from repro.runtime import wire
from repro.runtime.chunking import partition_by_cost
from repro.runtime.transport import ArrayShipment

wire_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=16),
    st.binary(max_size=32),
)


@st.composite
def wire_arrays(draw):
    dtype = np.dtype(draw(st.sampled_from(["f8", "f4", "i8", "i4", "u2"])))
    shape = tuple(draw(st.lists(st.integers(0, 4), min_size=1, max_size=3)))
    count = int(np.prod(shape))
    if np.issubdtype(dtype, np.floating):
        values = draw(
            st.lists(
                st.floats(
                    min_value=-1e6, max_value=1e6, allow_nan=False, width=32
                ),
                min_size=count,
                max_size=count,
            )
        )
    else:
        values = draw(
            st.lists(
                st.integers(min_value=0, max_value=60_000),
                min_size=count,
                max_size=count,
            )
        )
    return np.array(values, dtype=dtype).reshape(shape)


wire_messages = st.recursive(
    wire_scalars | wire_arrays(),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)


def _deep_equal(a, b) -> bool:
    """Structural equality that is exact on arrays (dtype, shape, bits)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and a.shape == b.shape
            and np.array_equal(a, b)
        )
    if isinstance(a, (list, tuple)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(_deep_equal(x, y) for x, y in zip(a, b))
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and a.keys() == b.keys()
            and all(_deep_equal(value, b[key]) for key, value in a.items())
        )
    return type(a) is type(b) and a == b


def _wire_round_trip(message):
    frame = wire.encode_message(message)
    import struct

    magic, version, flags, length = struct.unpack("!4sBBxxQ", frame[:16])
    assert magic == wire.MAGIC
    assert version == wire.WIRE_VERSION
    assert length == len(frame) - 16
    return wire.decode_payload(frame[16:], flags)


class TestWireRoundTripProperties:
    """encode_message/decode_payload must be the identity on any payload the
    remote lane can carry — including the out-of-band hoisting of every
    NumPy array and the v2 control/timing frames."""

    @given(message=wire_messages)
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_payloads_round_trip(self, message):
        assert _deep_equal(_wire_round_trip(message), message)

    @given(
        arrays=st.dictionaries(
            st.text(min_size=1, max_size=8), wire_arrays(), min_size=1, max_size=3
        ),
        job=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_shipments_cross_as_wire_shipments(self, arrays, job):
        shipment = ArrayShipment.pack(arrays, transport="pickle")
        try:
            decoded = _wire_round_trip({"job": job, "args": (shipment,)})
        finally:
            shipment.unlink()
        crossed = decoded["args"][0]
        assert isinstance(crossed, wire.WireShipment)
        assert _deep_equal(dict(crossed.load()), dict(arrays))

    @given(
        op=st.sampled_from([wire.OP_PING, wire.OP_PONG, wire.OP_SHUTDOWN]),
        seq=st.integers(min_value=0, max_value=2**62),
    )
    @settings(max_examples=40, deadline=None)
    def test_control_frames_round_trip(self, op, seq):
        message = wire.control_message(op, seq=seq)
        assert message["op"] == op
        assert _wire_round_trip(message) == {"op": op, "seq": seq}

    @given(
        job=st.integers(min_value=1, max_value=2**31),
        elapsed=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        value=wire_scalars,
    )
    @settings(max_examples=40, deadline=None)
    def test_timing_reports_round_trip(self, job, elapsed, value):
        decoded = _wire_round_trip(
            {"job": job, "result": value, "elapsed": elapsed}
        )
        assert decoded["job"] == job
        assert decoded["elapsed"] == elapsed
        assert _deep_equal(decoded["result"], value)


# ---------------------------------------------------------------------------
# weighted partition properties
# ---------------------------------------------------------------------------


@st.composite
def chain_partition_inputs(draw):
    sizes = draw(st.lists(st.integers(1, 4), min_size=1, max_size=12))
    units, start = [], 0
    for size in sizes:
        units.append((start, start + size))
        start += size
    costs = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            min_size=len(units),
            max_size=len(units),
        )
    )
    return units, costs


chunk_weights = st.lists(
    st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


class TestWeightedPartitionProperties:
    """partition_by_cost with weights: still a chain-atomic cover, reduces to
    the uniform split on equal weights, and lands every closed chunk within
    one unit's cost of its throughput-proportional target."""

    @given(
        inputs=chain_partition_inputs(),
        num_chunks=st.integers(1, 8),
        weights=st.one_of(st.none(), chunk_weights),
    )
    @settings(max_examples=120, deadline=None)
    def test_partition_is_a_chain_atomic_cover(self, inputs, num_chunks, weights):
        units, costs = inputs
        chunks = partition_by_cost(units, costs, num_chunks, weights=weights)
        # Non-empty chunks, contiguous, covering every task exactly once.
        assert chunks[0][0] == units[0][0]
        assert chunks[-1][1] == units[-1][1]
        for (_, left_end), (right_start, _) in zip(chunks, chunks[1:]):
            assert left_end == right_start
        assert all(start < end for start, end in chunks)
        # Ceiling: never more chunks than asked, than units, than weights.
        limit = min(num_chunks, len(units))
        if weights is not None:
            limit = min(limit, len(weights))
        assert len(chunks) <= limit
        # Chains atomic: every boundary coincides with a unit boundary.
        unit_starts = {start for start, _ in units}
        assert all(start in unit_starts for start, _ in chunks)

    @given(
        inputs=chain_partition_inputs(),
        num_chunks=st.integers(1, 8),
        weight=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_equal_weights_reduce_to_uniform_split(
        self, inputs, num_chunks, weight
    ):
        units, costs = inputs
        uniform = partition_by_cost(units, costs, num_chunks)
        weighted = partition_by_cost(
            units, costs, num_chunks, weights=[weight] * num_chunks
        )
        assert weighted == uniform

    @given(
        inputs=chain_partition_inputs(),
        weights=chunk_weights,
    )
    @settings(max_examples=120, deadline=None)
    def test_weights_respected_within_one_unit(self, inputs, weights):
        units, costs = inputs
        chunks = partition_by_cost(units, costs, len(weights), weights=weights)
        num_chunks = min(len(weights), len(units))
        shares = weights[:num_chunks]
        chunk_costs = [
            sum(
                cost
                for (u_start, _), cost in zip(units, costs)
                if start <= u_start < end
            )
            for start, end in chunks
        ]
        max_unit = max(costs)
        remaining = sum(costs)
        # Each closed (non-final) chunk's cost sits within one unit's cost
        # of its remaining-based weighted target — chains are atomic, so no
        # partition can do better than one unit of slack.
        for index, chunk_cost in enumerate(chunk_costs[:-1]):
            suffix = sum(shares[index:num_chunks])
            target = remaining * shares[index] / suffix
            assert abs(chunk_cost - target) <= max_unit + 1e-6 * (1 + target)
            remaining -= chunk_cost

    def test_rejects_non_positive_weights(self):
        import pytest

        with pytest.raises(ValueError, match="positive"):
            partition_by_cost([(0, 1), (1, 2)], [1.0, 1.0], 2, weights=[1.0, 0.0])


# ---------------------------------------------------------------------------
# seed derivation (repro.utils.rng.derive_seed)
# ---------------------------------------------------------------------------

seed_ints = st.integers(min_value=0, max_value=2**63 - 1)
seed_labels = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=12),
    st.tuples(st.integers(min_value=0, max_value=64), st.text(max_size=6)),
)


class TestDeriveSeedInvariance:
    """derive_seed must depend only on ``(seed, labels)`` — never on the
    order other seeds are derived in.  This is the contract that makes the
    fan-out lanes bit-identical: shuffling execution order, reordering the
    heuristics tuple or splitting work across agents cannot move any
    individual measurement onto a different noise stream."""

    @given(
        seed=seed_ints,
        labels=st.lists(seed_labels, min_size=1, max_size=6, unique_by=str),
        order=st.randoms(use_true_random=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_shuffle_invariant(self, seed, labels, order):
        from repro.utils.rng import derive_seed

        baseline = {str(label): derive_seed(seed, label) for label in labels}
        shuffled = list(labels)
        order.shuffle(shuffled)
        for label in shuffled:
            assert derive_seed(seed, label) == baseline[str(label)]

    @given(seed=seed_ints, labels=st.lists(seed_labels, min_size=1, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_repeat_derivations_are_stable(self, seed, labels):
        from repro.utils.rng import derive_seed

        first = derive_seed(seed, *labels)
        # Interleave unrelated derivations; the keyed derivation must not
        # observe them (unlike spawn(), which advances a counter).
        for noise in range(3):
            derive_seed(seed, "noise", noise)
        assert derive_seed(seed, *labels) == first

    @given(seed=seed_ints, a=seed_labels, b=seed_labels)
    @settings(max_examples=200, deadline=None)
    def test_distinct_label_tuples_rarely_collide(self, seed, a, b):
        from repro.utils.rng import derive_seed

        assume(str(a) != str(b))
        sa, sb = derive_seed(seed, a), derive_seed(seed, b)
        # CRC32-keyed mixing: collisions exist in principle, but any
        # Hypothesis-sized example pair colliding means the labels were
        # ignored, so treat equality of both derived seeds AND the mixed
        # digests as the failure signal.
        if sa == sb:
            import zlib

            assert zlib.crc32(str(a).encode("utf-8")) == zlib.crc32(
                str(b).encode("utf-8")
            )


# ---------------------------------------------------------------------------
# remote-lane chaos recovery (repro.runtime.remote + repro.runtime.faults)
# ---------------------------------------------------------------------------

import threading

from repro.runtime.faults import FaultPlan
from repro.runtime.remote import AgentServer, RemoteStudyPool
from repro.utils.rng import derive_seed


@st.composite
def fault_knobs(draw):
    """One agent's misbehaviour profile, from the interesting corners."""
    return {
        "drop_rate": draw(st.sampled_from([0.0, 0.3, 1.0])),
        "delay_rate": draw(st.sampled_from([0.0, 0.5])),
        "delay_seconds": 0.01,
        "corrupt_rate": draw(st.sampled_from([0.0, 0.25])),
        "crash_after_results": draw(st.sampled_from([0, 2])),
        "hang_after_results": draw(st.sampled_from([0, 1])),
        "hang_seconds": 0.4,
    }


fault_plans = st.builds(
    lambda seed, first, second: FaultPlan(
        seed=seed, agents={"#0": first, "#1": second}
    ),
    st.integers(min_value=0, max_value=2**20),
    fault_knobs(),
    fault_knobs(),
)


class TestChaosRecoveryProperties:
    """Whatever a seeded fault schedule does to the fleet — kills, hangs,
    drops, corruption, steals, reconnects, full-fleet degradation — every
    job settles exactly once with the right value, and every delivered
    frame is accounted for exactly once (first delivery, or the discarded
    duplicate of a re-dispatched frame)."""

    @staticmethod
    def _fleet(plan):
        servers = [AgentServer(workers=1), AgentServer(workers=1)]
        addresses = []
        for server in servers:
            addresses.append(server.bind())
            threading.Thread(target=server.serve_forever, daemon=True).start()
        pool = RemoteStudyPool(
            hosts=addresses,
            faults=plan,
            heartbeat=0.1,
            frame_timeout=0.25,
        )
        return servers, pool

    @given(plan=fault_plans, salt=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=8, deadline=None)
    def test_jobs_settle_exactly_once_with_exact_values(self, plan, salt):
        servers, pool = self._fleet(plan)
        try:
            handles = [
                pool.submit(derive_seed, salt * 1000 + index, units=1.0)
                for index in range(12)
            ]
            values = [handle.get(timeout=120) for handle in handles]
            assert values == [
                derive_seed(salt * 1000 + index) for index in range(12)
            ]
            # No frame is double-counted: each of the 12 jobs completed
            # through exactly one lane — a first remote delivery or the
            # degraded local lane — and any further executions of
            # re-dispatched frames were discarded as duplicates.
            with pool._lock:
                completed = sum(link.completed for link in pool._agents)
                assert completed + pool.degraded_jobs == 12
        finally:
            pool.close()
            for server in servers:
                server.close()

    @given(plan=fault_plans)
    @settings(max_examples=4, deadline=None)
    def test_micro_study_is_bit_identical_under_chaos(self, plan):
        from repro.experiments.config import SimulationStudyConfig
        from repro.experiments.simulation_study import run_simulation_study

        config = SimulationStudyConfig(
            cluster_counts=(3,), iterations=8, seed=17
        )
        inline = run_simulation_study(config)
        servers, pool = self._fleet(plan)
        try:
            chaotic = run_simulation_study(config, workers=2, pool=pool)
            assert np.array_equal(inline.makespans, chaotic.makespans)
        finally:
            pool.close()
            for server in servers:
                server.close()


# ---------------------------------------------------------------------------
# the scheduling determinism contract (PR 9)
# ---------------------------------------------------------------------------

from repro.core.batch import BatchedGridCosts, batched_makespans
from repro.core.costs import GridCostCache
from repro.experiments.config import SimulationStudyConfig
from repro.experiments.simulation_study import run_simulation_study
from repro.topology.generators import RandomGridGenerator
from repro.utils.rng import RandomStream


class TestSchedulingDeterminism:
    """The contract broadcast-scheduling-as-a-service silently depends on.

    A cache-backed daemon may answer one query from the scalar engine, the
    next from the vectorized per-grid engine, a study from the batched
    kernel, any of them through any executor lane, and any of them against
    a cold or warm :class:`GridCostCache` — and it promises all of those
    paths produce bit-identical decision orders and makespans.  These
    properties pin that promise down for arbitrary seeds, cluster counts
    and (paper) heuristics; the average-based *ablation* lookaheads are
    deliberately excluded (their engines sum in different orders, see
    ``tests/test_core_vectorized.py``).
    """

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        num_clusters=st.integers(min_value=2, max_value=9),
        key=st.sampled_from(PAPER_HEURISTICS),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_engine_and_cache_state_agrees(self, seed, num_clusters, key):
        grid = RandomGridGenerator(cluster_size=2).generate(
            num_clusters, RandomStream(seed=seed)
        )
        heuristic = get_heuristic(key)
        size = 1_048_576.0
        # Cold: two independent uncached matrix builds, scalar vs vectorized.
        scalar = heuristic.schedule(
            grid, size, costs=GridCostCache.build(grid, size), vectorized=False
        )
        cold = heuristic.schedule(grid, size, costs=GridCostCache.build(grid, size))
        # Warm: the shared per-grid cache, passed explicitly and resolved
        # implicitly (the second call hits the cache the first one filled).
        warm_costs = GridCostCache.for_grid(grid, size)
        warm_explicit = heuristic.schedule(grid, size, costs=warm_costs)
        warm_implicit = heuristic.schedule(grid, size)
        for candidate in (cold, warm_explicit, warm_implicit):
            assert candidate.order == scalar.order
            assert candidate.makespan == scalar.makespan
            assert candidate.completion_times == scalar.completion_times
        # The batched kernel (the study engine) lands on the same makespan.
        batch = batched_makespans(heuristic, BatchedGridCosts([warm_costs]))
        assert batch is not None, f"{key} lost its batched kernel"
        assert float(batch[0]) == scalar.makespan

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        workers=st.sampled_from([2, 3]),
    )
    @settings(max_examples=6, deadline=None)
    def test_executor_lane_and_chunking_never_change_a_study(self, seed, workers):
        """The fan-out machinery is pure plumbing: any worker count (which
        changes the chunk partition) through the thread lane reproduces the
        in-process study bit for bit."""
        config = SimulationStudyConfig(
            cluster_counts=(3, 5),
            iterations=6,
            seed=seed,
            heuristics=("fef", "ecef_la"),
        )
        inline = run_simulation_study(config)
        fanned = run_simulation_study(config, workers=workers, executor="thread")
        assert np.array_equal(inline.makespans, fanned.makespans)
        assert inline.heuristic_names == fanned.heuristic_names


# ---------------------------------------------------------------------------
# gossip round engines (repro.gossip)
# ---------------------------------------------------------------------------

from repro.experiments.gossip_study import GossipStudyConfig, run_gossip_study
from repro.gossip import GOSSIP_PROTOCOLS, ChurnSpec, GossipSpec, run_gossip


class TestGossipProperties:
    """Invariants of the epidemic round engines, for arbitrary specs.

    The deterministic-seeding design (per-round bulk draws keyed on
    ``(seed, protocol, round)``) means every property that holds for the
    vectorized engine holds verbatim for the scalar reference —
    ``tests/test_gossip.py`` pins the two bit-identical, so these
    properties exercise the fast engine only.
    """

    @given(
        protocol=st.sampled_from(GOSSIP_PROTOCOLS),
        num_nodes=st.integers(min_value=2, max_value=300),
        fanout=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_informed_set_grows_monotonically_without_churn(
        self, protocol, num_nodes, fanout, seed
    ):
        assume(fanout <= num_nodes - 1)
        spec = GossipSpec(
            protocol=protocol, num_nodes=num_nodes, fanout=fanout, seed=seed
        )
        result = run_gossip(spec)
        counts = result.informed_counts()
        assert np.all(np.diff(counts) >= 0)
        assert counts[0] >= 1  # the root is informed from round 0
        # Without churn an informed node stays informed: the cumulative
        # curve ends exactly at the delivered count.
        assert counts[-1] == result.delivered_count

    @given(
        protocol=st.sampled_from(GOSSIP_PROTOCOLS),
        num_nodes=st.integers(min_value=2, max_value=300),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        leave=st.floats(min_value=0.0, max_value=0.6, allow_nan=False),
        join=st.floats(min_value=0.0, max_value=0.6, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_delivery_count_conservation(
        self, protocol, num_nodes, seed, leave, join
    ):
        """Every delivery is accounted for exactly once, churn or not."""
        spec = GossipSpec(
            protocol=protocol,
            num_nodes=num_nodes,
            fanout=min(2, num_nodes - 1),
            seed=seed,
            churn=ChurnSpec(leave_fraction=leave, join_fraction=join),
        )
        result = run_gossip(spec)
        per_round = result.new_informed_per_round()
        assert int(per_round.sum()) == result.delivered_count
        assert 1 <= result.delivered_count <= result.ever_alive_count
        # A node is informed only within the executed horizon, and only
        # while it exists: never before joining, never after leaving.
        informed = result.informed_round[result.delivered_mask]
        assert np.all(informed <= result.rounds_executed)
        assert np.all(informed >= result.join_round[result.delivered_mask])
        assert np.all(informed < result.leave_round[result.delivered_mask])

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        workers=st.sampled_from([2, 3, 5]),
    )
    @settings(max_examples=6, deadline=None)
    def test_seed_worker_and_chunking_invariance_of_studies(self, seed, workers):
        """Fan-out plumbing never changes a gossip study: any worker count
        (hence any chunk partition) through the thread lane reproduces the
        in-process study bit for bit, and the same seed reproduces the
        same study."""
        config = GossipStudyConfig(
            protocols=("tree", "push", "epto"),
            node_counts=(150, 400),
            churn=ChurnSpec(leave_fraction=0.2),
            noise_sigma=0.05,
            seed=seed,
        )
        inline = run_gossip_study(config)
        fanned = run_gossip_study(config, workers=workers, executor="thread")
        repeated = run_gossip_study(config)
        assert np.array_equal(inline.metrics, fanned.metrics)
        assert np.array_equal(inline.metrics, repeated.metrics)
