"""Tests for repro.utils.rng."""

from __future__ import annotations

import pytest

from repro.utils.rng import DEFAULT_SEED, RandomStream, spawn_streams


class TestRandomStream:
    def test_same_seed_same_sequence(self):
        a = RandomStream(seed=7)
        b = RandomStream(seed=7)
        assert [a.uniform(0, 1) for _ in range(5)] == [b.uniform(0, 1) for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomStream(seed=7)
        b = RandomStream(seed=8)
        assert [a.uniform(0, 1) for _ in range(5)] != [b.uniform(0, 1) for _ in range(5)]

    def test_uniform_respects_bounds(self):
        stream = RandomStream(seed=1)
        for _ in range(100):
            value = stream.uniform(2.0, 3.0)
            assert 2.0 <= value < 3.0

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            RandomStream(seed=1).uniform(3.0, 2.0)

    def test_uniform_array_shape(self):
        array = RandomStream(seed=1).uniform_array(0.0, 1.0, (3, 4))
        assert array.shape == (3, 4)
        assert ((array >= 0.0) & (array < 1.0)).all()

    def test_integers_range(self):
        stream = RandomStream(seed=1)
        values = {stream.integers(0, 3) for _ in range(200)}
        assert values == {0, 1, 2}

    def test_choice_from_sequence(self):
        stream = RandomStream(seed=1)
        options = ["a", "b", "c"]
        assert all(stream.choice(options) in options for _ in range(20))

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RandomStream(seed=1).choice([])

    def test_shuffle_is_permutation(self):
        stream = RandomStream(seed=1)
        items = list(range(10))
        shuffled = stream.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(10)), "shuffle must not mutate its input"

    def test_normal_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            RandomStream(seed=1).normal(0.0, -1.0)

    def test_lognormal_is_positive(self):
        stream = RandomStream(seed=1)
        assert all(stream.lognormal(0.0, 0.5) > 0 for _ in range(50))

    def test_rejects_non_integer_seed(self):
        with pytest.raises(TypeError):
            RandomStream(seed=1.5)  # type: ignore[arg-type]

    def test_rejects_bool_seed(self):
        with pytest.raises(TypeError):
            RandomStream(seed=True)  # type: ignore[arg-type]

    def test_default_seed_constant(self):
        assert RandomStream().seed == DEFAULT_SEED


class TestSpawning:
    def test_children_are_deterministic(self):
        a_children = [s.uniform(0, 1) for s in spawn_streams(5, 4)]
        b_children = [s.uniform(0, 1) for s in spawn_streams(5, 4)]
        assert a_children == b_children

    def test_children_are_independent(self):
        children = spawn_streams(5, 3)
        draws = [child.uniform(0, 1) for child in children]
        assert len(set(draws)) == 3

    def test_spawn_count_matches(self):
        assert len(spawn_streams(1, 10)) == 10
        assert spawn_streams(1, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_streams(1, -1)

    def test_spawn_advances_parent_state(self):
        parent = RandomStream(seed=3)
        first = parent.spawn().uniform(0, 1)
        second = parent.spawn().uniform(0, 1)
        assert first != second

    def test_spawn_seed_matches_spawn(self):
        """spawn_seed() must yield exactly the seeds spawn() would use."""
        parent_a = RandomStream(seed=9)
        parent_b = RandomStream(seed=9)
        for _ in range(5):
            assert RandomStream(seed=parent_a.spawn_seed()).uniform(0, 1) == (
                parent_b.spawn().uniform(0, 1)
            )

    def test_spawn_seed_and_spawn_interleave(self):
        parent_a = RandomStream(seed=4)
        parent_b = RandomStream(seed=4)
        assert parent_a.spawn_seed() == parent_b.spawn().seed
        assert parent_a.spawn().seed == parent_b.spawn_seed()
