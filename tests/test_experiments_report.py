"""Tests for repro.experiments.report."""

from __future__ import annotations

import pytest

from repro.experiments.report import (
    render_hit_rate_table,
    render_series_table,
    render_table,
)


class TestRenderTable:
    def test_alignment_and_header(self):
        rows = [{"clusters": 2.0, "ECEF": 1.234}, {"clusters": 10.0, "ECEF": 2.345}]
        text = render_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "clusters" in lines[1] and "ECEF" in lines[1]
        assert len(lines) == 5

    def test_integer_like_values_render_without_decimals(self):
        text = render_table([{"n": 4.0, "x": 1.5}])
        assert "4.000" not in text
        assert "1.500" in text

    def test_empty_rows_returns_title(self):
        assert render_table([], title="nothing") == "nothing"

    def test_rejects_inconsistent_rows(self):
        with pytest.raises(ValueError):
            render_table([{"a": 1.0}, {"b": 2.0}])


class TestRenderSeriesTable:
    def test_series_columns(self):
        text = render_series_table(
            "clusters", [2, 3], {"ECEF": [1.0, 2.0], "FEF": [1.5, 2.5]}
        )
        assert "ECEF" in text and "FEF" in text
        assert len(text.splitlines()) == 4

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_series_table("x", [1, 2], {"a": [1.0]})


class TestRenderHitRateTable:
    def test_mentions_iteration_count(self):
        text = render_hit_rate_table(
            [5, 10], {"ECEF": [40, 30], "ECEF-LAT": [45, 46]}, iterations=100
        )
        assert "100 iterations" in text
        assert "ECEF-LAT" in text
