"""Tests for repro.simulator.engine."""

from __future__ import annotations

import pytest

from repro.simulator.engine import SimulationEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        log: list[str] = []
        engine.schedule_at(2.0, lambda: log.append("late"))
        engine.schedule_at(1.0, lambda: log.append("early"))
        engine.run()
        assert log == ["early", "late"]
        assert engine.now == 2.0

    def test_ties_run_in_scheduling_order(self):
        engine = SimulationEngine()
        log: list[int] = []
        for index in range(5):
            engine.schedule_at(1.0, lambda i=index: log.append(i))
        engine.run()
        assert log == [0, 1, 2, 3, 4]

    def test_schedule_after_is_relative(self):
        engine = SimulationEngine()
        times: list[float] = []

        def chain():
            times.append(engine.now)
            if len(times) < 3:
                engine.schedule_after(0.5, chain)

        engine.schedule_at(0.0, chain)
        engine.run()
        assert times == pytest.approx([0.0, 0.5, 1.0])

    def test_callbacks_can_schedule_new_events(self):
        engine = SimulationEngine()
        seen: list[float] = []
        engine.schedule_at(1.0, lambda: engine.schedule_at(3.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [3.0]

    def test_rejects_scheduling_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError, match="before the current time"):
            engine.schedule_at(0.5, lambda: None)

    def test_rejects_negative_times(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_at(-1.0, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule_after(-1.0, lambda: None)

    def test_rejects_non_callable(self):
        engine = SimulationEngine()
        with pytest.raises(TypeError):
            engine.schedule_at(0.0, callback=42)  # type: ignore[arg-type]


class TestRunControls:
    def test_until_leaves_future_events_pending(self):
        engine = SimulationEngine()
        log: list[float] = []
        engine.schedule_at(1.0, lambda: log.append(1.0))
        engine.schedule_at(5.0, lambda: log.append(5.0))
        engine.run(until=2.0)
        assert log == [1.0]
        assert engine.pending_events == 1
        engine.run()
        assert log == [1.0, 5.0]

    def test_max_events_limits_execution(self):
        engine = SimulationEngine()
        for index in range(10):
            engine.schedule_at(float(index), lambda: None)
        engine.run(max_events=3)
        assert engine.processed_events == 3
        assert engine.pending_events == 7

    def test_reset_clears_everything(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.run()
        engine.schedule_at(4.0, lambda: None)
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0
        assert engine.processed_events == 0

    def test_empty_run_is_noop(self):
        engine = SimulationEngine()
        assert engine.run() == 0.0


class TestUntilClockSemantics:
    """Regression tests: ``run(until=T)`` must advance the clock to ``T``
    whenever the queue drains, regardless of how many events executed."""

    def test_drained_queue_advances_clock_to_until(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        assert engine.run(until=3.0) == 3.0
        assert engine.now == 3.0

    def test_empty_queue_advances_clock_to_until(self):
        engine = SimulationEngine()
        assert engine.run(until=2.0) == 2.0

    def test_tiled_until_runs_leave_no_gaps(self):
        engine = SimulationEngine()
        engine.schedule_at(0.5, lambda: None)
        engine.run(until=1.0)
        # The clock sits at the horizon, so scheduling inside (0.5, 1.0] that
        # already elapsed is rejected rather than silently accepted.
        with pytest.raises(ValueError, match="before the current time"):
            engine.schedule_at(0.75, lambda: None)
        engine.schedule_at(1.5, lambda: None)
        assert engine.run(until=2.0) == 2.0

    def test_pending_events_keep_clock_at_last_processed(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(5.0, lambda: None)
        assert engine.run(until=2.0) == 1.0
        assert engine.pending_events == 1

    def test_max_events_trip_keeps_clock_at_last_event(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        assert engine.run(until=10.0, max_events=1) == 1.0
        assert engine.pending_events == 1

    def test_max_events_draining_the_queue_still_reaches_until(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        assert engine.run(until=4.0, max_events=1) == 4.0

    def test_until_alone_without_max_events_counts_all_events(self):
        engine = SimulationEngine()
        log: list[float] = []
        for t in (0.5, 1.0, 1.5):
            engine.schedule_at(t, lambda t=t: log.append(t))
        engine.run(until=1.25, max_events=5)
        assert log == [0.5, 1.0]
        assert engine.now == 1.0  # queue still holds the 1.5 event
