"""Fixture tests for the reprolint static-analysis engine (``tools/reprolint``).

Every rule gets at least one *positive* fixture (a seeded violation the rule
must flag) and one *negative* fixture (the sanctioned idiom it must pass).
The mutation-regression class replays the real violations this checker found
in the tree — reintroducing any of those patterns must fail CI again.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
TOOLS = REPO / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from reprolint import Config, iter_rules, lint_paths, lint_source  # noqa: E402

#: A path inside both the determinism scope and the api scope.
DET_PATH = "src/repro/experiments/fixture.py"
#: A path outside the determinism scope but inside the api scope.
API_PATH = "src/repro/analysis/fixture.py"


def rules_of(violations) -> set[str]:
    return {violation.rule for violation in violations}


def assert_flags(source: str, rule: str, path: str = DET_PATH) -> list:
    violations = lint_source(source, path=path)
    assert rule in rules_of(violations), (
        f"expected {rule} on fixture, got {sorted(rules_of(violations))}"
    )
    return [violation for violation in violations if violation.rule == rule]


def assert_clean(source: str, rule: str, path: str = DET_PATH) -> None:
    violations = lint_source(source, path=path)
    assert rule not in rules_of(violations), (
        f"{rule} fired on sanctioned idiom: "
        f"{[violation.render() for violation in violations]}"
    )


# ---------------------------------------------------------------------------
# determinism family
# ---------------------------------------------------------------------------


class TestDeterminismRandomModule:
    def test_flags_stdlib_random_draw(self):
        assert_flags(
            "import random\n"
            "def pick(items):\n"
            "    return random.choice(items)\n",
            "determinism-random",
        )

    def test_flags_from_import_alias(self):
        assert_flags(
            "from random import shuffle\n"
            "def scramble(items):\n"
            "    shuffle(items)\n"
            "    return items\n",
            "determinism-random",
        )

    def test_passes_seeded_stream_facade(self):
        assert_clean(
            "def pick(items, stream):\n"
            "    return stream.choice(items)\n",
            "determinism-random",
        )

    def test_out_of_scope_module_is_ignored(self):
        assert_clean(
            "import random\n"
            "def pick(items):\n"
            "    return random.choice(items)\n",
            "determinism-random",
            path="tools/somewhere/fixture.py",
        )


class TestDeterminismNumpyGlobal:
    def test_flags_legacy_global_generator(self):
        assert_flags(
            "import numpy as np\n"
            "def draw(n):\n"
            "    return np.random.rand(n)\n",
            "determinism-np-random",
        )

    def test_passes_seeded_constructor(self):
        assert_clean(
            "import numpy as np\n"
            "def make(seed):\n"
            "    return np.random.default_rng(seed)\n",
            "determinism-np-random",
        )


class TestDeterminismUnseededRng:
    def test_flags_argless_default_rng(self):
        assert_flags(
            "import numpy as np\n"
            "def make():\n"
            "    return np.random.default_rng()\n",
            "determinism-unseeded-rng",
        )

    def test_flags_explicit_none_seed(self):
        assert_flags(
            "import numpy as np\n"
            "def make():\n"
            "    return np.random.default_rng(None)\n",
            "determinism-unseeded-rng",
        )

    def test_passes_seeded_default_rng(self):
        assert_clean(
            "import numpy as np\n"
            "def make(seed):\n"
            "    return np.random.default_rng(seed)\n",
            "determinism-unseeded-rng",
        )


class TestDeterminismWallclock:
    def test_flags_time_time(self):
        assert_flags(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n",
            "determinism-wallclock",
        )

    def test_flags_os_urandom(self):
        assert_flags(
            "import os\n"
            "def entropy():\n"
            "    return os.urandom(8)\n",
            "determinism-wallclock",
        )

    def test_passes_measurement_clocks(self):
        assert_clean(
            "import time\n"
            "def measure():\n"
            "    start = time.monotonic()\n"
            "    return time.perf_counter() - start\n",
            "determinism-wallclock",
        )


class TestDeterminismSetOrder:
    def test_flags_list_built_from_set_iteration(self):
        assert_flags(
            "def collect(items):\n"
            "    return [item for item in set(items)]\n",
            "determinism-set-order",
        )

    def test_flags_set_typed_local(self):
        assert_flags(
            "def collect(items):\n"
            "    seen = set(items)\n"
            "    return list(seen)\n",
            "determinism-set-order",
        )

    def test_flags_keys_feeding_derive_seed(self):
        assert_flags(
            "from repro.utils.rng import derive_seed\n"
            "def seeds(seed, table):\n"
            "    return derive_seed(seed, *table.keys())\n",
            "determinism-set-order",
        )

    def test_passes_sorted_set(self):
        assert_clean(
            "def collect(items):\n"
            "    return [item for item in sorted(set(items))]\n",
            "determinism-set-order",
        )


class TestDeterminismIdComparison:
    def test_flags_id_ordering(self):
        assert_flags(
            "def before(a, b):\n"
            "    return id(a) < id(b)\n",
            "determinism-id-comparison",
        )

    def test_flags_sort_key_id(self):
        assert_flags(
            "def order(items):\n"
            "    return sorted(items, key=id)\n",
            "determinism-id-comparison",
        )

    def test_passes_identity_check_and_value_sort(self):
        assert_clean(
            "def same(a, b):\n"
            "    return a is b\n"
            "def order(items):\n"
            "    return sorted(items, key=str)\n",
            "determinism-id-comparison",
        )


# ---------------------------------------------------------------------------
# resource lifecycle family (applies to every path)
# ---------------------------------------------------------------------------

_SHM_IMPORT = "from multiprocessing import shared_memory\n"


class TestResourceLifecycle:
    def test_flags_never_released_block(self):
        assert_flags(
            _SHM_IMPORT
            + "def leak():\n"
            "    block = shared_memory.SharedMemory(create=True, size=16)\n"
            "    block.buf[0] = 1\n",
            "resource-lifecycle",
            path="src/repro/runtime/fixture.py",
        )

    def test_passes_returned_ownership_transfer(self):
        assert_clean(
            _SHM_IMPORT
            + "def make():\n"
            "    block = shared_memory.SharedMemory(create=True, size=16)\n"
            "    return block\n",
            "resource-lifecycle",
            path="src/repro/runtime/fixture.py",
        )

    def test_passes_context_manager(self):
        assert_clean(
            "import socket\n"
            "def probe(addr):\n"
            "    with socket.create_connection(addr) as sock:\n"
            "        sock.sendall(b'x')\n",
            "resource-lifecycle",
            path="src/repro/runtime/fixture.py",
        )


class TestResourceReleaseGuard:
    def test_flags_release_on_happy_path_only(self):
        assert_flags(
            _SHM_IMPORT
            + "def risky(payload):\n"
            "    block = shared_memory.SharedMemory(create=True, size=16)\n"
            "    block.buf[: len(payload)] = payload\n"
            "    block.close()\n"
            "    block.unlink()\n",
            "resource-release-guard",
            path="src/repro/runtime/fixture.py",
        )

    def test_passes_try_finally(self):
        assert_clean(
            _SHM_IMPORT
            + "def safe(payload):\n"
            "    block = shared_memory.SharedMemory(create=True, size=16)\n"
            "    try:\n"
            "        block.buf[: len(payload)] = payload\n"
            "    finally:\n"
            "        block.close()\n"
            "        block.unlink()\n",
            "resource-release-guard",
            path="src/repro/runtime/fixture.py",
        )

    def test_call_argument_transfers_ownership(self):
        assert_clean(
            _SHM_IMPORT
            + "def handoff(consume):\n"
            "    block = shared_memory.SharedMemory(create=True, size=16)\n"
            "    consume(block)\n",
            "resource-lifecycle",
            path="src/repro/runtime/fixture.py",
        )


# ---------------------------------------------------------------------------
# lock discipline
# ---------------------------------------------------------------------------

# The marker is split across adjacent literals so reprolint's *textual* scan
# of this test file does not register _LOCK_HEADER itself as a guarded name.
_LOCK_HEADER = (
    "import threading\n"
    "class Pool:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._jobs = {}  # guarded-" "by: _lock\n"
)


class TestLockGuardedBy:
    def test_flags_unguarded_access(self):
        violations = assert_flags(
            _LOCK_HEADER
            + "    def count(self):\n"
            "        return len(self._jobs)\n",
            "lock-guarded-by",
            path="src/repro/runtime/fixture.py",
        )
        assert "_lock" in violations[0].message

    def test_passes_access_under_lock(self):
        assert_clean(
            _LOCK_HEADER
            + "    def count(self):\n"
            "        with self._lock:\n"
            "            return len(self._jobs)\n",
            "lock-guarded-by",
            path="src/repro/runtime/fixture.py",
        )

    def test_passes_holds_marked_helper(self):
        assert_clean(
            _LOCK_HEADER
            + "    def _count_locked(self):  # holds: _lock\n"
            "        return len(self._jobs)\n",
            "lock-guarded-by",
            path="src/repro/runtime/fixture.py",
        )

    def test_init_is_exempt(self):
        assert_clean(_LOCK_HEADER, "lock-guarded-by", path="src/repro/runtime/f.py")


# ---------------------------------------------------------------------------
# API hygiene
# ---------------------------------------------------------------------------

_DOCUMENTED_DRIVER = (
    "def run_fixture_study(workers=None, executor=None, pool=None):\n"
    '    """Run the fixture study.\n'
    "\n"
    "    ``workers`` defaults to ``REPRO_WORKERS``; ``executor`` defaults to\n"
    "    ``REPRO_EXECUTOR`` and the remote lane reads ``REPRO_HOSTS``.\n"
    '    """\n'
    "    return workers, executor, pool\n"
)


class TestApiExecutorParam:
    def test_flags_workers_without_lane_params(self):
        assert_flags(
            "def run_fixture_study(workers=None):\n"
            '    """Run it; ``workers`` defaults to ``REPRO_WORKERS``."""\n'
            "    return workers\n",
            "api-executor-param",
            path=API_PATH,
        )

    def test_passes_full_lane_surface(self):
        assert_clean(_DOCUMENTED_DRIVER, "api-executor-param", path=API_PATH)

    def test_private_and_non_driver_functions_exempt(self):
        assert_clean(
            "def _run_helper(workers=None):\n"
            "    return workers\n"
            "def compute_stuff(workers=None):\n"
            "    return workers\n",
            "api-executor-param",
            path=API_PATH,
        )


class TestApiEnvDoc:
    def test_flags_undocumented_fallbacks(self):
        violations = assert_flags(
            "def run_fixture_study(workers=None, executor=None, pool=None):\n"
            '    """Run the fixture study."""\n'
            "    return workers, executor, pool\n",
            "api-env-doc",
            path=API_PATH,
        )
        mentioned = " ".join(violation.message for violation in violations)
        assert "REPRO_" in mentioned

    def test_passes_documented_driver(self):
        assert_clean(_DOCUMENTED_DRIVER, "api-env-doc", path=API_PATH)


# ---------------------------------------------------------------------------
# suppression comments, selection, engine surface
# ---------------------------------------------------------------------------


class TestSuppression:
    SOURCE = (
        "import random\n"
        "def pick(items):\n"
        "    return random.choice(items)  # reprolint: disable=determinism-random\n"
    )

    def test_trailing_comment_suppresses_own_line(self):
        assert_clean(self.SOURCE, "determinism-random")

    def test_own_line_comment_suppresses_next_line(self):
        assert_clean(
            "import random\n"
            "def pick(items):\n"
            "    # reprolint: disable=determinism-random\n"
            "    return random.choice(items)\n",
            "determinism-random",
        )

    def test_disable_all(self):
        assert_clean(
            "import random\n"
            "def pick(items):\n"
            "    return random.choice(items)  # reprolint: disable=all\n",
            "determinism-random",
        )

    def test_unrelated_rule_name_does_not_suppress(self):
        assert_flags(
            "import random\n"
            "def pick(items):\n"
            "    return random.choice(items)  # reprolint: disable=api-env-doc\n",
            "determinism-random",
        )


class TestEngineSurface:
    def test_syntax_error_becomes_parse_error_violation(self):
        violations = lint_source("def broken(:\n", path=DET_PATH)
        assert rules_of(violations) == {"parse-error"}

    def test_select_restricts_rules(self):
        source = (
            "import random, time\n"
            "def f():\n"
            "    return random.random() + time.time()\n"
        )
        only = lint_source(source, path=DET_PATH, select=["determinism-wallclock"])
        assert rules_of(only) == {"determinism-wallclock"}

    def test_every_registered_rule_has_identity(self):
        rules = list(iter_rules())
        names = [rule.id for rule in rules]
        assert len(names) == len(set(names)) and len(names) >= 11
        for rule in rules:
            assert rule.family and rule.summary

    def test_violation_as_dict_round_trips_through_json(self):
        violation = lint_source(
            "import time\ndef f():\n    return time.time()\n", path=DET_PATH
        )[0]
        decoded = json.loads(json.dumps(violation.as_dict()))
        assert decoded["rule"] == "determinism-wallclock"
        assert decoded["path"] == DET_PATH
        assert decoded["line"] == 3

    def test_lint_paths_counts_files(self, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        (tmp_path / "skipme.txt").write_text("import random\n")
        violations, files_checked = lint_paths([tmp_path], config=Config())
        assert files_checked == 1 and violations == []


class TestCommandLine:
    def _run(self, *argv: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(TOOLS)
        return subprocess.run(
            [sys.executable, "-m", "reprolint", *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
        )

    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "clean.py").write_text("def f():\n    return 1\n")
        result = self._run(str(tmp_path))
        assert result.returncode == 0, result.stderr

    def test_violations_exit_one_with_json_report(self, tmp_path):
        bad = tmp_path / "repro" / "experiments" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\ndef f():\n    return random.random()\n")
        result = self._run(str(tmp_path), "--format", "json")
        assert result.returncode == 1
        report = json.loads(result.stdout)
        assert report["files_checked"] == 1
        assert [v["rule"] for v in report["violations"]] == ["determinism-random"]

    def test_unknown_rule_name_is_usage_error(self, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        result = self._run(str(tmp_path), "--select", "no-such-rule")
        assert result.returncode == 2

    def test_repository_tree_is_clean(self):
        result = self._run("src", "tests")
        assert result.returncode == 0, result.stdout + result.stderr


# ---------------------------------------------------------------------------
# mutation regressions: the violations this checker found in the tree.
# Reintroducing any of these patterns must fail CI again.
# ---------------------------------------------------------------------------


class TestMutationRegressions:
    def test_unguarded_shm_probe_fails_again(self):
        # transport.shared_memory_available() before the fix: close/unlink
        # ran only on the exception-free path.
        assert_flags(
            _SHM_IMPORT
            + "def shared_memory_available():\n"
            "    probe = shared_memory.SharedMemory(create=True, size=16)\n"
            "    probe.close()\n"
            "    probe.unlink()\n"
            "    return True\n",
            "resource-release-guard",
            path="src/repro/runtime/transport.py",
        )

    def test_unsorted_needed_set_fails_again(self):
        # simulator/batch.py before the fix: a dict comprehension iterating a
        # set of indices decided compilation order.
        assert_flags(
            "def plan(metas, needed):\n"
            "    unique = set(needed)\n"
            "    return {index: metas[index] for index in unique}\n",
            "determinism-set-order",
            path="src/repro/simulator/batch.py",
        )

    def test_lane_blind_driver_fails_again(self):
        # experiments/hit_rate.py before the fix: workers= with no
        # executor=/pool= lane surface.
        assert_flags(
            "def run_hit_rate_study(workers=None):\n"
            '    """Sweep; ``workers`` defaults to ``REPRO_MC_WORKERS``."""\n'
            "    return workers\n",
            "api-executor-param",
            path="src/repro/experiments/hit_rate.py",
        )

    def test_unguarded_agent_roster_read_fails_again(self):
        # runtime/remote.py before the fix: the workers property summed
        # agent capacities without taking pool._lock.
        assert_flags(
            "import threading\n"
            "class RemoteStudyPool:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "        self._agents = []  # guarded-" "by: _lock\n"
            "    @property\n"
            "    def workers(self):\n"
            "        return sum(link.capacity for link in self._agents)\n",
            "lock-guarded-by",
            path="src/repro/runtime/remote.py",
        )

    def test_unseeded_rng_fails_again(self):
        # The rule the whole rng facade exists to make unnecessary.
        assert_flags(
            "import numpy as np\n"
            "def jitter():\n"
            "    return np.random.default_rng().normal()\n",
            "determinism-unseeded-rng",
            path="src/repro/simulator/fixture.py",
        )
