"""Tests for repro.core.schedule (schedule structure and timing model)."""

from __future__ import annotations

import pytest

from repro.core.schedule import BroadcastSchedule, ScheduledTransfer, evaluate_order
from repro.topology.generators import make_uniform_grid


class TestScheduledTransfer:
    def test_rejects_self_transfer(self):
        with pytest.raises(ValueError):
            ScheduledTransfer(
                sender=1, receiver=1, start_time=0, sender_release_time=1,
                arrival_time=2, gap=1, latency=1,
            )

    def test_rejects_inconsistent_times(self):
        with pytest.raises(ValueError):
            ScheduledTransfer(
                sender=0, receiver=1, start_time=1.0, sender_release_time=0.5,
                arrival_time=2.0, gap=1, latency=1,
            )
        with pytest.raises(ValueError):
            ScheduledTransfer(
                sender=0, receiver=1, start_time=0.0, sender_release_time=1.0,
                arrival_time=0.5, gap=1, latency=1,
            )


class TestEvaluateOrderTiming:
    def test_single_transfer_times(self, heterogeneous_grid):
        schedule = evaluate_order(
            heterogeneous_grid, 1_000, 0, [(0, 1), (0, 2)], heuristic_name="t"
        )
        transfer = schedule.transfers[0]
        assert transfer.start_time == 0.0
        assert transfer.sender_release_time == pytest.approx(0.10)
        assert transfer.arrival_time == pytest.approx(0.101)
        assert schedule.arrival_times[1] == pytest.approx(0.101)

    def test_sender_serialisation_through_gap(self, heterogeneous_grid):
        schedule = evaluate_order(heterogeneous_grid, 1_000, 0, [(0, 1), (0, 2)])
        second = schedule.transfers[1]
        # The root's second send starts only after the first send's gap.
        assert second.start_time == pytest.approx(0.10)
        assert second.arrival_time == pytest.approx(0.10 + 0.50 + 0.010)

    def test_relay_waits_for_arrival(self, heterogeneous_grid):
        schedule = evaluate_order(heterogeneous_grid, 1_000, 0, [(0, 1), (1, 2)])
        relay = schedule.transfers[1]
        assert relay.start_time == pytest.approx(0.101)  # cluster 1's arrival
        assert relay.arrival_time == pytest.approx(0.101 + 0.30 + 0.005)

    def test_completion_includes_local_broadcast(self, heterogeneous_grid):
        schedule = evaluate_order(heterogeneous_grid, 1_000, 0, [(0, 1), (0, 2)])
        # Cluster 1 (T = 2.0) received at 0.101 and never sends.
        assert schedule.completion_times[1] == pytest.approx(0.101 + 2.0)
        # The root (T = 0.1) finishes its sends at 0.6.
        assert schedule.completion_times[0] == pytest.approx(0.10 + 0.50 + 0.1)

    def test_sender_local_broadcast_delayed_by_its_sends(self, heterogeneous_grid):
        schedule = evaluate_order(heterogeneous_grid, 1_000, 0, [(0, 1), (1, 2)])
        # Cluster 1 relays before broadcasting locally: local start is after its gap.
        assert schedule.local_start_times[1] == pytest.approx(0.101 + 0.30)
        assert schedule.completion_times[1] == pytest.approx(0.101 + 0.30 + 2.0)

    def test_makespan_is_max_completion(self, heterogeneous_grid):
        schedule = evaluate_order(heterogeneous_grid, 1_000, 0, [(0, 1), (0, 2)])
        assert schedule.makespan == pytest.approx(max(schedule.completion_times))

    def test_explicit_broadcast_times_override_grid(self, heterogeneous_grid):
        schedule = evaluate_order(
            heterogeneous_grid, 1_000, 0, [(0, 1), (0, 2)], broadcast_times=[0, 0, 0]
        )
        assert schedule.makespan == pytest.approx(schedule.inter_cluster_makespan)

    def test_non_zero_root(self, heterogeneous_grid):
        schedule = evaluate_order(heterogeneous_grid, 1_000, 2, [(2, 0), (0, 1)])
        schedule.validate()
        assert schedule.root == 2
        assert schedule.arrival_times[2] == 0.0


class TestEvaluateOrderValidation:
    def test_rejects_wrong_root(self, uniform_grid):
        with pytest.raises(ValueError):
            evaluate_order(uniform_grid, 1_000, 99, [])

    def test_rejects_uninformed_sender(self, uniform_grid):
        with pytest.raises(ValueError, match="before being informed"):
            evaluate_order(uniform_grid, 1_000, 0, [(1, 2), (0, 1), (0, 3)])

    def test_rejects_double_receive(self, uniform_grid):
        with pytest.raises(ValueError, match="already informed"):
            evaluate_order(uniform_grid, 1_000, 0, [(0, 1), (0, 1), (0, 2), (0, 3)])

    def test_rejects_missing_cluster(self, uniform_grid):
        with pytest.raises(ValueError, match="never receive"):
            evaluate_order(uniform_grid, 1_000, 0, [(0, 1), (0, 2)])

    def test_rejects_self_send(self, uniform_grid):
        with pytest.raises(ValueError, match="itself"):
            evaluate_order(uniform_grid, 1_000, 0, [(0, 0), (0, 1), (0, 2), (0, 3)])

    def test_rejects_bad_broadcast_times_length(self, uniform_grid):
        with pytest.raises(ValueError, match="entries"):
            evaluate_order(
                uniform_grid, 1_000, 0, [(0, 1), (0, 2), (0, 3)], broadcast_times=[0.0]
            )

    def test_rejects_negative_message(self, uniform_grid):
        with pytest.raises(ValueError):
            evaluate_order(uniform_grid, -1, 0, [(0, 1), (0, 2), (0, 3)])


class TestBroadcastScheduleQueries:
    def test_order_round_trip(self, uniform_grid):
        order = [(0, 2), (2, 1), (0, 3)]
        schedule = evaluate_order(uniform_grid, 1_000, 0, order)
        assert schedule.order == order

    def test_sends_and_receive_of(self, uniform_grid):
        schedule = evaluate_order(uniform_grid, 1_000, 0, [(0, 2), (2, 1), (0, 3)])
        assert [t.receiver for t in schedule.sends_of(0)] == [2, 3]
        assert schedule.receive_of(1).sender == 2
        assert schedule.receive_of(0) is None

    def test_index_maps_cover_every_cluster(self, uniform_grid):
        order = [(0, 2), (2, 1), (0, 3)]
        schedule = evaluate_order(uniform_grid, 1_000, 0, order)
        # The lazily built index maps must agree with a linear scan for every
        # cluster (including clusters that never send).
        for cluster in range(schedule.num_clusters):
            assert schedule.sends_of(cluster) == [
                t for t in schedule.transfers if t.sender == cluster
            ]
            expected = [t for t in schedule.transfers if t.receiver == cluster]
            assert schedule.receive_of(cluster) == (expected[0] if expected else None)

    def test_sends_of_returns_a_copy(self, uniform_grid):
        schedule = evaluate_order(uniform_grid, 1_000, 0, [(0, 1), (0, 2), (0, 3)])
        schedule.sends_of(0).clear()
        assert len(schedule.sends_of(0)) == 3

    def test_evaluate_order_accepts_shared_costs(self, uniform_grid):
        from repro.core.costs import GridCostCache

        order = [(0, 1), (1, 2), (0, 3)]
        plain = evaluate_order(uniform_grid, 1_000, 0, order)
        cache = GridCostCache.for_grid(uniform_grid, 1_000)
        cached = evaluate_order(uniform_grid, 1_000, 0, order, costs=cache)
        assert cached.makespan == plain.makespan
        assert cached.arrival_times == plain.arrival_times
        assert cached.completion_times == plain.completion_times

    def test_evaluate_order_rejects_mismatched_costs(self, uniform_grid):
        from repro.core.costs import GridCostCache

        cache = GridCostCache.for_grid(uniform_grid, 2_000)
        with pytest.raises(ValueError, match="different grid"):
            evaluate_order(
                uniform_grid, 1_000, 0, [(0, 1), (0, 2), (0, 3)], costs=cache
            )

    def test_validate_passes_for_well_formed(self, uniform_grid):
        schedule = evaluate_order(uniform_grid, 1_000, 0, [(0, 1), (1, 2), (0, 3)])
        schedule.validate()

    def test_validate_detects_tampered_schedule(self, uniform_grid):
        schedule = evaluate_order(uniform_grid, 1_000, 0, [(0, 1), (1, 2), (0, 3)])
        schedule.completion_times[2] = schedule.local_start_times[2] - 1.0
        with pytest.raises(ValueError):
            schedule.validate()

    def test_summary_mentions_heuristic_and_transfers(self, uniform_grid):
        schedule = evaluate_order(
            uniform_grid, 1_000, 0, [(0, 1), (0, 2), (0, 3)], heuristic_name="Demo"
        )
        text = schedule.summary()
        assert "Demo" in text
        assert "cluster 0 -> cluster 3" in text

    def test_single_cluster_schedule(self):
        grid = make_uniform_grid(1)
        schedule = evaluate_order(grid, 1_000, 0, [])
        assert schedule.makespan == pytest.approx(grid.broadcast_time(0, 1_000))
        schedule.validate()
