"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.topology.cluster import Cluster
from repro.topology.generators import RandomGridGenerator, make_uniform_grid
from repro.topology.grid import Grid, InterClusterLink
from repro.topology.grid5000 import build_grid5000_topology
from repro.utils.rng import RandomStream


@pytest.fixture
def uniform_grid() -> Grid:
    """A 4-cluster homogeneous grid (every link and cluster identical)."""
    return make_uniform_grid(4, cluster_size=8)


@pytest.fixture
def heterogeneous_grid() -> Grid:
    """A small hand-built heterogeneous grid with known parameters.

    Three clusters:

    * cluster 0 (root): T = 0.1 s
    * cluster 1: close to the root (cheap link), slow local broadcast (T = 2.0 s)
    * cluster 2: far from the root (expensive link), fast local broadcast (T = 0.05 s)
    """
    clusters = [
        Cluster(cluster_id=0, name="root", size=4, fixed_broadcast_time=0.1),
        Cluster(cluster_id=1, name="slow-local", size=4, fixed_broadcast_time=2.0),
        Cluster(cluster_id=2, name="far", size=4, fixed_broadcast_time=0.05),
    ]
    links = {
        (0, 1): InterClusterLink.from_values(latency=0.001, gap=0.10),
        (0, 2): InterClusterLink.from_values(latency=0.010, gap=0.50),
        (1, 2): InterClusterLink.from_values(latency=0.005, gap=0.30),
    }
    return Grid(clusters, links, name="heterogeneous-3")


@pytest.fixture
def random_grid() -> Grid:
    """A reproducible 6-cluster random grid drawn from the Table 2 ranges."""
    generator = RandomGridGenerator(cluster_size=4)
    return generator.generate(6, RandomStream(seed=42))


@pytest.fixture(scope="session")
def grid5000() -> Grid:
    """The Table 3 GRID5000 topology (session-scoped, it is immutable)."""
    return build_grid5000_topology()
