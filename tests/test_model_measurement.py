"""Tests for repro.model.measurement (simulated pLogP acquisition)."""

from __future__ import annotations

import pytest

from repro.model.measurement import (
    MeasurementProcedure,
    analytic_round_trip_oracle,
    fit_gap_function,
    fit_latency,
)
from repro.model.plogp import GapFunction, PLogPParameters


class TestFitLatency:
    def test_half_round_trip(self):
        assert fit_latency(0.020) == pytest.approx(0.010)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            fit_latency(-1.0)


class TestFitGapFunction:
    def test_recovers_affine_gap(self):
        true = PLogPParameters(
            latency=0.005,
            gap=GapFunction.from_bandwidth(overhead=0.001, bandwidth=1e7),
            num_procs=2,
        )
        sizes = [0, 1_000, 100_000, 1_000_000]
        rtts = [true.gap(s) + true.latency + true.gap(0) + true.latency for s in sizes]
        fitted = fit_gap_function(sizes, rtts, true.latency)
        for size in (10_000, 500_000, 2_000_000):
            assert fitted(size) == pytest.approx(true.gap(size), rel=0.05, abs=2e-3)

    def test_monotonicity_enforced_under_noise(self):
        sizes = [0, 1_000, 2_000]
        rtts = [0.010, 0.013, 0.012]  # noisy dip at the last point
        fitted = fit_gap_function(sizes, rtts, 0.004)
        assert fitted(2_000) >= fitted(1_000)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_gap_function([0, 1], [0.1], 0.01)

    def test_empty(self):
        with pytest.raises(ValueError):
            fit_gap_function([], [], 0.01)


class TestMeasurementProcedure:
    def test_recovers_ground_truth(self):
        true = PLogPParameters(
            latency=0.002,
            gap=GapFunction.from_bandwidth(overhead=0.0005, bandwidth=5e7),
            num_procs=2,
        )
        procedure = MeasurementProcedure(analytic_round_trip_oracle(true))
        measured = procedure.run()
        assert measured.latency == pytest.approx(true.latency, rel=0.3)
        assert measured.gap(1_048_576) == pytest.approx(true.gap(1_048_576), rel=0.1)

    def test_zero_probe_added_automatically(self):
        true = PLogPParameters.from_values(latency=0.001, gap=0.01)
        procedure = MeasurementProcedure(
            analytic_round_trip_oracle(true), probe_sizes=(1024, 4096)
        )
        assert procedure.probe_sizes[0] == 0.0

    def test_as_plogp_carries_num_procs(self):
        true = PLogPParameters.from_values(latency=0.001, gap=0.01)
        measured = MeasurementProcedure(analytic_round_trip_oracle(true)).run()
        assert measured.as_plogp(num_procs=12).num_procs == 12

    def test_rejects_non_callable_oracle(self):
        with pytest.raises(TypeError):
            MeasurementProcedure(oracle=42)  # type: ignore[arg-type]

    def test_rejects_negative_oracle_output(self):
        procedure = MeasurementProcedure(lambda size: -1.0)
        with pytest.raises(ValueError):
            procedure.run()

    def test_repetitions_take_minimum(self):
        calls = {"count": 0}

        def noisy_oracle(size: float) -> float:
            calls["count"] += 1
            return 0.01 if calls["count"] % 3 == 0 else 0.02

        measured = MeasurementProcedure(noisy_oracle, probe_sizes=(0,), repetitions=3).run()
        assert measured.raw_round_trips[0] == pytest.approx(0.01)


class TestSimulatorIntegration:
    def test_measurement_against_simulated_network(self, grid5000):
        """The measurement procedure run against the simulator recovers the
        Table 3 wide-area latency within a few percent."""
        from repro.simulator.network import SimulatedNetwork

        network = SimulatedNetwork(grid5000)
        source = grid5000.coordinator_rank(0)
        destination = grid5000.coordinator_rank(2)
        oracle = network.round_trip_oracle(source, destination)
        measured = MeasurementProcedure(oracle).run()
        true_latency = grid5000.latency(0, 2)
        assert measured.latency == pytest.approx(true_latency, rel=0.15)
