"""Tests for repro.model.plogp."""

from __future__ import annotations

import pytest

from repro.model.plogp import (
    GapFunction,
    PLogPParameters,
    merge_gap_functions,
    point_to_point_time,
)


class TestGapFunctionConstruction:
    def test_constant(self):
        g = GapFunction.constant(0.25)
        assert g(0) == 0.25
        assert g(10_000_000) == 0.25

    def test_from_points_sorts(self):
        g = GapFunction.from_points([(1000, 0.2), (0, 0.1)])
        assert g.sizes == (0.0, 1000.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GapFunction(sizes=(), gaps=())

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            GapFunction(sizes=(0.0, 1.0), gaps=(0.1,))

    def test_rejects_duplicate_sizes(self):
        with pytest.raises(ValueError):
            GapFunction.from_points([(0, 0.1), (0, 0.2)])

    def test_rejects_decreasing_gap(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            GapFunction.from_points([(0, 0.2), (1000, 0.1)])

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            GapFunction.from_points([(-1, 0.1)])
        with pytest.raises(ValueError):
            GapFunction.from_points([(0, -0.1)])

    def test_from_bandwidth(self):
        g = GapFunction.from_bandwidth(overhead=0.001, bandwidth=1e6)
        assert g(0) == pytest.approx(0.001)
        assert g(1e6) == pytest.approx(1.001)

    def test_from_bandwidth_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            GapFunction.from_bandwidth(overhead=0.0, bandwidth=0.0)


class TestGapFunctionEvaluation:
    def test_interpolation_is_linear(self):
        g = GapFunction.from_points([(0, 0.0), (100, 1.0)])
        assert g(25) == pytest.approx(0.25)
        assert g(50) == pytest.approx(0.5)

    def test_extrapolation_uses_last_slope(self):
        g = GapFunction.from_points([(0, 0.0), (100, 1.0)])
        assert g(200) == pytest.approx(2.0)

    def test_below_first_point_is_clamped(self):
        g = GapFunction.from_points([(100, 1.0), (200, 2.0)])
        assert g(10) == pytest.approx(1.0)

    def test_rejects_negative_size(self):
        g = GapFunction.constant(0.1)
        with pytest.raises(ValueError):
            g(-1)

    def test_monotone_non_decreasing(self):
        g = GapFunction.from_points([(0, 0.1), (1000, 0.2), (10_000, 1.0)])
        sizes = [0, 10, 500, 1000, 5000, 10_000, 50_000]
        values = [g(s) for s in sizes]
        assert values == sorted(values)


class TestGapFunctionDerived:
    def test_bandwidth_of_affine(self):
        g = GapFunction.from_bandwidth(overhead=0.0, bandwidth=2e6)
        assert g.bandwidth() == pytest.approx(2e6)

    def test_bandwidth_of_constant_is_infinite(self):
        assert GapFunction.constant(0.1).bandwidth() == float("inf")

    def test_scaled(self):
        g = GapFunction.constant(0.1).scaled(3.0)
        assert g(123) == pytest.approx(0.3)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            GapFunction.constant(0.1).scaled(0.0)

    def test_merge_takes_max_by_default(self):
        a = GapFunction.constant(0.1)
        b = GapFunction.from_points([(0, 0.05), (100, 0.5)])
        merged = merge_gap_functions([a, b])
        assert merged(0) == pytest.approx(0.1)
        assert merged(100) == pytest.approx(0.5)

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_gap_functions([])


class TestPLogPParameters:
    def test_point_to_point_time(self):
        params = PLogPParameters.from_values(latency=0.01, gap=0.2)
        assert params.point_to_point_time(123) == pytest.approx(0.21)

    def test_sender_occupancy_is_gap(self):
        params = PLogPParameters.from_values(latency=0.01, gap=0.2)
        assert params.sender_occupancy(123) == pytest.approx(0.2)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            PLogPParameters.from_values(latency=-0.01, gap=0.2)

    def test_rejects_bad_gap_type(self):
        with pytest.raises(TypeError):
            PLogPParameters(latency=0.0, gap=0.5)  # type: ignore[arg-type]

    def test_rejects_zero_procs(self):
        with pytest.raises(ValueError):
            PLogPParameters(latency=0.0, gap=GapFunction.constant(0.1), num_procs=0)

    def test_rejects_bool_procs(self):
        with pytest.raises(TypeError):
            PLogPParameters(latency=0.0, gap=GapFunction.constant(0.1), num_procs=True)


class TestFreeFunction:
    def test_point_to_point_sum(self):
        assert point_to_point_time(0.01, 0.3) == pytest.approx(0.31)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            point_to_point_time(float("nan"), 0.3)
