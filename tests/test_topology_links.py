"""Tests for repro.topology.links (Table 1 communication levels)."""

from __future__ import annotations

import pytest

from repro.topology.links import (
    CommunicationLevel,
    DEFAULT_LINK_CLASSES,
    LinkParameters,
    classify_latency,
    default_link_parameters,
)


class TestCommunicationLevel:
    def test_table1_ordering(self):
        """Lower level number means higher latency (Table 1)."""
        assert CommunicationLevel.WAN < CommunicationLevel.LAN
        assert CommunicationLevel.LAN < CommunicationLevel.LOCALHOST
        assert CommunicationLevel.LOCALHOST < CommunicationLevel.SHARED_MEMORY

    def test_every_level_has_description(self):
        for level in CommunicationLevel:
            assert level.describe().startswith("level")

    def test_every_level_has_defaults(self):
        assert set(DEFAULT_LINK_CLASSES) == set(CommunicationLevel)

    def test_default_latencies_respect_ordering(self):
        latencies = [DEFAULT_LINK_CLASSES[level].latency for level in CommunicationLevel]
        assert latencies == sorted(latencies, reverse=True)


class TestLinkParameters:
    def test_gap_function_matches_bandwidth(self):
        link = LinkParameters(
            latency=1e-3, bandwidth=1e8, overhead=1e-4, level=CommunicationLevel.LAN
        )
        gap = link.gap_function()
        assert gap(0) == pytest.approx(1e-4)
        assert gap(1e8) == pytest.approx(1e-4 + 1.0)

    def test_plogp_bundle(self):
        link = default_link_parameters(CommunicationLevel.WAN)
        params = link.plogp(num_procs=5)
        assert params.num_procs == 5
        assert params.latency == link.latency

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            LinkParameters(latency=0, bandwidth=0, overhead=0, level=CommunicationLevel.LAN)

    def test_default_link_parameters_type_check(self):
        with pytest.raises(TypeError):
            default_link_parameters("wan")  # type: ignore[arg-type]


class TestClassifyLatency:
    @pytest.mark.parametrize(
        "latency, expected",
        [
            (12e-3, CommunicationLevel.WAN),
            (5.2e-3, CommunicationLevel.WAN),
            (1e-3, CommunicationLevel.WAN),
            (500e-6, CommunicationLevel.LAN),
            (60e-6, CommunicationLevel.LAN),
            (47e-6, CommunicationLevel.LOCALHOST),
            (20e-6, CommunicationLevel.LOCALHOST),
            (2e-6, CommunicationLevel.SHARED_MEMORY),
        ],
    )
    def test_thresholds(self, latency, expected):
        assert classify_latency(latency) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            classify_latency(-1e-6)

    def test_table3_diagonal_is_local(self):
        """The intra-cluster latencies of Table 3 classify as non-WAN."""
        for latency_us in (47.56, 47.92, 35.52, 27.53):
            assert classify_latency(latency_us * 1e-6) != CommunicationLevel.WAN

    def test_table3_offdiagonal_is_wan(self):
        for latency_us in (12181.52, 5210.99, 5388.49):
            assert classify_latency(latency_us * 1e-6) == CommunicationLevel.WAN
