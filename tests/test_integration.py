"""End-to-end integration tests tying every layer together.

These tests retrace the paper's pipeline from raw latency measurements to the
final figures: identify logical clusters, build the grid, measure pLogP
parameters on the simulator, schedule the broadcast with every heuristic,
execute the schedules node-by-node and compare predicted with measured times.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import PAPER_HEURISTICS, get_heuristic
from repro.experiments.config import PracticalStudyConfig, SimulationStudyConfig
from repro.experiments.hit_rate import hit_rate_from_study
from repro.experiments.practical_study import run_practical_study
from repro.experiments.simulation_study import run_simulation_study
from repro.model.measurement import MeasurementProcedure
from repro.mpi.communicator import GridCommunicator
from repro.simulator.network import SimulatedNetwork
from repro.topology.clustering import identify_logical_clusters, membership_vector
from repro.topology.grid5000 import build_grid5000_topology, build_node_latency_matrix


class TestFullPipelineOnGrid5000:
    def test_cluster_identification_to_broadcast(self):
        """Latency matrix -> logical clusters -> grid -> schedule -> execution."""
        # 1. identify the logical clusters from the synthetic measurements
        matrix = build_node_latency_matrix(jitter=0.02, seed=11)
        clusters = identify_logical_clusters(matrix, tolerance=0.30)
        membership = membership_vector(clusters, matrix.shape[0])
        assert len(set(membership)) == len(clusters)

        # 2. the canonical Table 3 grid and a simulated MPI communicator
        grid = build_grid5000_topology()
        comm = GridCommunicator(grid)

        # 3. every heuristic produces an executable broadcast whose simulated
        #    time is positive and finite
        for key in PAPER_HEURISTICS:
            outcome = comm.bcast(1_048_576, heuristic=key)
            assert np.isfinite(outcome.measured_time)
            assert outcome.measured_time > 0
            assert outcome.execution.activation_times.count(None) == 0

    def test_plogp_measurement_feeds_scheduling(self):
        """Measure a wide-area link on the simulator, rebuild a grid with the
        measured parameters and check the schedule still behaves sanely."""
        grid = build_grid5000_topology()
        network = SimulatedNetwork(grid)
        oracle = network.round_trip_oracle(
            grid.coordinator_rank(0), grid.coordinator_rank(5)
        )
        measured = MeasurementProcedure(oracle).run()
        assert measured.latency == pytest.approx(grid.latency(0, 5), rel=0.2)
        predicted_transfer = measured.latency + measured.gap(1_048_576)
        actual_transfer = grid.transfer_time(0, 5, 1_048_576)
        assert predicted_transfer == pytest.approx(actual_transfer, rel=0.2)


class TestPaperHeadlineClaims:
    """The qualitative findings of the paper, asserted end to end."""

    @pytest.fixture(scope="class")
    def monte_carlo(self):
        return run_simulation_study(
            SimulationStudyConfig(cluster_counts=(5, 10, 20), iterations=60, seed=2006)
        )

    def test_flat_tree_scales_worst(self, monte_carlo):
        flat = monte_carlo.series("Flat Tree")
        ecef = monte_carlo.series("ECEF")
        # Flat tree grows roughly linearly with the cluster count.
        assert flat[-1] > 2.5 * ecef[-1]
        assert flat[-1] > flat[0] * 2

    def test_fef_worse_than_ecef_family(self, monte_carlo):
        fef = monte_carlo.series("FEF")
        for name in ("ECEF", "ECEF-LA", "ECEF-LAT", "ECEF-LAt"):
            assert fef[-1] > monte_carlo.series(name)[-1]

    def test_bottomup_between_fef_and_ecef(self, monte_carlo):
        bottomup = monte_carlo.series("BottomUp")[-1]
        assert monte_carlo.series("ECEF")[-1] < bottomup < monte_carlo.series("FEF")[-1]

    def test_ecef_family_nearly_flat_in_cluster_count(self, monte_carlo):
        ecef = monte_carlo.series("ECEF")
        assert ecef[-1] < ecef[0] * 1.35

    def test_hit_rate_analysis_runs_on_same_study(self, monte_carlo):
        hit_rate = hit_rate_from_study(monte_carlo)
        rates = hit_rate.hit_rates()
        assert rates.shape == (3, 7)
        # The ECEF family collectively dominates the global minimum.
        ecef_columns = [
            hit_rate.heuristic_names.index(name)
            for name in ("ECEF", "ECEF-LA", "ECEF-LAT", "ECEF-LAt")
        ]
        assert rates[:, ecef_columns].sum(axis=1).min() > 0.5

    def test_practical_study_prediction_accuracy_and_ranking(self):
        result = run_practical_study(
            PracticalStudyConfig(
                message_sizes=(1_048_576, 4_194_304), noise_sigma=0.02, seed=7
            )
        )
        # predictions within ~10 % of the (noisy) measurements on average
        assert np.nanmean(result.prediction_error()) < 0.15
        # ECEF-family below Flat Tree and below the grid-unaware binomial
        last = result.measured[-1]
        flat = last[result.heuristic_names.index("Flat Tree")]
        ecef = last[result.heuristic_names.index("ECEF")]
        assert flat > 3 * ecef
        assert result.baseline_measured[-1] > ecef
        assert flat > result.baseline_measured[-1]


class TestScatterAndAlltoallExtensions:
    def test_grid_aware_scatter_wins_for_latency_bound_chunks(self, grid5000):
        comm = GridCommunicator(grid5000)
        aware = comm.scatter(2_048, heuristic="ecef_la")
        flat = comm.scatter(2_048, grid_aware=False)
        assert aware.measured_time < flat.measured_time

    def test_alltoall_has_fewer_wan_messages_when_grid_aware(self, grid5000):
        comm = GridCommunicator(grid5000)
        cluster_of = [grid5000.cluster_of_rank(r) for r in range(grid5000.num_nodes)]
        aware = comm.alltoall(1_024)
        direct = comm.alltoall(1_024, grid_aware=False)
        assert (
            aware.execution.messages_between_clusters(cluster_of)
            < direct.execution.messages_between_clusters(cluster_of)
        )
