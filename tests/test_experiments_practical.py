"""Tests for repro.experiments.practical_study (Figures 5 and 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import PracticalStudyConfig
from repro.experiments.practical_study import (
    BINOMIAL_BASELINE_NAME,
    run_practical_study,
)


@pytest.fixture(scope="module")
def study():
    config = PracticalStudyConfig(
        message_sizes=(65_536, 1_048_576, 4_194_304),
        noise_sigma=0.0,
        heuristics=("flat_tree", "fef", "ecef", "ecef_la", "ecef_lat_max"),
    )
    return run_practical_study(config)


class TestStructure:
    def test_shapes(self, study):
        assert study.predicted.shape == (3, 5)
        assert study.measured.shape == (3, 5)
        assert study.baseline_measured.shape == (3,)

    def test_all_times_positive(self, study):
        assert np.all(study.predicted > 0)
        assert np.all(study.measured > 0)
        assert np.all(study.baseline_measured > 0)

    def test_series_lookup(self, study):
        assert len(study.predicted_series("ECEF")) == 3
        assert len(study.measured_series("Flat Tree")) == 3
        with pytest.raises(ValueError):
            study.predicted_series("nope")

    def test_as_table_contains_baseline_only_for_measured(self, study):
        measured_rows = study.as_table(which="measured")
        predicted_rows = study.as_table(which="predicted")
        assert BINOMIAL_BASELINE_NAME in measured_rows[0]
        assert BINOMIAL_BASELINE_NAME not in predicted_rows[0]
        with pytest.raises(ValueError):
            study.as_table(which="other")


class TestPaperClaims:
    def test_predictions_match_measurements(self, study):
        """Paper §7: 'performance predictions fit with a good precision the
        practical results'."""
        error = study.prediction_error()
        assert np.nanmean(error) < 0.10

    def test_times_grow_with_message_size(self, study):
        for column in range(study.measured.shape[1]):
            series = study.measured[:, column]
            assert series[0] < series[-1]

    def test_flat_tree_is_worst_heuristic_at_4mb(self, study):
        last_row = study.measured[-1]
        flat = last_row[study.heuristic_names.index("Flat Tree")]
        assert flat == pytest.approx(last_row.max())
        # "almost six times more time" than the ECEF family in the paper; our
        # simulator substitution preserves a factor of at least 3.
        ecef = last_row[study.heuristic_names.index("ECEF")]
        assert flat > 3.0 * ecef

    def test_flat_tree_worse_than_grid_unaware_binomial(self, study):
        """Figure 6: the Flat Tree is 'even worse than the grid-unaware
        binomial tree algorithm traditionally used by MPI'."""
        flat = study.measured[-1, study.heuristic_names.index("Flat Tree")]
        assert flat > study.baseline_measured[-1]

    def test_grid_unaware_binomial_worse_than_ecef(self, study):
        ecef = study.measured[-1, study.heuristic_names.index("ECEF")]
        assert study.baseline_measured[-1] > ecef

    def test_ecef_family_fastest_overall(self, study):
        last_row = study.measured[-1]
        ecef_like = [
            last_row[study.heuristic_names.index(name)]
            for name in ("ECEF", "ECEF-LA", "ECEF-LAT")
        ]
        assert min(ecef_like) == pytest.approx(last_row.min())


class TestOptions:
    def test_baseline_can_be_disabled(self):
        config = PracticalStudyConfig(
            message_sizes=(65_536,),
            include_binomial_baseline=False,
            heuristics=("ecef",),
        )
        result = run_practical_study(config)
        assert result.baseline_measured is None
        assert BINOMIAL_BASELINE_NAME not in result.as_table()[0]

    def test_noise_perturbs_measured_only(self):
        clean = run_practical_study(
            PracticalStudyConfig(message_sizes=(1_048_576,), heuristics=("ecef",), noise_sigma=0.0)
        )
        noisy = run_practical_study(
            PracticalStudyConfig(message_sizes=(1_048_576,), heuristics=("ecef",), noise_sigma=0.1)
        )
        assert clean.predicted[0, 0] == pytest.approx(noisy.predicted[0, 0])
        assert clean.measured[0, 0] != noisy.measured[0, 0]

    def test_custom_grid(self, heterogeneous_grid):
        config = PracticalStudyConfig(message_sizes=(1_000,), heuristics=("ecef",))
        result = run_practical_study(config, grid=heterogeneous_grid)
        assert result.measured.shape == (1, 1)
