"""Tests for repro.experiments.practical_study (Figures 5 and 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import PracticalStudyConfig
from repro.experiments.practical_study import (
    BINOMIAL_BASELINE_NAME,
    run_alltoall_study,
    run_practical_study,
    run_scatter_study,
)
from repro.topology.cluster import Cluster
from repro.topology.grid import Grid


@pytest.fixture(scope="module")
def study():
    config = PracticalStudyConfig(
        message_sizes=(65_536, 1_048_576, 4_194_304),
        noise_sigma=0.0,
        heuristics=("flat_tree", "fef", "ecef", "ecef_la", "ecef_lat_max"),
    )
    return run_practical_study(config)


class TestStructure:
    def test_shapes(self, study):
        assert study.predicted.shape == (3, 5)
        assert study.measured.shape == (3, 5)
        assert study.baseline_measured.shape == (3,)

    def test_all_times_positive(self, study):
        assert np.all(study.predicted > 0)
        assert np.all(study.measured > 0)
        assert np.all(study.baseline_measured > 0)

    def test_series_lookup(self, study):
        assert len(study.predicted_series("ECEF")) == 3
        assert len(study.measured_series("Flat Tree")) == 3
        with pytest.raises(ValueError):
            study.predicted_series("nope")

    def test_as_table_contains_baseline_only_for_measured(self, study):
        measured_rows = study.as_table(which="measured")
        predicted_rows = study.as_table(which="predicted")
        assert BINOMIAL_BASELINE_NAME in measured_rows[0]
        assert BINOMIAL_BASELINE_NAME not in predicted_rows[0]
        with pytest.raises(ValueError):
            study.as_table(which="other")


class TestPaperClaims:
    def test_predictions_match_measurements(self, study):
        """Paper §7: 'performance predictions fit with a good precision the
        practical results'."""
        error = study.prediction_error()
        assert np.nanmean(error) < 0.10

    def test_times_grow_with_message_size(self, study):
        for column in range(study.measured.shape[1]):
            series = study.measured[:, column]
            assert series[0] < series[-1]

    def test_flat_tree_is_worst_heuristic_at_4mb(self, study):
        last_row = study.measured[-1]
        flat = last_row[study.heuristic_names.index("Flat Tree")]
        assert flat == pytest.approx(last_row.max())
        # "almost six times more time" than the ECEF family in the paper; our
        # simulator substitution preserves a factor of at least 3.
        ecef = last_row[study.heuristic_names.index("ECEF")]
        assert flat > 3.0 * ecef

    def test_flat_tree_worse_than_grid_unaware_binomial(self, study):
        """Figure 6: the Flat Tree is 'even worse than the grid-unaware
        binomial tree algorithm traditionally used by MPI'."""
        flat = study.measured[-1, study.heuristic_names.index("Flat Tree")]
        assert flat > study.baseline_measured[-1]

    def test_grid_unaware_binomial_worse_than_ecef(self, study):
        ecef = study.measured[-1, study.heuristic_names.index("ECEF")]
        assert study.baseline_measured[-1] > ecef

    def test_ecef_family_fastest_overall(self, study):
        last_row = study.measured[-1]
        ecef_like = [
            last_row[study.heuristic_names.index(name)]
            for name in ("ECEF", "ECEF-LA", "ECEF-LAT")
        ]
        assert min(ecef_like) == pytest.approx(last_row.min())


class TestOptions:
    def test_baseline_can_be_disabled(self):
        config = PracticalStudyConfig(
            message_sizes=(65_536,),
            include_binomial_baseline=False,
            heuristics=("ecef",),
        )
        result = run_practical_study(config)
        assert result.baseline_measured is None
        assert BINOMIAL_BASELINE_NAME not in result.as_table()[0]

    def test_noise_perturbs_measured_only(self):
        clean = run_practical_study(
            PracticalStudyConfig(message_sizes=(1_048_576,), heuristics=("ecef",), noise_sigma=0.0)
        )
        noisy = run_practical_study(
            PracticalStudyConfig(message_sizes=(1_048_576,), heuristics=("ecef",), noise_sigma=0.1)
        )
        assert clean.predicted[0, 0] == pytest.approx(noisy.predicted[0, 0])
        assert clean.measured[0, 0] != noisy.measured[0, 0]

    def test_custom_grid(self, heterogeneous_grid):
        config = PracticalStudyConfig(message_sizes=(1_000,), heuristics=("ecef",))
        result = run_practical_study(config, grid=heterogeneous_grid)
        assert result.measured.shape == (1, 1)


class TestDeterminism:
    """Noisy measured runs are pure functions of (seed, curve label, size)."""

    CONFIG = dict(message_sizes=(65_536, 1_048_576), noise_sigma=0.08)

    def test_batched_matches_scalar_reference(self, heterogeneous_grid):
        config = PracticalStudyConfig(heuristics=("ecef", "fef"), **self.CONFIG)
        batched = run_practical_study(config, grid=heterogeneous_grid)
        scalar = run_practical_study(config, grid=heterogeneous_grid, engine="scalar")
        assert np.array_equal(batched.measured, scalar.measured)
        assert np.array_equal(batched.baseline_measured, scalar.baseline_measured)
        assert np.array_equal(batched.predicted, scalar.predicted)

    def test_shuffle_invariance_of_heuristic_order(self, heterogeneous_grid):
        """Reordering the heuristics tuple must not change any curve."""
        forward = run_practical_study(
            PracticalStudyConfig(heuristics=("ecef", "fef", "flat_tree"), **self.CONFIG),
            grid=heterogeneous_grid,
        )
        shuffled = run_practical_study(
            PracticalStudyConfig(heuristics=("flat_tree", "ecef", "fef"), **self.CONFIG),
            grid=heterogeneous_grid,
        )
        for name in ("ECEF", "FEF", "Flat Tree"):
            assert forward.measured_series(name) == shuffled.measured_series(name)
        assert np.array_equal(
            forward.baseline_measured, shuffled.baseline_measured
        )

    def test_worker_count_invariance(self, heterogeneous_grid):
        config = PracticalStudyConfig(heuristics=("ecef", "fef"), **self.CONFIG)
        inline = run_practical_study(config, grid=heterogeneous_grid, workers=0)
        fanned = run_practical_study(config, grid=heterogeneous_grid, workers=2)
        assert np.array_equal(inline.measured, fanned.measured)
        assert np.array_equal(inline.baseline_measured, fanned.baseline_measured)

    def test_workers_env_var_rejects_garbage(self, heterogeneous_grid, monkeypatch):
        monkeypatch.setenv("REPRO_PRACTICAL_WORKERS", "many")
        config = PracticalStudyConfig(message_sizes=(1_000,), heuristics=("ecef",))
        with pytest.raises(ValueError, match="REPRO_PRACTICAL_WORKERS"):
            run_practical_study(config, grid=heterogeneous_grid)


class TestPredictionErrorNaN:
    def test_zero_size_on_single_node_grid_yields_nan(self):
        """A degenerate run with zero measured time must produce NaN, not a
        division error, and nanmean-style aggregation must skip it."""
        grid = Grid(
            [Cluster(cluster_id=0, name="solo", size=1, fixed_broadcast_time=0.0)],
            {},
            name="single",
        )
        config = PracticalStudyConfig(
            message_sizes=(0,),
            heuristics=("ecef",),
            include_binomial_baseline=False,
            noise_sigma=0.0,
        )
        result = run_practical_study(config, grid=grid)
        assert result.measured[0, 0] == 0.0
        error = result.prediction_error()
        assert np.isnan(error).all()

    def test_mixed_rows_aggregate_without_nan_poisoning(self, heterogeneous_grid):
        config = PracticalStudyConfig(
            message_sizes=(65_536,), heuristics=("ecef",), noise_sigma=0.0
        )
        result = run_practical_study(config, grid=heterogeneous_grid)
        error = result.prediction_error()
        assert np.isfinite(error).all()
        assert np.nanmean(error) >= 0.0


class TestCollectiveStudies:
    def test_scatter_study_shape_and_names(self, heterogeneous_grid):
        config = PracticalStudyConfig(
            message_sizes=(1_024, 65_536), heuristics=("ecef", "ecef_la")
        )
        result = run_scatter_study(config, grid=heterogeneous_grid)
        assert result.collective == "scatter"
        assert result.strategy_names[0] == "Flat scatter"
        assert result.strategy_names[1:] == [
            "Grid-aware [ECEF]",
            "Grid-aware [ECEF-LA]",
        ]
        assert result.measured.shape == (2, 3)
        assert np.all(result.measured > 0)

    def test_scatter_aggregation_wins_on_grid5000_small_chunks(self, grid5000):
        config = PracticalStudyConfig(
            message_sizes=(4_096,), heuristics=("ecef_la",), noise_sigma=0.0
        )
        result = run_scatter_study(config, grid=grid5000)
        speedup = result.speedup_over_baseline()
        assert speedup[0, 1] > 1.0  # grid-aware beats the flat baseline

    def test_alltoall_study_runs_with_initially_active_metadata(
        self, heterogeneous_grid
    ):
        config = PracticalStudyConfig(message_sizes=(256, 1_024))
        result = run_alltoall_study(config, grid=heterogeneous_grid)
        assert result.strategy_names == ["Direct", "Grid-aware"]
        assert result.measured.shape == (2, 2)
        assert np.all(result.measured > 0)

    def test_collective_study_matches_scalar_reference(self, heterogeneous_grid):
        config = PracticalStudyConfig(message_sizes=(512,), noise_sigma=0.05)
        batched = run_alltoall_study(config, grid=heterogeneous_grid)
        scalar = run_alltoall_study(config, grid=heterogeneous_grid, engine="scalar")
        assert np.array_equal(batched.measured, scalar.measured)

    def test_unknown_strategy_rejected(self, heterogeneous_grid):
        config = PracticalStudyConfig(message_sizes=(512,))
        result = run_alltoall_study(config, grid=heterogeneous_grid)
        with pytest.raises(ValueError, match="unknown strategy"):
            result.measured_series("nope")
