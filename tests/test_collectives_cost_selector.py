"""Tests for repro.collectives.cost and repro.collectives.selector."""

from __future__ import annotations

import pytest

from repro.collectives.cost import per_node_arrival_times, predict_tree_time
from repro.collectives.selector import DEFAULT_CANDIDATES, select_best_tree
from repro.collectives.trees import binomial_tree, chain_tree, flat_tree, make_tree
from repro.model.plogp import GapFunction, PLogPParameters
from repro.model.prediction import (
    predict_binomial_broadcast,
    predict_chain_broadcast,
    predict_flat_broadcast,
)


def params(procs: int, latency: float = 0.001, gap: float = 0.01) -> PLogPParameters:
    return PLogPParameters.from_values(latency=latency, gap=gap, num_procs=procs)


class TestTreeCostCrossValidation:
    """The edge-by-edge tree cost must agree with the closed-form predictions."""

    @pytest.mark.parametrize("size", [2, 3, 8, 13, 31])
    def test_flat_tree_matches_closed_form(self, size):
        p = params(size)
        assert predict_tree_time(flat_tree(size), p, 1000) == pytest.approx(
            predict_flat_broadcast(p, 1000)
        )

    @pytest.mark.parametrize("size", [2, 3, 8, 13, 31])
    def test_chain_matches_closed_form(self, size):
        p = params(size)
        assert predict_tree_time(chain_tree(size), p, 1000) == pytest.approx(
            predict_chain_broadcast(p, 1000)
        )

    @pytest.mark.parametrize("size", [2, 4, 8, 16, 32])
    def test_binomial_matches_closed_form(self, size):
        p = params(size)
        assert predict_tree_time(binomial_tree(size), p, 1000) == pytest.approx(
            predict_binomial_broadcast(p, 1000)
        )

    def test_arrival_times_root_zero_and_sorted_reachability(self):
        arrivals = per_node_arrival_times(binomial_tree(8), params(8), 1000)
        assert arrivals[0] == 0.0
        assert all(a > 0 for a in arrivals[1:])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="num_procs"):
            predict_tree_time(binomial_tree(4), params(8), 1000)

    def test_single_node_tree_is_free(self):
        assert predict_tree_time(binomial_tree(1), params(1), 1000) == 0.0


class TestSelector:
    def test_binomial_wins_for_latency_bound_clusters(self):
        tuned = select_best_tree(params(32, latency=0.001, gap=0.001), 1000)
        assert tuned.tree.name == "binomial"

    def test_alternatives_reported_for_all_candidates(self):
        tuned = select_best_tree(params(8), 1000)
        assert set(tuned.alternatives) == set(DEFAULT_CANDIDATES)
        assert tuned.predicted_time == pytest.approx(min(tuned.alternatives.values()))

    def test_flat_wins_for_two_processes(self):
        tuned = select_best_tree(params(2), 1000)
        assert tuned.predicted_time == pytest.approx(0.011)

    def test_custom_candidates(self):
        tuned = select_best_tree(params(16), 1000, candidates=("chain", "flat"))
        assert tuned.tree.name in {"chain", "flat"}

    def test_rejects_unknown_candidate(self):
        with pytest.raises(ValueError, match="unknown tree"):
            select_best_tree(params(4), 1000, candidates=("flat", "magic"))

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            select_best_tree(params(4), 1000, candidates=())

    def test_pipelined_segmentation_not_needed_for_tiny_messages(self):
        """For tiny messages the binomial tree beats deep chains."""
        p = PLogPParameters(
            latency=1e-4,
            gap=GapFunction.from_bandwidth(overhead=1e-4, bandwidth=1e8),
            num_procs=32,
        )
        tuned = select_best_tree(p, 64)
        assert tuned.tree.name == "binomial"
