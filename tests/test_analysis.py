"""Tests for repro.analysis."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import crossover_points, pairwise_speedup, rank_heuristics
from repro.analysis.statistics import confidence_interval, summarize


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == pytest.approx(2.5)

    def test_percentile_95(self):
        stats = summarize(list(range(1, 101)))
        assert stats.percentile_95 == pytest.approx(95.05)

    def test_coefficient_of_variation(self):
        stats = summarize([2.0, 2.0, 2.0])
        assert stats.coefficient_of_variation() == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            summarize([1.0, float("nan")])


class TestConfidenceInterval:
    def test_contains_mean(self):
        low, high = confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert low < 3.0 < high

    def test_wider_for_higher_confidence(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = confidence_interval(sample, confidence=0.68)
        wide = confidence_interval(sample, confidence=0.99)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_single_observation_degenerate(self):
        assert confidence_interval([2.0]) == (2.0, 2.0)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            confidence_interval([])


class TestRanking:
    def test_best_first(self):
        ranking = rank_heuristics({"Flat Tree": 5.0, "ECEF": 3.0, "FEF": 4.0})
        assert [name for name, _ in ranking] == ["ECEF", "FEF", "Flat Tree"]

    def test_ties_broken_alphabetically(self):
        ranking = rank_heuristics({"b": 1.0, "a": 1.0})
        assert [name for name, _ in ranking] == ["a", "b"]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            rank_heuristics({})

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            rank_heuristics({"x": -1.0})


class TestSpeedupAndCrossovers:
    def test_speedup_values(self):
        assert pairwise_speedup([2.0, 4.0], [1.0, 2.0]) == [2.0, 2.0]

    def test_speedup_zero_candidate(self):
        assert pairwise_speedup([2.0], [0.0]) == [float("inf")]
        assert pairwise_speedup([0.0], [0.0]) == [1.0]

    def test_speedup_length_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_speedup([1.0], [1.0, 2.0])

    def test_crossover_detection(self):
        x = [0, 1, 2, 3]
        a = [0.0, 1.0, 2.0, 3.0]
        b = [1.5, 1.5, 1.5, 1.5]
        points = crossover_points(x, a, b)
        assert len(points) == 1
        assert points[0] == pytest.approx(1.5)

    def test_no_crossover(self):
        assert crossover_points([0, 1], [1.0, 2.0], [3.0, 4.0]) == []

    def test_touching_counts_as_crossover(self):
        points = crossover_points([0, 1, 2], [1.0, 2.0, 3.0], [1.0, 5.0, 0.0])
        assert points[0] == 0.0

    def test_short_series(self):
        assert crossover_points([0], [1.0], [2.0]) == []

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crossover_points([0, 1], [1.0], [2.0, 3.0])
