"""Tests for repro.core.base (SchedulingState and the heuristic base class)."""

from __future__ import annotations

import pytest

from repro.core.base import SchedulingState, run_heuristics
from repro.core.ecef import ECEF
from repro.core.flat_tree import FlatTreeHeuristic


class TestSchedulingState:
    def test_initial_sets(self, heterogeneous_grid):
        state = SchedulingState(grid=heterogeneous_grid, message_size=1_000, root=0)
        assert state.informed == [0]
        assert state.pending == [1, 2]
        assert not state.done
        assert state.ready_time[0] == 0.0

    def test_cached_parameters_match_grid(self, heterogeneous_grid):
        state = SchedulingState(grid=heterogeneous_grid, message_size=1_000, root=0)
        assert state.gap(0, 2) == pytest.approx(heterogeneous_grid.gap(0, 2, 1_000))
        assert state.latency(0, 1) == pytest.approx(heterogeneous_grid.latency(0, 1))
        assert state.transfer_time(1, 2) == pytest.approx(
            heterogeneous_grid.transfer_time(1, 2, 1_000)
        )
        assert state.broadcast_time(1) == pytest.approx(2.0)

    def test_commit_updates_ready_times(self, heterogeneous_grid):
        state = SchedulingState(grid=heterogeneous_grid, message_size=1_000, root=0)
        state.commit(0, 1)
        assert state.ready_time[0] == pytest.approx(0.10)       # gap
        assert state.ready_time[1] == pytest.approx(0.101)      # gap + latency
        assert state.pending == [2]

    def test_commit_rejects_uninformed_sender(self, heterogeneous_grid):
        state = SchedulingState(grid=heterogeneous_grid, message_size=1_000, root=0)
        with pytest.raises(ValueError, match="not informed"):
            state.commit(1, 2)

    def test_commit_rejects_informed_receiver(self, heterogeneous_grid):
        state = SchedulingState(grid=heterogeneous_grid, message_size=1_000, root=0)
        state.commit(0, 1)
        with pytest.raises(ValueError, match="not waiting"):
            state.commit(0, 1)

    def test_completion_estimate(self, heterogeneous_grid):
        state = SchedulingState(grid=heterogeneous_grid, message_size=1_000, root=0)
        assert state.completion_estimate(0, 2) == pytest.approx(0.51)
        state.commit(0, 1)
        assert state.completion_estimate(0, 2) == pytest.approx(0.10 + 0.51)

    def test_to_schedule_consistency(self, heterogeneous_grid):
        state = SchedulingState(grid=heterogeneous_grid, message_size=1_000, root=0)
        state.commit(0, 1)
        state.commit(1, 2)
        schedule = state.to_schedule("manual")
        schedule.validate()
        assert schedule.heuristic_name == "manual"
        assert schedule.order == [(0, 1), (1, 2)]

    def test_rejects_invalid_root(self, heterogeneous_grid):
        with pytest.raises(ValueError):
            SchedulingState(grid=heterogeneous_grid, message_size=1_000, root=7)


class TestHeuristicBase:
    def test_schedule_validates_completion(self, heterogeneous_grid):
        schedule = ECEF().schedule(heterogeneous_grid, 1_000)
        schedule.validate()
        assert len(schedule.transfers) == heterogeneous_grid.num_clusters - 1

    def test_makespan_shortcut(self, heterogeneous_grid):
        heuristic = ECEF()
        assert heuristic.makespan(heterogeneous_grid, 1_000) == pytest.approx(
            heuristic.schedule(heterogeneous_grid, 1_000).makespan
        )

    def test_name_defaults_to_display_name(self):
        assert ECEF().name == "ECEF"

    def test_single_cluster_grid_trivial_schedule(self):
        from repro.topology.generators import make_uniform_grid

        grid = make_uniform_grid(1)
        schedule = FlatTreeHeuristic().schedule(grid, 1_000)
        assert schedule.transfers == []

    def test_incomplete_heuristic_detected(self, heterogeneous_grid):
        from repro.core.base import SchedulingHeuristic

        class Lazy(SchedulingHeuristic):
            display_name = "Lazy"

            def build_order(self, state):
                return  # forgets to inform anyone

        with pytest.raises(RuntimeError, match="without informing"):
            Lazy().schedule(heterogeneous_grid, 1_000)

    def test_run_heuristics_collects_all(self, heterogeneous_grid):
        results = run_heuristics([ECEF(), FlatTreeHeuristic()], heterogeneous_grid, 1_000)
        assert set(results) == {"ECEF", "Flat Tree"}
        for schedule in results.values():
            schedule.validate()
