"""Tests for repro.simulator.program."""

from __future__ import annotations

import pytest

from repro.simulator.program import CommunicationProgram, SendInstruction


class TestSendInstruction:
    def test_valid(self):
        instruction = SendInstruction(destination=3, message_size=100, tag="x")
        assert instruction.destination == 3

    def test_rejects_negative_destination(self):
        with pytest.raises(ValueError):
            SendInstruction(destination=-1, message_size=100)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            SendInstruction(destination=0, message_size=-1)

    def test_rejects_non_int_destination(self):
        with pytest.raises(TypeError):
            SendInstruction(destination=1.5, message_size=100)  # type: ignore[arg-type]


class TestProgramConstruction:
    def test_add_send_appends_in_order(self):
        program = CommunicationProgram(num_ranks=4, root=0)
        program.add_send(0, 1, 100)
        program.add_send(0, 2, 100)
        assert [i.destination for i in program.sends_of(0)] == [1, 2]

    def test_add_send_rejects_self(self):
        program = CommunicationProgram(num_ranks=4, root=0)
        with pytest.raises(ValueError):
            program.add_send(1, 1, 100)

    def test_add_send_rejects_out_of_range(self):
        program = CommunicationProgram(num_ranks=4, root=0)
        with pytest.raises(ValueError):
            program.add_send(0, 9, 100)
        with pytest.raises(ValueError):
            program.add_send(9, 0, 100)

    def test_rejects_invalid_root(self):
        with pytest.raises(ValueError):
            CommunicationProgram(num_ranks=4, root=7)

    def test_constructor_validates_preloaded_sends(self):
        with pytest.raises(ValueError):
            CommunicationProgram(
                num_ranks=2, root=0, sends={0: [SendInstruction(destination=5, message_size=1)]}
            )

    def test_totals(self):
        program = CommunicationProgram(num_ranks=4, root=0)
        program.add_send(0, 1, 100)
        program.add_send(1, 2, 300)
        assert program.total_messages() == 2
        assert program.total_bytes() == 400
        assert program.receivers() == {1, 2}

    def test_sends_of_unknown_rank_is_empty(self):
        program = CommunicationProgram(num_ranks=4, root=0)
        assert program.sends_of(3) == []


class TestBroadcastValidation:
    def test_valid_broadcast_chain(self):
        program = CommunicationProgram(num_ranks=3, root=0)
        program.add_send(0, 1, 10)
        program.add_send(1, 2, 10)
        program.validate_broadcast()

    def test_detects_unreached_rank(self):
        program = CommunicationProgram(num_ranks=3, root=0)
        program.add_send(0, 1, 10)
        with pytest.raises(ValueError, match="never receive"):
            program.validate_broadcast()

    def test_detects_duplicate_delivery(self):
        program = CommunicationProgram(num_ranks=3, root=0)
        program.add_send(0, 1, 10)
        program.add_send(0, 2, 10)
        program.add_send(1, 2, 10)
        with pytest.raises(ValueError, match="more than once"):
            program.validate_broadcast()

    def test_detects_root_receiving(self):
        program = CommunicationProgram(num_ranks=2, root=0)
        program.add_send(1, 0, 10)
        with pytest.raises(ValueError, match="root must not receive"):
            program.validate_broadcast()

    def test_detects_disconnected_sender(self):
        program = CommunicationProgram(num_ranks=4, root=0)
        program.add_send(0, 1, 10)
        program.add_send(0, 2, 10)
        program.sends[3] = [SendInstruction(destination=2, message_size=10)]
        with pytest.raises(ValueError):
            program.validate_broadcast()
