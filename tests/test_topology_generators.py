"""Tests for repro.topology.generators (Table 2 random grids)."""

from __future__ import annotations

import pytest

from repro.topology.generators import (
    PAPER_PARAMETER_RANGES,
    ParameterRanges,
    RandomGridGenerator,
    make_uniform_grid,
)
from repro.utils.rng import RandomStream


class TestParameterRanges:
    def test_paper_defaults_match_table2(self):
        ranges = PAPER_PARAMETER_RANGES
        assert ranges.latency_min == pytest.approx(0.001)
        assert ranges.latency_max == pytest.approx(0.015)
        assert ranges.gap_min == pytest.approx(0.100)
        assert ranges.gap_max == pytest.approx(0.600)
        assert ranges.broadcast_min == pytest.approx(0.020)
        assert ranges.broadcast_max == pytest.approx(3.000)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            ParameterRanges(latency_min=0.01, latency_max=0.001)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ParameterRanges(gap_min=-0.1)

    def test_scaled_broadcast(self):
        scaled = PAPER_PARAMETER_RANGES.scaled_broadcast(0.1)
        assert scaled.broadcast_max == pytest.approx(0.3)
        assert scaled.latency_max == PAPER_PARAMETER_RANGES.latency_max

    def test_scaled_broadcast_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            PAPER_PARAMETER_RANGES.scaled_broadcast(-1.0)


class TestRandomGridGenerator:
    def test_generates_requested_cluster_count(self):
        grid = RandomGridGenerator().generate(7, RandomStream(seed=1))
        assert grid.num_clusters == 7

    def test_parameters_within_table2_ranges(self):
        grid = RandomGridGenerator().generate(8, RandomStream(seed=2))
        ranges = PAPER_PARAMETER_RANGES
        for i in range(8):
            t = grid.broadcast_time(i, 1_048_576)
            if grid.cluster(i).size > 1:
                assert ranges.broadcast_min <= t <= ranges.broadcast_max
            for j in range(i + 1, 8):
                assert ranges.latency_min <= grid.latency(i, j) <= ranges.latency_max
                assert ranges.gap_min <= grid.gap(i, j, 0) <= ranges.gap_max

    def test_links_are_symmetric(self):
        grid = RandomGridGenerator().generate(5, RandomStream(seed=3))
        for i in range(5):
            for j in range(i + 1, 5):
                assert grid.latency(i, j) == grid.latency(j, i)
                assert grid.gap(i, j, 0) == grid.gap(j, i, 0)

    def test_same_seed_same_grid(self):
        a = RandomGridGenerator().generate(5, RandomStream(seed=9))
        b = RandomGridGenerator().generate(5, RandomStream(seed=9))
        for i in range(5):
            assert a.broadcast_time(i, 0) == b.broadcast_time(i, 0)
            for j in range(i + 1, 5):
                assert a.latency(i, j) == b.latency(i, j)

    def test_different_seeds_differ(self):
        a = RandomGridGenerator().generate(5, RandomStream(seed=9))
        b = RandomGridGenerator().generate(5, RandomStream(seed=10))
        assert any(
            a.latency(i, j) != b.latency(i, j) for i in range(5) for j in range(i + 1, 5)
        )

    def test_single_cluster_grid(self):
        grid = RandomGridGenerator().generate(1, RandomStream(seed=1))
        assert grid.num_clusters == 1

    def test_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            RandomGridGenerator().generate(0, RandomStream(seed=1))

    def test_rejects_wrong_stream_type(self):
        with pytest.raises(TypeError):
            RandomGridGenerator().generate(3, stream=42)  # type: ignore[arg-type]

    def test_custom_cluster_size(self):
        grid = RandomGridGenerator(cluster_size=3).generate(4, RandomStream(seed=1))
        assert grid.num_nodes == 12

    def test_rejects_bad_cluster_size(self):
        with pytest.raises(ValueError):
            RandomGridGenerator(cluster_size=0)


class TestUniformGrid:
    def test_everything_identical(self):
        grid = make_uniform_grid(4, latency=0.002, gap=0.1, broadcast_time=0.5)
        for i in range(4):
            assert grid.broadcast_time(i, 0) == pytest.approx(0.5)
            for j in range(i + 1, 4):
                assert grid.latency(i, j) == pytest.approx(0.002)
                assert grid.gap(i, j, 0) == pytest.approx(0.1)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            make_uniform_grid(3, latency=-1.0)
