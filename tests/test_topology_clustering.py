"""Tests for repro.topology.clustering (Lowekamp-style logical clusters)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.clustering import (
    LogicalCluster,
    identify_logical_clusters,
    membership_vector,
)
from repro.topology.grid5000 import GRID5000_CLUSTER_SIZES, build_node_latency_matrix


class TestBasicBehaviour:
    def test_two_obvious_groups(self):
        # 4 machines: {0,1} close, {2,3} close, far across.
        matrix = np.array(
            [
                [0, 50e-6, 10e-3, 10e-3],
                [50e-6, 0, 10e-3, 10e-3],
                [10e-3, 10e-3, 0, 60e-6],
                [10e-3, 10e-3, 60e-6, 0],
            ]
        )
        clusters = identify_logical_clusters(matrix, tolerance=0.3)
        groups = sorted(tuple(c.members) for c in clusters)
        assert groups == [(0, 1), (2, 3)]

    def test_singleton_for_outlier(self):
        # Machine 2 is within LAN distance but 10x slower than the 0-1 pair.
        matrix = np.array(
            [
                [0, 50e-6, 500e-6],
                [50e-6, 0, 500e-6],
                [500e-6, 500e-6, 0],
            ]
        )
        clusters = identify_logical_clusters(matrix, tolerance=0.3)
        sizes = sorted(c.size for c in clusters)
        assert sizes == [1, 2]

    def test_single_machine(self):
        clusters = identify_logical_clusters(np.zeros((1, 1)))
        assert len(clusters) == 1
        assert clusters[0].members == (0,)

    def test_all_within_tolerance_is_one_cluster(self):
        matrix = np.full((5, 5), 55e-6)
        np.fill_diagonal(matrix, 0.0)
        clusters = identify_logical_clusters(matrix, tolerance=0.3)
        assert len(clusters) == 1
        assert clusters[0].size == 5

    def test_wan_threshold_prevents_grouping(self):
        matrix = np.full((4, 4), 5e-3)
        np.fill_diagonal(matrix, 0.0)
        clusters = identify_logical_clusters(matrix, tolerance=10.0)
        assert all(c.size == 1 for c in clusters)

    def test_reference_latency_of_singletons_is_zero(self):
        clusters = identify_logical_clusters(np.zeros((1, 1)))
        assert clusters[0].reference_latency == 0.0


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            identify_logical_clusters(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        matrix = np.array([[0.0, 1e-3], [2e-3, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            identify_logical_clusters(matrix)

    def test_rejects_negative_latency(self):
        matrix = np.array([[0.0, -1e-3], [-1e-3, 0.0]])
        with pytest.raises(ValueError):
            identify_logical_clusters(matrix)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            identify_logical_clusters(np.zeros((2, 2)), tolerance=-0.1)


class TestGrid5000Reconstruction:
    def test_recovers_table3_partition(self):
        """Running the identification on the synthetic 88-node matrix recovers
        exactly the cluster sizes of Table 3 (31, 29, 20, 6, 1, 1)."""
        matrix = build_node_latency_matrix()
        clusters = identify_logical_clusters(matrix, tolerance=0.30)
        sizes = sorted((c.size for c in clusters), reverse=True)
        assert sizes == sorted(GRID5000_CLUSTER_SIZES, reverse=True)

    def test_partition_is_complete(self):
        matrix = build_node_latency_matrix()
        clusters = identify_logical_clusters(matrix, tolerance=0.30)
        membership = membership_vector(clusters, 88)
        assert len(membership) == 88
        assert all(m >= 0 for m in membership)

    def test_robust_to_small_jitter(self):
        matrix = build_node_latency_matrix(jitter=0.03, seed=7)
        clusters = identify_logical_clusters(matrix, tolerance=0.30)
        sizes = sorted((c.size for c in clusters), reverse=True)
        # The three big groups must survive measurement noise.
        assert sizes[:3] == [31, 29, 20]


class TestMembershipVector:
    def test_roundtrip(self):
        clusters = [
            LogicalCluster(members=(0, 1), reference_latency=1e-4),
            LogicalCluster(members=(2,), reference_latency=0.0),
        ]
        assert membership_vector(clusters, 3) == [0, 0, 1]

    def test_detects_missing_node(self):
        clusters = [LogicalCluster(members=(0,), reference_latency=0.0)]
        with pytest.raises(ValueError, match="belong to no cluster"):
            membership_vector(clusters, 2)

    def test_detects_duplicates(self):
        clusters = [
            LogicalCluster(members=(0, 1), reference_latency=0.0),
            LogicalCluster(members=(1,), reference_latency=0.0),
        ]
        with pytest.raises(ValueError, match="two clusters"):
            membership_vector(clusters, 2)

    def test_detects_out_of_range(self):
        clusters = [LogicalCluster(members=(5,), reference_latency=0.0)]
        with pytest.raises(ValueError, match="outside"):
            membership_vector(clusters, 2)
