"""Equivalence suite for the batched measurement engine.

The batched engine must be *bit-identical* to the scalar
:func:`~repro.simulator.execution.execute_program` reference — makespans,
activation/completion vectors and full traces — for every collective shape
the repo produces (scheduled broadcast, binomial baseline, scatter,
all-to-all), with noise off and on (per-task spawned seeds), at any worker
count.
"""

from __future__ import annotations

import pytest

from repro.core.registry import PAPER_HEURISTICS, get_heuristic, instantiate
from repro.mpi.alltoall import direct_alltoall_program, grid_aware_alltoall_program
from repro.mpi.bcast import binomial_bcast_program, grid_aware_bcast_program
from repro.mpi.scatter import flat_scatter_program, grid_aware_scatter_program
from repro.simulator.batch import (
    VECTOR_MIN_SENDS,
    ExecutionTask,
    execute_programs,
)
from repro.simulator.network import NetworkConfig
from repro.simulator.program import CommunicationProgram
from repro.utils.rng import RandomStream


def build_tasks(grid, message_sizes, *, seed=123) -> list[ExecutionTask]:
    """The full program zoo: every heuristic bcast + baseline + scatter + a2a."""
    parent = RandomStream(seed=seed)
    tasks = []
    for size in message_sizes:
        for heuristic in instantiate(PAPER_HEURISTICS):
            schedule = heuristic.schedule(grid, size, root=0)
            program = grid_aware_bcast_program(grid, schedule, size)
            tasks.append(ExecutionTask(program, noise_seed=parent.spawn_seed()))
        tasks.append(
            ExecutionTask(
                binomial_bcast_program(grid, size, root_rank=grid.coordinator_rank(0)),
                noise_seed=parent.spawn_seed(),
            )
        )
        tasks.append(
            ExecutionTask(
                flat_scatter_program(grid, size, root_rank=grid.coordinator_rank(0)),
                noise_seed=parent.spawn_seed(),
            )
        )
        scatter_program, _ = grid_aware_scatter_program(
            grid, size, heuristic=get_heuristic("ecef_la")
        )
        tasks.append(ExecutionTask(scatter_program, noise_seed=parent.spawn_seed()))
        tasks.append(
            ExecutionTask(
                direct_alltoall_program(grid, max(size // 16, 1)),
                noise_seed=parent.spawn_seed(),
            )
        )
        tasks.append(
            ExecutionTask(
                grid_aware_alltoall_program(grid, max(size // 16, 1)),
                noise_seed=parent.spawn_seed(),
            )
        )
    return tasks


def assert_identical(batched, scalar):
    assert len(batched) == len(scalar)
    for left, right in zip(batched, scalar):
        assert left.program_name == right.program_name
        assert left.activation_times == right.activation_times
        assert left.completion_times == right.completion_times
        assert left.makespan == right.makespan  # bitwise: == on floats
        assert left.trace == right.trace


class TestEquivalence:
    @pytest.mark.parametrize("noise_sigma", [0.0, 0.05])
    def test_heterogeneous_grid_zoo(self, heterogeneous_grid, noise_sigma):
        tasks = build_tasks(heterogeneous_grid, (4_096, 1_048_576))
        config = NetworkConfig(noise_sigma=noise_sigma, seed=7)
        batched = execute_programs(heterogeneous_grid, tasks, config=config)
        scalar = execute_programs(
            heterogeneous_grid, tasks, config=config, engine="scalar"
        )
        assert_identical(batched, scalar)

    @pytest.mark.parametrize("noise_sigma", [0.0, 0.03])
    def test_grid5000_broadcasts(self, grid5000, noise_sigma):
        """The Table 3 grid — the practical study's actual workload."""
        parent = RandomStream(seed=99)
        tasks = []
        for size in (65_536, 4_194_304):
            for heuristic in instantiate(PAPER_HEURISTICS):
                schedule = heuristic.schedule(grid5000, size, root=0)
                tasks.append(
                    ExecutionTask(
                        grid_aware_bcast_program(grid5000, schedule, size),
                        noise_seed=parent.spawn_seed(),
                    )
                )
        config = NetworkConfig(noise_sigma=noise_sigma, seed=3)
        batched = execute_programs(grid5000, tasks, config=config)
        scalar = execute_programs(grid5000, tasks, config=config, engine="scalar")
        assert_identical(batched, scalar)

    def test_vectorised_burst_path(self, grid5000):
        """Flat scatter from the root exercises the long-burst NumPy path."""
        root = grid5000.coordinator_rank(0)
        program = flat_scatter_program(grid5000, 10_000, root_rank=root)
        assert len(program.sends_of(root)) >= VECTOR_MIN_SENDS
        for sigma in (0.0, 0.2):
            config = NetworkConfig(noise_sigma=sigma, seed=5)
            tasks = [ExecutionTask(program, noise_seed=17)]
            batched = execute_programs(grid5000, tasks, config=config)
            scalar = execute_programs(grid5000, tasks, config=config, engine="scalar")
            assert_identical(batched, scalar)

    def test_receive_overhead_respected(self, heterogeneous_grid):
        program = flat_scatter_program(heterogeneous_grid, 2_000, root_rank=0)
        config = NetworkConfig(receive_overhead=0.25)
        batched = execute_programs(heterogeneous_grid, [program], config=config)
        scalar = execute_programs(
            heterogeneous_grid, [program], config=config, engine="scalar"
        )
        assert_identical(batched, scalar)

    def test_noise_seed_fallback_matches_config_seed(self, heterogeneous_grid):
        program = binomial_bcast_program(heterogeneous_grid, 8_192)
        config = NetworkConfig(noise_sigma=0.1, seed=21)
        unseeded = execute_programs(heterogeneous_grid, [program], config=config)
        seeded = execute_programs(
            heterogeneous_grid,
            [ExecutionTask(program, noise_seed=21)],
            config=config,
        )
        assert_identical(unseeded, seeded)

    def test_per_task_seeds_differ(self, heterogeneous_grid):
        program = binomial_bcast_program(heterogeneous_grid, 8_192)
        config = NetworkConfig(noise_sigma=0.1, seed=21)
        results = execute_programs(
            heterogeneous_grid,
            [ExecutionTask(program, noise_seed=s) for s in (1, 2)],
            config=config,
        )
        assert results[0].makespan != results[1].makespan


class TestWorkers:
    def test_worker_fanout_is_bit_identical(self, heterogeneous_grid):
        tasks = build_tasks(heterogeneous_grid, (65_536,))
        config = NetworkConfig(noise_sigma=0.05, seed=13)
        inline = execute_programs(heterogeneous_grid, tasks, config=config)
        fanned = execute_programs(
            heterogeneous_grid, tasks, config=config, workers=2
        )
        assert_identical(fanned, inline)

    def test_single_worker_runs_inline(self, heterogeneous_grid):
        program = binomial_bcast_program(heterogeneous_grid, 1_024)
        results = execute_programs(heterogeneous_grid, [program], workers=1)
        assert results[0].makespan > 0


class TestBatchOptions:
    def test_collect_traces_false_drops_traces_only(self, heterogeneous_grid):
        tasks = build_tasks(heterogeneous_grid, (65_536,))
        config = NetworkConfig(noise_sigma=0.05, seed=13)
        with_traces = execute_programs(heterogeneous_grid, tasks, config=config)
        without = execute_programs(
            heterogeneous_grid, tasks, config=config, collect_traces=False
        )
        for full, bare in zip(with_traces, without):
            assert bare.trace == []
            assert bare.makespan == full.makespan
            assert bare.activation_times == full.activation_times

    def test_rejects_unknown_engine(self, heterogeneous_grid):
        program = binomial_bcast_program(heterogeneous_grid, 1_024)
        with pytest.raises(ValueError, match="engine"):
            execute_programs(heterogeneous_grid, [program], engine="quantum")

    def test_rejects_oversized_program(self, heterogeneous_grid):
        program = CommunicationProgram(
            num_ranks=heterogeneous_grid.num_nodes + 1, root=0
        )
        with pytest.raises(ValueError, match="only has"):
            execute_programs(heterogeneous_grid, [program])

    def test_rejects_out_of_range_initially_active(self, heterogeneous_grid):
        program = CommunicationProgram(num_ranks=4, root=0)
        with pytest.raises(ValueError, match="out of range"):
            execute_programs(
                heterogeneous_grid,
                [ExecutionTask(program, initially_active=(99,))],
            )

    def test_empty_task_list(self, heterogeneous_grid):
        assert execute_programs(heterogeneous_grid, []) == []

    def test_warm_network_chaining_stays_scalar_only(self, heterogeneous_grid):
        """reset_network=False chaining is a scalar-engine feature; the batch
        engine always starts cold — document the contract by exercising the
        scalar chain against two independent batched runs."""
        from repro.simulator.execution import execute_program
        from repro.simulator.network import SimulatedNetwork

        program = binomial_bcast_program(heterogeneous_grid, 4_096)
        network = SimulatedNetwork(heterogeneous_grid)
        cold = execute_program(network, program)
        warm = execute_program(network, program, reset_network=False)
        assert warm.makespan > cold.makespan
        batched = execute_programs(heterogeneous_grid, [program, program])
        assert batched[0].makespan == batched[1].makespan == cold.makespan
