"""Tests for repro.gossip: specs, engines (bit-identity), programs, study, CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.experiments.gossip_study import (
    GossipStudyConfig,
    GossipStudyResult,
    run_gossip_study,
)
from repro.gossip import (
    GOSSIP_PROTOCOLS,
    ChurnSpec,
    GossipSpec,
    churn_schedule,
    gossip_program,
    gossip_round_time,
    run_gossip,
)
from repro.gossip.engine import DEFAULT_GOSSIP_PARAMS
from repro.runtime.chunking import gossip_cost
from repro.simulator.batch import execute_programs
from repro.simulator.execution import execute_program
from repro.simulator.network import SimulatedNetwork
from repro.topology.cluster import Cluster
from repro.topology.grid import Grid

CHURN = ChurnSpec(leave_fraction=0.25, join_fraction=0.15)


def small_spec(protocol: str, *, churn: ChurnSpec | None = None, seed: int = 11):
    return GossipSpec(
        protocol=protocol, num_nodes=193, fanout=3, seed=seed, churn=churn, root=7
    )


class TestChurnSpec:
    def test_inactive_by_default(self):
        assert not ChurnSpec().active
        assert ChurnSpec(leave_fraction=0.1).active
        assert ChurnSpec(join_fraction=0.1).active

    @pytest.mark.parametrize("field", ["leave_fraction", "join_fraction"])
    def test_fraction_bounds(self, field):
        with pytest.raises(ValueError):
            ChurnSpec(**{field: 1.0})
        with pytest.raises(ValueError):
            ChurnSpec(**{field: -0.1})
        with pytest.raises(TypeError):
            ChurnSpec(**{field: "0.5"})


class TestGossipSpec:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError, match="protocol"):
            GossipSpec(protocol="carrier-pigeon", num_nodes=8)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            GossipSpec(protocol="push", num_nodes=0)
        with pytest.raises(ValueError):
            GossipSpec(protocol="push", num_nodes=4, fanout=0)
        with pytest.raises(ValueError):
            GossipSpec(protocol="push", num_nodes=4, fanout=4)
        with pytest.raises(ValueError):
            GossipSpec(protocol="push", num_nodes=4, rounds=0)
        with pytest.raises(ValueError):
            GossipSpec(protocol="push", num_nodes=4, root=4)
        with pytest.raises(ValueError):
            GossipSpec(protocol="push", num_nodes=4, ttl=-1)
        with pytest.raises(TypeError):
            GossipSpec(protocol="push", num_nodes=True)
        with pytest.raises(TypeError):
            GossipSpec(protocol="push", num_nodes=4, churn=0.5)

    def test_effective_ttl_auto_sizing(self):
        assert GossipSpec(protocol="epto", num_nodes=1024).effective_ttl == 12
        assert GossipSpec(protocol="epto", num_nodes=1024, ttl=5).effective_ttl == 5

    def test_sends_per_sender(self):
        assert GossipSpec(protocol="flood", num_nodes=9).sends_per_sender == 8
        assert GossipSpec(protocol="tree", num_nodes=9).sends_per_sender == 1
        assert GossipSpec(protocol="push", num_nodes=9, fanout=4).sends_per_sender == 4


class TestChurnSchedule:
    def test_no_churn_keeps_everyone(self):
        spec = small_spec("push")
        join, leave = churn_schedule(spec)
        assert np.array_equal(join, np.zeros(spec.num_nodes, dtype=np.int64))
        assert np.all(leave == spec.rounds + 1)

    def test_churn_is_deterministic_and_root_pinned(self):
        spec = small_spec("push", churn=CHURN)
        join, leave = churn_schedule(spec)
        join2, leave2 = churn_schedule(spec)
        assert np.array_equal(join, join2) and np.array_equal(leave, leave2)
        assert join[spec.root] == 0
        assert leave[spec.root] == spec.rounds + 1
        assert np.all(join <= leave)
        assert np.any(leave <= spec.rounds)  # some nodes actually leave

    def test_different_seeds_draw_different_schedules(self):
        a = churn_schedule(small_spec("push", churn=CHURN, seed=1))
        b = churn_schedule(small_spec("push", churn=CHURN, seed=2))
        assert not np.array_equal(a[1], b[1])


class TestEngineBitIdentity:
    """The tentpole contract: scalar and vectorized engines never diverge."""

    @pytest.mark.parametrize("protocol", GOSSIP_PROTOCOLS)
    @pytest.mark.parametrize("churn", [None, CHURN], ids=["nochurn", "churn"])
    @pytest.mark.parametrize("seed", [3, 20060331])
    def test_scalar_matches_vectorized(self, protocol, churn, seed):
        spec = small_spec(protocol, churn=churn, seed=seed)
        vectorized = run_gossip(spec)
        scalar = run_gossip(spec, engine="scalar")
        assert np.array_equal(vectorized.informed_round, scalar.informed_round)
        assert np.array_equal(
            vectorized.messages_per_round, scalar.messages_per_round
        )
        assert vectorized.rounds_executed == scalar.rounds_executed
        if protocol == "epto":
            assert np.array_equal(vectorized.final_ttl, scalar.final_ttl)
        else:
            assert vectorized.final_ttl is None and scalar.final_ttl is None

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            run_gossip(small_spec("push"), engine="quantum")


class TestEngineBehaviour:
    def test_single_node_network_is_instantly_done(self):
        result = run_gossip(GossipSpec(protocol="push", num_nodes=1, fanout=1))
        assert result.rounds_executed == 0
        assert result.delivered_count == 1
        assert result.total_messages == 0

    def test_flood_delivers_everyone_in_two_rounds(self):
        result = run_gossip(small_spec("flood"))
        assert result.delivered_count == 193
        assert result.rounds_to_delivery == 1
        assert result.rounds_executed == 2  # round 1 drains the fresh senders

    def test_tree_is_the_binomial_ladder(self):
        result = run_gossip(GossipSpec(protocol="tree", num_nodes=256))
        assert result.rounds_executed == 8  # ceil(log2 256)
        assert result.delivered_count == 256
        assert result.total_messages == 255  # exactly one receive per node

    def test_push_delivers_everyone_without_churn(self):
        result = run_gossip(small_spec("push"))
        assert result.delivered_count == result.spec.num_nodes
        assert result.delivery_fraction == 1.0

    def test_epto_keeps_relaying_after_delivery(self):
        result = run_gossip(small_spec("epto"))
        assert result.delivered_count == result.spec.num_nodes
        assert result.rounds_executed > result.rounds_to_delivery
        assert np.all(result.final_ttl == 0)  # every ball fully drained

    def test_informed_counts_monotone_and_end_at_delivered(self):
        result = run_gossip(small_spec("pushpull", churn=CHURN))
        counts = result.informed_counts()
        assert np.all(np.diff(counts) >= 0)
        assert counts[-1] == result.delivered_count

    def test_churn_costs_delivery(self):
        hard_churn = ChurnSpec(leave_fraction=0.5)
        tree = run_gossip(small_spec("tree", churn=hard_churn))
        push = run_gossip(small_spec("pushpull", churn=hard_churn))
        assert tree.delivery_fraction < 1.0
        assert push.delivery_fraction > tree.delivery_fraction

    def test_timing_derivation(self):
        spec = small_spec("push")
        result = run_gossip(spec)
        base = gossip_round_time(spec, 1024.0)
        assert base == pytest.approx(
            DEFAULT_GOSSIP_PARAMS.latency
            + spec.fanout * DEFAULT_GOSSIP_PARAMS.gap(1024.0)
        )
        assert result.makespan(1024.0) == pytest.approx(
            base * result.rounds_executed
        )
        noisy = result.round_durations(1024.0, noise_sigma=0.1)
        assert noisy.shape == (result.rounds_executed,)
        assert not np.allclose(noisy, base)
        # Noise is seeded: the same run re-derives the same durations.
        assert np.array_equal(noisy, result.round_durations(1024.0, noise_sigma=0.1))
        assert result.delivery_time(1024.0, noise_sigma=0.1) <= result.makespan(
            1024.0, noise_sigma=0.1
        )


def gossip_grid(num_nodes: int) -> Grid:
    return Grid([Cluster(cluster_id=0, size=num_nodes, fixed_broadcast_time=0.0)], {})


class TestGossipProgram:
    @pytest.mark.parametrize("protocol", ["flood", "push", "epto", "tree"])
    def test_message_counts_match_the_engine(self, protocol):
        spec = GossipSpec(protocol=protocol, num_nodes=61, fanout=2, seed=5)
        result = run_gossip(spec)
        program = gossip_program(spec, 512.0, result=result)
        assert program.total_messages() == result.total_messages
        assert program.num_ranks == spec.num_nodes
        assert program.root == spec.root

    def test_pushpull_carries_payload_traffic_only(self):
        spec = GossipSpec(protocol="pushpull", num_nodes=61, fanout=2, seed=5)
        result = run_gossip(spec)
        program = gossip_program(spec, 512.0, result=result)
        # Engine counts empty pull requests too; the program ships payloads.
        assert program.total_messages() < result.total_messages
        replies = sum(
            1
            for sends in program.sends.values()
            for send in sends
            if send.tag.endswith("/pull")
        )
        assert replies > 0

    def test_rejects_churned_specs_and_foreign_results(self):
        churned = GossipSpec(protocol="push", num_nodes=16, churn=CHURN)
        with pytest.raises(ValueError, match="churn"):
            gossip_program(churned, 512.0)
        spec = GossipSpec(protocol="push", num_nodes=16, seed=1)
        other = run_gossip(GossipSpec(protocol="push", num_nodes=16, seed=2))
        with pytest.raises(ValueError, match="different spec"):
            gossip_program(spec, 512.0, result=other)

    @pytest.mark.parametrize("protocol", ["push", "pushpull", "epto"])
    def test_program_runs_through_both_simulator_lanes(self, protocol):
        spec = GossipSpec(protocol=protocol, num_nodes=33, fanout=2, seed=9)
        engine_result = run_gossip(spec)
        program = gossip_program(spec, 256.0, result=engine_result)
        grid = gossip_grid(spec.num_nodes)
        scalar = execute_program(SimulatedNetwork(grid), program)
        (batched,) = execute_programs(grid, [program])
        assert batched.makespan == scalar.makespan
        activated = {
            rank
            for rank, time in enumerate(scalar.activation_times)
            if time is not None
        }
        # Without churn every node the engine delivered receives the payload.
        assert activated == set(np.flatnonzero(engine_result.delivered_mask))


class TestGossipStudy:
    CONFIG = GossipStudyConfig(
        protocols=("tree", "push", "pushpull"),
        node_counts=(200, 500),
        churn=CHURN,
        noise_sigma=0.05,
        seed=99,
    )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GossipStudyConfig(protocols=())
        with pytest.raises(ValueError):
            GossipStudyConfig(protocols=("push", "push"))
        with pytest.raises(ValueError):
            GossipStudyConfig(protocols=("smoke-signal",))
        with pytest.raises(ValueError):
            GossipStudyConfig(node_counts=())
        with pytest.raises(TypeError):
            GossipStudyConfig(node_counts=(1.5,))

    def test_cells_have_distinct_derived_seeds(self):
        config = self.CONFIG
        seeds = {
            config.spec_for(protocol, nodes).seed
            for protocol in config.protocols
            for nodes in config.node_counts
        }
        assert len(seeds) == len(config.protocols) * len(config.node_counts)

    def test_fanout_clamped_for_tiny_networks(self):
        config = GossipStudyConfig(fanout=5)
        assert config.spec_for("push", 3).fanout == 2

    def test_worker_and_lane_invariance(self):
        inline = run_gossip_study(self.CONFIG)
        threaded = run_gossip_study(self.CONFIG, workers=3, executor="thread")
        processed = run_gossip_study(self.CONFIG, workers=2, executor="process")
        assert np.array_equal(inline.metrics, threaded.metrics)
        assert np.array_equal(inline.metrics, processed.metrics)

    def test_result_surface(self):
        result = run_gossip_study(self.CONFIG)
        assert result.metric("rounds_executed").shape == (3, 2)
        with pytest.raises(ValueError, match="unknown metric"):
            result.metric("vibes")
        fractions = result.delivery_fractions()
        assert np.all((0.0 < fractions) & (fractions <= 1.0))
        rows = result.as_table()
        assert len(rows) == 6
        assert rows[0]["protocol"] == "tree"
        assert set(rows[0]) >= {"nodes", "rounds_to_delivery", "delivery_fraction"}

    def test_gossip_cost_prior_scales_with_network(self):
        assert gossip_cost(100_000, 64) > gossip_cost(1_000, 64) > 0
        # The prior never exceeds the round budget's worth of node-rounds.
        assert gossip_cost(8, 2) <= 1.0 + 8 * 2 / 64.0


class TestGossipCli:
    ARGS = [
        "gossip",
        "--protocols",
        "tree,push",
        "--nodes",
        "128,256",
        "--churn",
        "0.2",
        "--noise",
        "0.05",
        "--seed",
        "7",
    ]

    def test_prints_the_study_tables(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        for title in (
            "Rounds to delivery",
            "Delivery fraction",
            "Messages per node",
            "Delivery time (s)",
        ):
            assert title in out
        assert "tree" in out and "push" in out

    def test_output_is_lane_invariant(self, capsys):
        assert main(self.ARGS) == 0
        inline = capsys.readouterr().out
        assert main(self.ARGS + ["--workers", "3", "--executor", "thread"]) == 0
        threaded = capsys.readouterr().out
        assert threaded == inline
