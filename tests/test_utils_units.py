"""Tests for repro.utils.units."""

from __future__ import annotations

import pytest

from repro.utils import units


class TestTimeConversions:
    def test_ms_round_trip(self):
        assert units.s_to_ms(units.ms_to_s(123.0)) == pytest.approx(123.0)

    def test_us_round_trip(self):
        assert units.s_to_us(units.us_to_s(47.56)) == pytest.approx(47.56)

    def test_ms_to_s_value(self):
        assert units.ms_to_s(1500.0) == pytest.approx(1.5)

    def test_us_to_s_value(self):
        assert units.us_to_s(12181.52) == pytest.approx(0.01218152)


class TestSizeConversions:
    def test_mib_constant(self):
        assert units.BYTES_PER_MIB == 1024 * 1024

    def test_mib_round_trip(self):
        assert units.bytes_to_mib(units.mib_to_bytes(4.0)) == pytest.approx(4.0)

    def test_mib_to_bytes_is_int(self):
        assert isinstance(units.mib_to_bytes(1.0), int)
        assert units.mib_to_bytes(1.0) == 1_048_576

    def test_mb_round_trip(self):
        assert units.bytes_to_mb(units.mb_to_bytes(4.5)) == pytest.approx(4.5)

    def test_mb_differs_from_mib(self):
        assert units.mb_to_bytes(1.0) == 1_000_000
        assert units.mb_to_bytes(1.0) != units.mib_to_bytes(1.0)
