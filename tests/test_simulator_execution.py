"""Tests for repro.simulator.execution."""

from __future__ import annotations

import pytest

from repro.simulator.execution import execute_program
from repro.simulator.network import NetworkConfig, SimulatedNetwork
from repro.simulator.program import CommunicationProgram


@pytest.fixture
def network(heterogeneous_grid):
    return SimulatedNetwork(heterogeneous_grid)


def coordinator(grid, cluster):
    return grid.coordinator_rank(cluster)


class TestBroadcastExecution:
    def test_chain_program_timing(self, heterogeneous_grid, network):
        c0, c1, c2 = (coordinator(heterogeneous_grid, c) for c in range(3))
        program = CommunicationProgram(num_ranks=heterogeneous_grid.num_nodes, root=c0)
        program.add_send(c0, c1, 1_000)
        program.add_send(c1, c2, 1_000)
        result = execute_program(network, program)
        assert result.activation_times[c0] == 0.0
        assert result.activation_times[c1] == pytest.approx(0.101)
        assert result.activation_times[c2] == pytest.approx(0.101 + 0.305)
        assert result.makespan == pytest.approx(0.101 + 0.305)

    def test_dependent_sends_wait_for_activation(self, heterogeneous_grid, network):
        c0, c1, c2 = (coordinator(heterogeneous_grid, c) for c in range(3))
        program = CommunicationProgram(num_ranks=heterogeneous_grid.num_nodes, root=c0)
        program.add_send(c1, c2, 1_000)   # listed before c1 is even activated
        program.add_send(c0, c1, 1_000)
        result = execute_program(network, program)
        relay = [r for r in result.trace if r.source == c1][0]
        assert relay.issue_time == pytest.approx(0.101)

    def test_idle_ranks_have_no_activation(self, heterogeneous_grid, network):
        c0, c1 = coordinator(heterogeneous_grid, 0), coordinator(heterogeneous_grid, 1)
        program = CommunicationProgram(num_ranks=heterogeneous_grid.num_nodes, root=c0)
        program.add_send(c0, c1, 1_000)
        result = execute_program(network, program)
        idle = coordinator(heterogeneous_grid, 2)
        assert result.activation_times[idle] is None

    def test_trace_sorted_by_delivery(self, heterogeneous_grid, network):
        c0, c1, c2 = (coordinator(heterogeneous_grid, c) for c in range(3))
        program = CommunicationProgram(num_ranks=heterogeneous_grid.num_nodes, root=c0)
        program.add_send(c0, c2, 1_000)
        program.add_send(c0, c1, 1_000)
        result = execute_program(network, program)
        deliveries = [record.delivery_time for record in result.trace]
        assert deliveries == sorted(deliveries)

    def test_queueing_delay_reported(self, heterogeneous_grid, network):
        c0, c1, c2 = (coordinator(heterogeneous_grid, c) for c in range(3))
        program = CommunicationProgram(num_ranks=heterogeneous_grid.num_nodes, root=c0)
        program.add_send(c0, c1, 1_000)
        program.add_send(c0, c2, 1_000)
        result = execute_program(network, program)
        second = [r for r in result.trace if r.destination == c2][0]
        assert second.queueing_delay == pytest.approx(0.10)
        assert second.transfer_time == pytest.approx(0.51)

    def test_messages_between_clusters(self, heterogeneous_grid, network):
        c0, c1 = coordinator(heterogeneous_grid, 0), coordinator(heterogeneous_grid, 1)
        program = CommunicationProgram(num_ranks=heterogeneous_grid.num_nodes, root=c0)
        program.add_send(c0, c1, 1_000)
        program.add_send(c0, c0 + 1, 1_000)   # intra-cluster
        result = execute_program(network, program)
        cluster_of = [heterogeneous_grid.cluster_of_rank(r) for r in range(heterogeneous_grid.num_nodes)]
        assert result.messages_between_clusters(cluster_of) == 1


class TestExecutionOptions:
    def test_initially_active_ranks_start_at_zero(self, heterogeneous_grid, network):
        c0, c1, c2 = (coordinator(heterogeneous_grid, c) for c in range(3))
        program = CommunicationProgram(num_ranks=heterogeneous_grid.num_nodes, root=c0)
        program.add_send(c2, c1, 1_000)
        result = execute_program(network, program, initially_active=[c2])
        assert result.activation_times[c2] == 0.0
        assert result.activation_times[c1] is not None

    def test_initially_active_out_of_range(self, heterogeneous_grid, network):
        program = CommunicationProgram(num_ranks=4, root=0)
        with pytest.raises(ValueError):
            execute_program(network, program, initially_active=[99])

    def test_program_larger_than_network_rejected(self, heterogeneous_grid, network):
        program = CommunicationProgram(num_ranks=heterogeneous_grid.num_nodes + 1, root=0)
        with pytest.raises(ValueError, match="only has"):
            execute_program(network, program)

    def test_warm_network_not_reset(self, heterogeneous_grid, network):
        c0, c1 = coordinator(heterogeneous_grid, 0), coordinator(heterogeneous_grid, 1)
        program = CommunicationProgram(num_ranks=heterogeneous_grid.num_nodes, root=c0)
        program.add_send(c0, c1, 1_000)
        execute_program(network, program)
        result = execute_program(network, program, reset_network=False)
        # The root's NIC is still busy from the first run, delaying the send.
        assert result.trace[0].start_time > 0.0

    def test_empty_program_single_rank(self, heterogeneous_grid, network):
        program = CommunicationProgram(num_ranks=1, root=0)
        result = execute_program(network, program)
        assert result.makespan == 0.0
        assert result.activation_times[0] == 0.0

    def test_program_declared_initially_active_is_honoured(self, heterogeneous_grid, network):
        """Programs carrying their own initially_active metadata (scatter /
        all-to-all builders) need no executor-side parameter."""
        c0, c1, c2 = (coordinator(heterogeneous_grid, c) for c in range(3))
        program = CommunicationProgram(
            num_ranks=heterogeneous_grid.num_nodes,
            root=c0,
            initially_active=(c2,),
        )
        program.add_send(c2, c1, 1_000)
        result = execute_program(network, program)
        assert result.activation_times[c2] == 0.0
        assert result.activation_times[c1] is not None

    def test_parameter_and_metadata_initially_active_merge(self, heterogeneous_grid, network):
        c0, c1, c2 = (coordinator(heterogeneous_grid, c) for c in range(3))
        program = CommunicationProgram(
            num_ranks=heterogeneous_grid.num_nodes,
            root=c0,
            initially_active=(c1,),
        )
        program.add_send(c1, c0 + 1, 1_000)
        program.add_send(c2, c0 + 2, 1_000)
        result = execute_program(network, program, initially_active=[c2])
        assert result.activation_times[c1] == 0.0
        assert result.activation_times[c2] == 0.0

    def test_noise_changes_makespan_but_not_structure(self, heterogeneous_grid):
        c0, c1, c2 = (coordinator(heterogeneous_grid, c) for c in range(3))
        program = CommunicationProgram(num_ranks=heterogeneous_grid.num_nodes, root=c0)
        program.add_send(c0, c1, 1_000)
        program.add_send(c1, c2, 1_000)
        clean = execute_program(SimulatedNetwork(heterogeneous_grid), program)
        noisy = execute_program(
            SimulatedNetwork(heterogeneous_grid, NetworkConfig(noise_sigma=0.1, seed=1)),
            program,
        )
        assert noisy.makespan != clean.makespan
        assert noisy.makespan == pytest.approx(clean.makespan, rel=0.6)
        assert len(noisy.trace) == len(clean.trace)


class TestCollectivePaths:
    """End-to-end coverage for the scatter / all-to-all execution paths."""

    def test_scatter_program_activates_every_rank(self, heterogeneous_grid, network):
        from repro.core.ecef import ECEFLookahead
        from repro.mpi.scatter import grid_aware_scatter_program

        program, _ = grid_aware_scatter_program(
            heterogeneous_grid, 1_000, heuristic=ECEFLookahead.bhat()
        )
        result = execute_program(network, program)
        assert all(t is not None for t in result.activation_times)
        # Coordinators relay before local ranks receive their blocks.
        local = [r for r in result.trace if r.tag == "scatter-local"]
        aggregate = [r for r in result.trace if r.tag == "scatter-aggregate"]
        assert aggregate and local
        assert min(r.delivery_time for r in aggregate) < max(
            r.delivery_time for r in local
        )

    def test_alltoall_metadata_drives_all_active_execution(
        self, heterogeneous_grid, network
    ):
        from repro.mpi.alltoall import grid_aware_alltoall_program

        program = grid_aware_alltoall_program(heterogeneous_grid, 100)
        assert program.initially_active == tuple(range(heterogeneous_grid.num_nodes))
        result = execute_program(network, program)
        assert result.activation_times == [0.0] * heterogeneous_grid.num_nodes
        assert result.makespan > 0

    def test_warm_network_chaining_accumulates_nic_backlog(
        self, heterogeneous_grid, network
    ):
        """reset_network=False chains collectives on a warm network: each
        execution starts behind the previous one's NIC backlog, so makespans
        grow monotonically."""
        from repro.mpi.scatter import flat_scatter_program

        program = flat_scatter_program(heterogeneous_grid, 2_000, root_rank=0)
        makespans = []
        for index in range(3):
            result = execute_program(network, program, reset_network=index == 0)
            makespans.append(result.makespan)
        assert makespans[0] < makespans[1] < makespans[2]
        # A reset returns to the cold-start makespan.
        fresh = execute_program(network, program)
        assert fresh.makespan == makespans[0]
