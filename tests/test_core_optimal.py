"""Tests for repro.core.optimal (exhaustive branch-and-bound)."""

from __future__ import annotations

import pytest

from repro.core.ecef import ECEF, ECEFLookahead
from repro.core.flat_tree import FlatTreeHeuristic
from repro.core.optimal import OptimalSearch
from repro.core.registry import PAPER_HEURISTICS, get_heuristic
from repro.topology.generators import RandomGridGenerator, make_uniform_grid
from repro.utils.rng import RandomStream


class TestOptimalSearch:
    def test_two_clusters_single_choice(self, heterogeneous_grid):
        optimal = OptimalSearch().schedule(make_uniform_grid(2), 1_000)
        assert optimal.order == [(0, 1)]

    def test_never_worse_than_any_heuristic(self):
        generator = RandomGridGenerator(cluster_size=2)
        optimal = OptimalSearch()
        for seed in range(8):
            grid = generator.generate(5, RandomStream(seed=seed))
            best = optimal.schedule(grid, 1_048_576)
            best.validate()
            for key in PAPER_HEURISTICS:
                heuristic = get_heuristic(key)
                assert best.makespan <= heuristic.makespan(grid, 1_048_576) + 1e-9

    def test_matches_ecef_on_homogeneous_grid(self):
        grid = make_uniform_grid(4, broadcast_time=0.0)
        assert OptimalSearch().schedule(grid, 1_000).makespan == pytest.approx(
            ECEF().schedule(grid, 1_000).makespan
        )

    def test_heterogeneous_fixture_known_optimum(self, heterogeneous_grid):
        """On the hand-built grid the optimum is to serve the slow cluster first."""
        best = OptimalSearch().schedule(heterogeneous_grid, 1_000)
        assert best.order[0] == (0, 1)
        assert best.makespan == pytest.approx(0.101 + 2.0)

    def test_refuses_large_grids_by_default(self):
        grid = make_uniform_grid(9)
        with pytest.raises(ValueError, match="limited to"):
            OptimalSearch().schedule(grid, 1_000)

    def test_limit_can_be_raised(self):
        grid = make_uniform_grid(8, broadcast_time=0.0)
        schedule = OptimalSearch(max_clusters=8).schedule(grid, 1_000)
        schedule.validate()

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            OptimalSearch(max_clusters=0)

    def test_build_order_interface(self, heterogeneous_grid):
        """OptimalSearch also works through the generic build_order flow."""
        from repro.core.base import SchedulingState

        state = SchedulingState(grid=heterogeneous_grid, message_size=1_000, root=0)
        OptimalSearch().build_order(state)
        assert state.done

    def test_hit_rate_reference_for_small_grids(self):
        """At 4 clusters the heuristics' global minimum frequently equals the
        true optimum, validating the paper's 'global minimum' proxy."""
        generator = RandomGridGenerator(cluster_size=2)
        optimal = OptimalSearch()
        matches = 0
        trials = 15
        for seed in range(trials):
            grid = generator.generate(4, RandomStream(seed=seed + 1000))
            best_heuristic = min(
                get_heuristic(key).makespan(grid, 1_048_576) for key in PAPER_HEURISTICS
            )
            true_best = optimal.schedule(grid, 1_048_576).makespan
            if best_heuristic <= true_best + 1e-9:
                matches += 1
        assert matches >= trials // 2
