"""Behavioural tests for every scheduling heuristic."""

from __future__ import annotations

import pytest

from repro.core.bottomup import BottomUp
from repro.core.ecef import ECEF, ECEFLookahead
from repro.core.fef import FastestEdgeFirst
from repro.core.flat_tree import FlatTreeHeuristic
from repro.core.mixed import MixedStrategy
from repro.core.registry import PAPER_HEURISTICS, get_heuristic
from repro.topology.generators import RandomGridGenerator, make_uniform_grid
from repro.utils.rng import RandomStream

ALL_HEURISTICS = [get_heuristic(key) for key in PAPER_HEURISTICS] + [MixedStrategy()]


class TestAllHeuristicsProduceValidSchedules:
    @pytest.mark.parametrize("heuristic", ALL_HEURISTICS, ids=lambda h: h.name)
    def test_valid_on_random_grids(self, heuristic):
        generator = RandomGridGenerator(cluster_size=2)
        for seed in range(5):
            grid = generator.generate(6, RandomStream(seed=seed))
            schedule = heuristic.schedule(grid, 1_048_576)
            schedule.validate()
            assert len(schedule.transfers) == 5

    @pytest.mark.parametrize("heuristic", ALL_HEURISTICS, ids=lambda h: h.name)
    def test_valid_for_every_root(self, heuristic, heterogeneous_grid):
        for root in range(heterogeneous_grid.num_clusters):
            schedule = heuristic.schedule(heterogeneous_grid, 1_000, root=root)
            schedule.validate()
            assert schedule.root == root

    @pytest.mark.parametrize("heuristic", ALL_HEURISTICS, ids=lambda h: h.name)
    def test_two_cluster_grid(self, heuristic):
        grid = make_uniform_grid(2)
        schedule = heuristic.schedule(grid, 1_000)
        assert schedule.order == [(0, 1)]

    @pytest.mark.parametrize("heuristic", ALL_HEURISTICS, ids=lambda h: h.name)
    def test_grid5000(self, heuristic, grid5000):
        schedule = heuristic.schedule(grid5000, 4_194_304)
        schedule.validate()
        assert schedule.makespan > 0


class TestFlatTree:
    def test_all_sends_from_root(self, random_grid):
        schedule = FlatTreeHeuristic().schedule(random_grid, 1_000, root=2)
        assert all(t.sender == 2 for t in schedule.transfers)

    def test_default_order_wraps_around_root(self, uniform_grid):
        schedule = FlatTreeHeuristic().schedule(uniform_grid, 1_000, root=2)
        assert [t.receiver for t in schedule.transfers] == [3, 0, 1]

    def test_explicit_cluster_order(self, uniform_grid):
        heuristic = FlatTreeHeuristic(cluster_order=[3, 1, 2])
        schedule = heuristic.schedule(uniform_grid, 1_000, root=0)
        assert [t.receiver for t in schedule.transfers] == [3, 1, 2]

    def test_explicit_order_must_cover_all(self, uniform_grid):
        heuristic = FlatTreeHeuristic(cluster_order=[3, 1])
        with pytest.raises(ValueError):
            heuristic.schedule(uniform_grid, 1_000, root=0)

    def test_makespan_grows_linearly(self):
        makespans = [
            FlatTreeHeuristic().makespan(make_uniform_grid(n, broadcast_time=0.0), 1_000)
            for n in (2, 4, 8)
        ]
        # root gap accumulation: (n-1) * g + L
        assert makespans[1] - makespans[0] == pytest.approx(2 * 0.3, rel=1e-6)
        assert makespans[2] - makespans[1] == pytest.approx(4 * 0.3, rel=1e-6)


class TestFEF:
    def test_default_weight_is_latency(self):
        assert FastestEdgeFirst().weight == "latency"

    def test_rejects_unknown_weight(self):
        with pytest.raises(ValueError):
            FastestEdgeFirst(weight="bandwidth")

    def test_latency_weight_follows_cheapest_latency_first(self, heterogeneous_grid):
        schedule = FastestEdgeFirst().schedule(heterogeneous_grid, 1_000)
        # L(0,1)=1ms < L(0,2)=10ms, so cluster 1 is served first.
        assert schedule.order[0] == (0, 1)

    def test_transfer_time_weight_can_differ(self, random_grid):
        latency_based = FastestEdgeFirst(weight="latency").schedule(random_grid, 1_048_576)
        cost_based = FastestEdgeFirst(weight="transfer_time").schedule(random_grid, 1_048_576)
        assert cost_based.makespan <= latency_based.makespan + 1e-9


class TestECEF:
    def test_prefers_cheap_edges(self, heterogeneous_grid):
        schedule = ECEF().schedule(heterogeneous_grid, 1_000)
        assert schedule.order[0] == (0, 1)

    def test_uses_new_sources(self):
        """With one expensive root link and cheap peer links, ECEF relays."""
        from repro.topology.cluster import Cluster
        from repro.topology.grid import Grid, InterClusterLink

        clusters = [Cluster(cluster_id=i, size=1) for i in range(3)]
        links = {
            (0, 1): InterClusterLink.from_values(latency=0.001, gap=0.1),
            (0, 2): InterClusterLink.from_values(latency=0.001, gap=1.0),
            (1, 2): InterClusterLink.from_values(latency=0.001, gap=0.1),
        }
        grid = Grid(clusters, links)
        schedule = ECEF().schedule(grid, 1_000)
        assert (1, 2) in schedule.order

    def test_never_blocks(self, random_grid):
        """ECEF transfers always start exactly when the sender is ready."""
        schedule = ECEF().schedule(random_grid, 1_048_576)
        ready = {schedule.root: 0.0}
        for transfer in schedule.transfers:
            assert transfer.start_time == pytest.approx(ready.get(transfer.sender))
            ready[transfer.sender] = transfer.sender_release_time
            ready[transfer.receiver] = transfer.arrival_time


class TestECEFLookahead:
    def test_accepts_lookahead_by_name(self):
        heuristic = ECEFLookahead("min_edge")
        assert heuristic.key == "ecef_la"

    def test_rejects_unknown_lookahead_name(self):
        with pytest.raises(ValueError):
            ECEFLookahead("does_not_exist")

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            ECEFLookahead(42)  # type: ignore[arg-type]

    def test_named_constructors_have_paper_labels(self):
        assert ECEFLookahead.bhat().display_name == "ECEF-LA"
        assert ECEFLookahead.grid_aware_min().display_name == "ECEF-LAt"
        assert ECEFLookahead.grid_aware_max().display_name == "ECEF-LAT"

    def test_no_lookahead_equals_ecef(self, random_grid):
        plain = ECEF().schedule(random_grid, 1_048_576)
        degenerate = ECEFLookahead("none").schedule(random_grid, 1_048_576)
        assert degenerate.order == plain.order

    def test_lat_serves_slow_cluster_earlier_than_ecef(self, heterogeneous_grid):
        """On the hand-built grid, ECEF-LAT must not serve the slow cluster last."""
        lat = ECEFLookahead.grid_aware_max().schedule(heterogeneous_grid, 1_000)
        receivers = [t.receiver for t in lat.transfers]
        assert receivers.index(1) == 0  # cluster 1 has T = 2.0 s


class TestBottomUp:
    def test_serves_hardest_cluster_first(self, heterogeneous_grid):
        schedule = BottomUp().schedule(heterogeneous_grid, 1_000)
        # Cluster 1: min incoming cost 0.101, T = 2.0 -> 2.101
        # Cluster 2: min incoming cost 0.305, T = 0.05 -> 0.355
        assert schedule.order[0] == (0, 1)

    def test_ready_time_variant_is_valid(self, random_grid):
        schedule = BottomUp(use_ready_time=True).schedule(random_grid, 1_048_576)
        schedule.validate()

    def test_not_worse_than_flat_tree_on_average(self):
        generator = RandomGridGenerator(cluster_size=2)
        flat_total = 0.0
        bottomup_total = 0.0
        for seed in range(20):
            grid = generator.generate(8, RandomStream(seed=seed))
            flat_total += FlatTreeHeuristic().makespan(grid, 1_048_576)
            bottomup_total += BottomUp().makespan(grid, 1_048_576)
        assert bottomup_total < flat_total


class TestMixedStrategy:
    def test_threshold_switches_delegate(self):
        mixed = MixedStrategy(threshold=4)
        assert mixed.choose(3).name == "ECEF-LA"
        assert mixed.choose(4).name == "ECEF-LA"
        assert mixed.choose(5).name == "ECEF-LAT"

    def test_matches_delegate_schedules(self, random_grid):
        mixed = MixedStrategy(threshold=10)
        delegate = ECEFLookahead.bhat()
        assert (
            mixed.schedule(random_grid, 1_048_576).order
            == delegate.schedule(random_grid, 1_048_576).order
        )

    def test_custom_delegates(self, random_grid):
        mixed = MixedStrategy(threshold=1, large_grid=FlatTreeHeuristic())
        schedule = mixed.schedule(random_grid, 1_048_576)
        assert all(t.sender == 0 for t in schedule.transfers)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            MixedStrategy(threshold=0)


class TestCrossHeuristicProperties:
    def test_homogeneous_grid_all_heuristics_close(self):
        """On a perfectly homogeneous grid no heuristic should beat another by
        more than the flat-tree-vs-binomial structural difference."""
        grid = make_uniform_grid(6, broadcast_time=0.0)
        makespans = {
            h.name: h.makespan(grid, 1_000) for h in ALL_HEURISTICS if h.name != "Flat Tree"
        }
        assert max(makespans.values()) <= min(makespans.values()) * 1.8

    def test_ecef_family_beats_flat_tree_on_random_grids(self):
        generator = RandomGridGenerator(cluster_size=2)
        for seed in range(10):
            grid = generator.generate(8, RandomStream(seed=seed + 100))
            flat = FlatTreeHeuristic().makespan(grid, 1_048_576)
            ecef = ECEF().makespan(grid, 1_048_576)
            assert ecef <= flat + 1e-9
