"""Tests for repro.experiments.config."""

from __future__ import annotations

import pytest

from repro.core.registry import ECEF_FAMILY, PAPER_HEURISTICS
from repro.experiments.config import (
    FIGURE1_CLUSTER_COUNTS,
    FIGURE2_CLUSTER_COUNTS,
    PAPER_ITERATIONS,
    PAPER_MESSAGE_SIZE,
    PRACTICAL_MESSAGE_SIZES,
    PracticalStudyConfig,
    SimulationStudyConfig,
)


class TestPaperConstants:
    def test_one_mebibyte_message(self):
        assert PAPER_MESSAGE_SIZE == 1_048_576

    def test_figure1_sweeps_2_to_10(self):
        assert FIGURE1_CLUSTER_COUNTS == tuple(range(2, 11))

    def test_figure2_sweeps_5_to_50_step_5(self):
        assert FIGURE2_CLUSTER_COUNTS == (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)

    def test_paper_iteration_count(self):
        assert PAPER_ITERATIONS == 10_000

    def test_practical_sizes_reach_4_5_mb(self):
        assert PRACTICAL_MESSAGE_SIZES[0] == 0
        assert PRACTICAL_MESSAGE_SIZES[-1] == pytest.approx(4.5 * 1024 * 1024)


class TestSimulationStudyConfig:
    def test_defaults_use_paper_heuristics(self):
        config = SimulationStudyConfig()
        assert config.heuristics == PAPER_HEURISTICS
        assert config.message_size == PAPER_MESSAGE_SIZE

    def test_figure_presets(self):
        assert SimulationStudyConfig.figure1().cluster_counts == FIGURE1_CLUSTER_COUNTS
        assert SimulationStudyConfig.figure2().cluster_counts == FIGURE2_CLUSTER_COUNTS
        assert SimulationStudyConfig.figure3().heuristics == ECEF_FAMILY
        assert SimulationStudyConfig.figure4().heuristics == ECEF_FAMILY

    def test_rejects_empty_cluster_counts(self):
        with pytest.raises(ValueError):
            SimulationStudyConfig(cluster_counts=())

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            SimulationStudyConfig(iterations=0)

    def test_rejects_empty_heuristics(self):
        with pytest.raises(ValueError):
            SimulationStudyConfig(heuristics=())

    def test_rejects_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            SimulationStudyConfig(cluster_counts=(0, 2))


class TestPracticalStudyConfig:
    def test_defaults(self):
        config = PracticalStudyConfig()
        assert config.include_binomial_baseline
        assert config.local_tree == "binomial"
        assert config.message_sizes == PRACTICAL_MESSAGE_SIZES

    def test_rejects_empty_sizes(self):
        with pytest.raises(ValueError):
            PracticalStudyConfig(message_sizes=())

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            PracticalStudyConfig(noise_sigma=-0.5)

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            PracticalStudyConfig(message_sizes=(-1,))
