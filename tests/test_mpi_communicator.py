"""Tests for repro.mpi.communicator."""

from __future__ import annotations

import pytest

from repro.core.ecef import ECEF
from repro.mpi.communicator import GridCommunicator
from repro.simulator.network import NetworkConfig


@pytest.fixture
def comm(heterogeneous_grid):
    return GridCommunicator(heterogeneous_grid)


class TestBookkeeping:
    def test_size_and_clusters(self, comm, heterogeneous_grid):
        assert comm.size == heterogeneous_grid.num_nodes
        assert comm.num_clusters == 3

    def test_coordinator_ranks(self, comm):
        assert comm.coordinator_ranks() == [0, 4, 8]

    def test_cluster_of(self, comm):
        assert comm.cluster_of(0) == 0
        assert comm.cluster_of(5) == 1

    def test_rejects_non_grid(self):
        with pytest.raises(TypeError):
            GridCommunicator(grid="nope")  # type: ignore[arg-type]


class TestBcast:
    def test_bcast_by_key_and_instance_agree(self, comm):
        by_key = comm.bcast(1_000, heuristic="ecef")
        by_instance = comm.bcast(1_000, heuristic=ECEF())
        assert by_key.measured_time == pytest.approx(by_instance.measured_time)

    def test_outcome_contains_schedule_and_prediction(self, comm):
        outcome = comm.bcast(1_000, heuristic="ecef_la")
        assert outcome.schedule is not None
        assert outcome.predicted_time == pytest.approx(outcome.schedule.makespan)
        assert outcome.measured_time > 0

    def test_measured_matches_predicted_without_noise(self, comm):
        outcome = comm.bcast(1_000, heuristic="ecef")
        assert outcome.measured_time == pytest.approx(outcome.predicted_time, rel=0.05)

    def test_root_cluster_selects_root_rank(self, comm):
        outcome = comm.bcast(1_000, heuristic="ecef", root_cluster=1)
        assert outcome.execution.activation_times[4] == 0.0

    def test_binomial_baseline_has_no_schedule(self, comm):
        outcome = comm.bcast_binomial(1_000)
        assert outcome.schedule is None
        assert outcome.predicted_time is None
        assert outcome.measured_time > 0

    def test_invalid_heuristic_type(self, comm):
        with pytest.raises(TypeError):
            comm.bcast(1_000, heuristic=42)  # type: ignore[arg-type]

    def test_noise_config_propagates(self, heterogeneous_grid):
        noisy = GridCommunicator(
            heterogeneous_grid, network_config=NetworkConfig(noise_sigma=0.1, seed=2)
        )
        clean = GridCommunicator(heterogeneous_grid)
        assert noisy.bcast(1_000).measured_time != clean.bcast(1_000).measured_time


class TestOtherCollectives:
    def test_scatter_grid_aware_and_flat(self, comm):
        aware = comm.scatter(1_000)
        flat = comm.scatter(1_000, grid_aware=False)
        assert aware.measured_time > 0
        assert flat.measured_time > 0
        assert aware.schedule is not None
        assert flat.schedule is None

    def test_alltoall_both_variants(self, comm):
        aware = comm.alltoall(100)
        direct = comm.alltoall(100, grid_aware=False)
        assert aware.measured_time > 0
        assert direct.measured_time > 0
