"""Tests for repro.model.prediction."""

from __future__ import annotations

import math

import pytest

from repro.model.plogp import PLogPParameters
from repro.model.prediction import (
    best_broadcast_algorithm,
    predict_binomial_broadcast,
    predict_broadcast_time,
    predict_chain_broadcast,
    predict_flat_broadcast,
    predict_pipeline_broadcast,
)


def params(procs: int, latency: float = 0.001, gap: float = 0.01) -> PLogPParameters:
    return PLogPParameters.from_values(latency=latency, gap=gap, num_procs=procs)


class TestSingleProcess:
    @pytest.mark.parametrize(
        "predictor",
        [
            predict_flat_broadcast,
            predict_chain_broadcast,
            predict_binomial_broadcast,
            predict_pipeline_broadcast,
        ],
    )
    def test_single_process_is_free(self, predictor):
        assert predictor(params(1), 1_000_000) == 0.0


class TestFlatTree:
    def test_two_processes(self):
        assert predict_flat_broadcast(params(2), 0) == pytest.approx(0.01 + 0.001)

    def test_formula(self):
        # (P-1) * g + L
        assert predict_flat_broadcast(params(5), 0) == pytest.approx(4 * 0.01 + 0.001)

    def test_scales_linearly_with_size(self):
        small = predict_flat_broadcast(params(10), 0)
        assert small == pytest.approx(9 * 0.01 + 0.001)


class TestChain:
    def test_formula(self):
        assert predict_chain_broadcast(params(5), 0) == pytest.approx(4 * (0.01 + 0.001))

    def test_chain_slower_than_flat_for_large_p(self):
        p = params(20)
        assert predict_chain_broadcast(p, 0) > predict_flat_broadcast(p, 0)


class TestBinomial:
    def test_two_processes_single_send(self):
        assert predict_binomial_broadcast(params(2), 0) == pytest.approx(0.011)

    def test_power_of_two_rounds(self):
        # With negligible latency the makespan is ceil(log2 P) * g for P a power of 2.
        p = PLogPParameters.from_values(latency=0.0, gap=0.01, num_procs=8)
        assert predict_binomial_broadcast(p, 0) == pytest.approx(3 * 0.01)

    def test_beats_flat_for_many_processes(self):
        p = params(32)
        assert predict_binomial_broadcast(p, 0) < predict_flat_broadcast(p, 0)

    def test_beats_chain_for_many_processes(self):
        p = params(32)
        assert predict_binomial_broadcast(p, 0) < predict_chain_broadcast(p, 0)

    def test_monotone_in_cluster_size(self):
        times = [predict_binomial_broadcast(params(n), 1000) for n in range(2, 40)]
        assert all(b >= a for a, b in zip(times, times[1:]))


class TestPipeline:
    def test_reduces_to_chain_for_single_segment(self):
        p = params(5)
        chain = predict_chain_broadcast(p, 1000)
        pipeline = predict_pipeline_broadcast(p, 1000, segment_size=10_000)
        assert pipeline == pytest.approx(chain)

    def test_segmentation_helps_long_chains_with_affine_gap(self):
        from repro.model.plogp import GapFunction

        p = PLogPParameters(
            latency=1e-5,
            gap=GapFunction.from_bandwidth(overhead=1e-5, bandwidth=1e8),
            num_procs=16,
        )
        whole = predict_chain_broadcast(p, 4_000_000)
        segmented = predict_pipeline_broadcast(p, 4_000_000, segment_size=65_536)
        assert segmented < whole

    def test_rejects_non_positive_segment(self):
        with pytest.raises(ValueError):
            predict_pipeline_broadcast(params(4), 1000, segment_size=0)

    def test_zero_message(self):
        assert predict_pipeline_broadcast(params(4), 0) == pytest.approx(3 * 0.011)


class TestDispatcher:
    def test_named_dispatch_matches_direct_call(self):
        p = params(8)
        assert predict_broadcast_time(p, 1000, algorithm="binomial") == pytest.approx(
            predict_binomial_broadcast(p, 1000)
        )

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown broadcast algorithm"):
            predict_broadcast_time(params(4), 1000, algorithm="mystery")

    def test_best_algorithm_returns_minimum(self):
        p = params(32)
        name, time = best_broadcast_algorithm(p, 1000)
        all_times = {
            algorithm: predict_broadcast_time(p, 1000, algorithm=algorithm)
            for algorithm in ("flat", "chain", "binomial", "pipeline")
        }
        assert time == pytest.approx(min(all_times.values()))
        assert math.isclose(all_times[name], time)

    def test_best_algorithm_empty_candidates(self):
        with pytest.raises(ValueError):
            best_broadcast_algorithm(params(4), 1000, candidates=())
