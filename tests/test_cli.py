"""Tests for the repro-bcast command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import main


class TestScheduleCommand:
    def test_schedule_on_grid5000(self, capsys):
        assert main(["schedule", "--heuristic", "ecef", "--message-size", "1048576"]) == 0
        output = capsys.readouterr().out
        assert "makespan" in output
        assert "cluster 0 ->" in output

    def test_schedule_on_random_grid(self, capsys):
        assert main(["schedule", "--clusters", "4", "--seed", "3"]) == 0
        assert "schedule produced by" in capsys.readouterr().out

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--heuristic", "wishful"])


class TestCompareCommand:
    def test_compare_lists_all_paper_heuristics(self, capsys):
        assert main(["compare", "--clusters", "5", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        for name in ("Flat Tree", "FEF", "ECEF", "ECEF-LA", "ECEF-LAT", "BottomUp"):
            assert name in output


class TestSimulateCommand:
    def test_small_simulation_table(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--iterations",
                    "5",
                    "--min-clusters",
                    "2",
                    "--max-clusters",
                    "4",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Mean completion time" in output
        assert "clusters" in output


class TestPracticalCommand:
    def test_practical_tables(self, capsys):
        assert main(["practical", "--points", "2", "--max-size", "1048576"]) == 0
        output = capsys.readouterr().out
        assert "Predicted completion time" in output
        assert "Measured completion time" in output
        assert "Default LAM" in output

    def test_practical_scatter_table(self, capsys):
        assert (
            main(
                [
                    "practical",
                    "--collective",
                    "scatter",
                    "--points",
                    "2",
                    "--max-size",
                    "65536",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Measured scatter completion time" in output
        assert "Flat scatter" in output

    def test_practical_alltoall_table(self, capsys):
        assert (
            main(
                [
                    "practical",
                    "--collective",
                    "alltoall",
                    "--points",
                    "2",
                    "--max-size",
                    "4096",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Measured all-to-all completion time" in output
        assert "Grid-aware" in output

    def test_practical_rejects_unknown_collective(self):
        with pytest.raises(SystemExit):
            main(["practical", "--collective", "gather"])

    def test_practical_replicas_flag(self, capsys):
        assert (
            main(
                [
                    "practical",
                    "--points",
                    "2",
                    "--max-size",
                    "1048576",
                    "--replicas",
                    "2",
                ]
            )
            == 0
        )
        assert "mean of 2 replicas" in capsys.readouterr().out


class TestChainCommand:
    def test_chain_table(self, capsys):
        assert (
            main(
                [
                    "chain",
                    "--collectives",
                    "scatter,alltoall",
                    "--points",
                    "2",
                    "--max-size",
                    "16384",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "scatter -> alltoall" in output
        assert "overlap_gain" in output

    def test_chain_repeated_bcast(self, capsys):
        assert (
            main(
                [
                    "chain",
                    "--collectives",
                    "bcast",
                    "--repeat",
                    "2",
                    "--points",
                    "2",
                    "--max-size",
                    "65536",
                ]
            )
            == 0
        )
        assert "bcast#1 -> bcast#2" in capsys.readouterr().out


class TestParser:
    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])


class TestExecutorFlag:
    def test_simulate_with_thread_executor(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--iterations",
                    "5",
                    "--min-clusters",
                    "2",
                    "--max-clusters",
                    "3",
                    "--workers",
                    "2",
                    "--executor",
                    "thread",
                ]
            )
            == 0
        )
        assert "Mean completion time" in capsys.readouterr().out

    def test_practical_with_thread_executor(self, capsys):
        assert (
            main(
                [
                    "practical",
                    "--points",
                    "2",
                    "--max-size",
                    "65536",
                    "--workers",
                    "2",
                    "--executor",
                    "thread",
                ]
            )
            == 0
        )
        assert "Measured completion time" in capsys.readouterr().out

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            main(["practical", "--executor", "carrier-pigeon"])


class TestConnectTimeoutKnob:
    """The connect/handshake budget: CLI flag -> env var -> resolver."""

    def test_env_var_fallback_and_default(self, monkeypatch):
        from repro.runtime.remote import (
            CONNECT_TIMEOUT,
            CONNECT_TIMEOUT_ENV_VAR,
            _resolve_connect_timeout,
        )

        monkeypatch.delenv(CONNECT_TIMEOUT_ENV_VAR, raising=False)
        assert _resolve_connect_timeout(None) == CONNECT_TIMEOUT
        assert _resolve_connect_timeout(7.5) == 7.5  # explicit wins
        monkeypatch.setenv(CONNECT_TIMEOUT_ENV_VAR, "12.5")
        assert _resolve_connect_timeout(None) == 12.5
        assert _resolve_connect_timeout(7.5) == 7.5  # explicit still wins
        monkeypatch.setenv(CONNECT_TIMEOUT_ENV_VAR, "0")
        assert _resolve_connect_timeout(None) == 0.05  # clamped floor
        monkeypatch.setenv(CONNECT_TIMEOUT_ENV_VAR, "soon")
        assert _resolve_connect_timeout(None) == CONNECT_TIMEOUT  # degrade

    def test_cli_flag_exports_the_env_var(self, monkeypatch, capsys):
        from repro.runtime.remote import CONNECT_TIMEOUT_ENV_VAR

        monkeypatch.delenv(CONNECT_TIMEOUT_ENV_VAR, raising=False)
        assert (
            main(
                [
                    "practical",
                    "--points",
                    "2",
                    "--max-size",
                    "65536",
                    "--connect-timeout",
                    "3.5",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert os.environ.get(CONNECT_TIMEOUT_ENV_VAR) == "3.5"

    def test_worker_serve_admission_flags_document_defaults(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["worker", "serve", "--help"])
        assert excinfo.value.code == 0
        help_text = capsys.readouterr().out
        assert "--max-coordinators" in help_text
        assert "--queue" in help_text
        assert "--connect-timeout" not in help_text  # coordinator-side knob


class TestHelpTextDefaults:
    """Every option with a default documents it, and the documented value is
    the actual parser default — so `--help` can never silently drift."""

    @staticmethod
    def _subparsers():
        """Yield every *leaf* subcommand as ("space joined path", parser).

        Command groups (like ``worker``, which only routes to ``worker
        serve``) are walked through recursively, so nested subcommands get
        the same defaults-documented guarantee as top-level ones.
        """
        from repro.cli import _build_parser
        import argparse

        def walk(prefix, sub_parser):
            nested = [
                action
                for action in sub_parser._actions
                if isinstance(action, argparse._SubParsersAction)
            ]
            if nested:
                for name, child in nested[0].choices.items():
                    yield from walk(f"{prefix} {name}", child)
            else:
                yield prefix.strip(), sub_parser

        parser = _build_parser()
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for name, child in action.choices.items():
                    yield from walk(name, child)

    def test_every_defaulted_option_documents_its_default(self):
        import argparse

        missing = []
        for command, sub_parser in self._subparsers():
            for action in sub_parser._actions:
                if not action.option_strings or isinstance(
                    action, argparse._HelpAction
                ):
                    continue
                help_text = action.help or ""
                if "default" not in help_text.lower():
                    missing.append(f"{command} {action.option_strings[0]}")
                    continue
                # Options with a concrete (non-None) default must state the
                # exact value; env-var-driven options name the variable chain
                # instead.
                if action.default is not None:
                    if str(action.default) not in help_text:
                        missing.append(
                            f"{command} {action.option_strings[0]} "
                            f"(says nothing about {action.default!r})"
                        )
        assert not missing, (
            "CLI options whose --help does not state their default: "
            + ", ".join(missing)
        )

    def test_help_renders_for_every_subcommand(self, capsys):
        for command, _ in self._subparsers():
            with pytest.raises(SystemExit) as excinfo:
                main([*command.split(), "--help"])
            assert excinfo.value.code == 0
            assert "default" in capsys.readouterr().out.lower()
