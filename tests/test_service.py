"""Tests for broadcast-scheduling-as-a-service (repro.runtime.service).

The service's headline promise is the determinism contract: every response
is **bit-identical** to what the inline scheduling path produces for the
same (topology, size, heuristic, root) — whether the answer was computed,
replayed from the LRU schedule cache, or served concurrently to a pile of
hammering clients.  The serving scaffolding itself (admission ``BUSY``
bounce, graceful SIGTERM drain, malformed-frame rejection) is the same
:class:`~repro.runtime.serving.FrameServer` skeleton the study agent uses,
re-verified here through the service's wire surface.
"""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.core.costs import GridCostCache
from repro.core.registry import get_heuristic
from repro.runtime import wire
from repro.runtime.service import (
    ScheduleClient,
    ScheduleService,
    ServiceBusyError,
    ServiceError,
    build_topology,
    canonical_topology_spec,
    topology_key,
)
from repro.topology.cluster import Cluster
from repro.topology.generators import RandomGridGenerator
from repro.topology.grid import Grid, InterClusterLink
from repro.utils.rng import RandomStream

MB = 1_048_576

_ANNOUNCE = re.compile(r"listening on ([^\s:]+):(\d+)")


@contextmanager
def running_service(**kwargs):
    """One in-process daemon on an OS-assigned port, torn down afterwards."""
    server = ScheduleService(port=0, **kwargs)
    address = server.bind()
    thread = threading.Thread(
        target=server.serve_forever, name="service-under-test", daemon=True
    )
    thread.start()
    try:
        yield server, address
    finally:
        server.close()
        thread.join(timeout=5)


def inline_schedule(spec, message_size, heuristic, root=0):
    """The reference path the service must reproduce bit for bit."""
    grid = build_topology(spec)
    return get_heuristic(heuristic).schedule(grid, float(message_size), root=root)


def assert_bit_identical(reply, spec, message_size, heuristic, root=0):
    reference = inline_schedule(spec, message_size, heuristic, root=root)
    schedule = reply.schedule()
    assert schedule.order == reference.order
    assert schedule.makespan == reference.makespan
    assert schedule.arrival_times == reference.arrival_times
    assert schedule.local_start_times == reference.local_start_times
    assert schedule.completion_times == reference.completion_times
    assert [
        (t.sender, t.receiver, t.start_time, t.sender_release_time,
         t.arrival_time, t.gap, t.latency)
        for t in schedule.transfers
    ] == [
        (t.sender, t.receiver, t.start_time, t.sender_release_time,
         t.arrival_time, t.gap, t.latency)
        for t in reference.transfers
    ]
    # The human-facing rendering is byte-identical too — the CI smoke job
    # diffs `service query` output against `schedule` output.
    assert schedule.summary() == reference.summary()


class TestTopologySpecs:
    def test_canonicalisation_is_strict(self):
        with pytest.raises(ValueError, match="kind"):
            canonical_topology_spec({"kind": "mesh"})
        with pytest.raises(ValueError, match="mapping"):
            canonical_topology_spec("grid5000")
        with pytest.raises(ValueError, match="clusters"):
            canonical_topology_spec({"kind": "random", "clusters": 0})
        with pytest.raises(ValueError, match="latency"):
            canonical_topology_spec({"kind": "explicit", "broadcast": [0.1, 0.2]})
        with pytest.raises(ValueError, match="3x3"):
            canonical_topology_spec(
                {
                    "kind": "explicit",
                    "broadcast": [0.1, 0.2, 0.3],
                    "latency": [[0.0, 1.0], [1.0, 0.0]],
                    "gap": [[0.0] * 3] * 3,
                }
            )

    def test_topology_key_ignores_irrelevant_representation(self):
        """Key order and int-vs-float spelling do not split the cache."""
        a = topology_key({"kind": "random", "clusters": 5, "seed": 7})
        b = topology_key({"seed": 7.0, "clusters": 5.0, "kind": "random"})
        assert a == b
        assert a != topology_key({"kind": "random", "clusters": 5, "seed": 8})
        assert a != topology_key({"kind": "random", "clusters": 6, "seed": 7})
        assert a != topology_key({"kind": "grid5000"})

    def test_random_spec_builds_the_generator_grid(self):
        spec = {"kind": "random", "clusters": 6, "seed": 42}
        built = build_topology(spec)
        reference = RandomGridGenerator().generate(6, RandomStream(seed=42))
        schedule = get_heuristic("ecef_la").schedule(built, float(MB))
        expected = get_heuristic("ecef_la").schedule(reference, float(MB))
        assert built.num_clusters == 6
        assert schedule.order == expected.order
        assert schedule.makespan == expected.makespan
        assert schedule.completion_times == expected.completion_times

    def test_explicit_spec_builds_the_literal_grid(self):
        """An explicit spec wires its matrices into the very grid a caller
        would build by hand from Cluster and InterClusterLink objects."""
        spec = {
            "kind": "explicit",
            "broadcast": [0.5, 0.25, 0.125],
            "latency": [
                [0.0, 0.010, 0.020],
                [0.010, 0.0, 0.030],
                [0.020, 0.030, 0.0],
            ],
            "gap": [
                [0.0, 2e-7, 1e-7],
                [2e-7, 0.0, 3e-7],
                [1e-7, 3e-7, 0.0],
            ],
        }
        clusters = [
            Cluster(cluster_id=0, size=1, fixed_broadcast_time=0.5),
            Cluster(cluster_id=1, size=1, fixed_broadcast_time=0.25),
            Cluster(cluster_id=2, size=1, fixed_broadcast_time=0.125),
        ]
        links = {
            (0, 1): InterClusterLink.from_values(0.010, 2e-7),
            (0, 2): InterClusterLink.from_values(0.020, 1e-7),
            (1, 2): InterClusterLink.from_values(0.030, 3e-7),
        }
        reference_grid = Grid(clusters, links, name="explicit")
        for key in ("fef", "ecef_la", "bottom_up"):
            built = get_heuristic(key).schedule(build_topology(spec), float(MB))
            expected = get_heuristic(key).schedule(reference_grid, float(MB))
            assert built.order == expected.order
            assert built.makespan == expected.makespan
            assert built.completion_times == expected.completion_times


class TestServiceQueries:
    QUERIES = [
        ({"kind": "grid5000"}, MB, "ecef_la", 0),
        ({"kind": "grid5000"}, 4_096, "fef", 2),
        ({"kind": "random", "clusters": 8, "seed": 3}, MB, "bottom_up", 0),
        ({"kind": "random", "clusters": 5, "seed": 11}, 65_536, "ecef", 1),
        (
            {
                "kind": "explicit",
                "broadcast": [0.3, 0.1, 0.2],
                "latency": [[0.0, 0.01, 0.02], [0.01, 0.0, 0.03], [0.02, 0.03, 0.0]],
                "gap": [[0.0, 2e-7, 1e-7], [2e-7, 0.0, 3e-7], [1e-7, 3e-7, 0.0]],
            },
            2 * MB,
            "flat_tree",
            0,
        ),
    ]

    def test_every_response_is_bit_identical_to_inline(self):
        with running_service() as (_, address):
            with ScheduleClient(address) as client:
                for spec, size, heuristic, root in self.QUERIES:
                    reply = client.query(spec, size, heuristic, root=root)
                    assert not reply.cached
                    assert_bit_identical(reply, spec, size, heuristic, root=root)

    def test_cache_hits_replay_verbatim_and_are_accounted(self):
        with running_service() as (server, address):
            with ScheduleClient(address) as client:
                first = client.query({"kind": "grid5000"}, MB, "ecef_la")
                second = client.query({"kind": "grid5000"}, MB, "ecef_la")
                assert not first.cached and second.cached
                assert second.payload == first.payload
                # Key-insensitive heuristic spelling shares the cache slot.
                third = client.query({"kind": "grid5000"}, MB, "ECEF-LA")
                assert third.cached and third.payload == first.payload
                # A different root is a different schedule, not a hit.
                rooted = client.query({"kind": "grid5000"}, MB, "ecef_la", root=3)
                assert not rooted.cached
                assert_bit_identical(
                    rooted, {"kind": "grid5000"}, MB, "ecef_la", root=3
                )
                stats = client.stats()
                assert stats["served"] == 4
                assert stats["hits"] == 2
                assert stats["misses"] == 2
                assert stats["retimed"] == 0
                assert stats["entries"] == 2
                assert stats["topologies"] == 1
            assert server.stats() == stats

    def test_query_errors_keep_the_connection_alive(self):
        with running_service() as (_, address):
            with ScheduleClient(address) as client:
                with pytest.raises(ServiceError, match="unknown topology kind"):
                    client.query({"kind": "mesh"}, MB, "fef")
                with pytest.raises(ServiceError, match="(?i)unknown heuristic"):
                    client.query({"kind": "grid5000"}, MB, "dijkstra")
                with pytest.raises(ServiceError, match="message_size"):
                    client.query({"kind": "grid5000"}, -5, "fef")
                # The connection survived all three rejections.
                reply = client.query({"kind": "grid5000"}, MB, "fef")
                assert_bit_identical(reply, {"kind": "grid5000"}, MB, "fef")

    def test_malformed_frames_drop_the_connection_not_the_daemon(self):
        with running_service() as (_, address):
            # Raw garbage bytes: the frame magic check fails, the server
            # drops the connection without dying.
            raw = socket.create_connection(address, timeout=5)
            try:
                hello = wire.recv_message(raw)
                assert hello.get("service") == "schedule"
                raw.sendall(b"\xde\xad\xbe\xef" * 8)
                # The server closes its end — a clean FIN or, if our bytes
                # were still unread, an RST.  Either way: no reply frame.
                try:
                    assert raw.recv(1024) == b""
                except ConnectionError:
                    pass
            finally:
                raw.close()
            # A well-formed frame that is not a query: same fate.
            raw = socket.create_connection(address, timeout=5)
            try:
                wire.recv_message(raw)
                wire.send_message(raw, {"bogus": 1})
                assert wire.recv_message(raw) is None
            finally:
                raw.close()
            # The daemon shrugged both off and serves the next client.
            with ScheduleClient(address) as client:
                reply = client.query({"kind": "grid5000"}, MB, "fef")
                assert_bit_identical(reply, {"kind": "grid5000"}, MB, "fef")

    def test_ping_is_answered_inline(self):
        with running_service() as (_, address):
            raw = socket.create_connection(address, timeout=5)
            try:
                wire.recv_message(raw)
                wire.send_message(raw, wire.control_message(wire.OP_PING, seq=7))
                pong = wire.recv_message(raw)
                assert pong["op"] == wire.OP_PONG and pong["seq"] == 7
            finally:
                raw.close()


class TestServiceCaching:
    def test_lru_eviction_respects_cache_size(self):
        with running_service(cache_size=2) as (server, address):
            with ScheduleClient(address) as client:
                client.query({"kind": "grid5000"}, MB, "fef")
                client.query({"kind": "grid5000"}, MB, "ecef")
                client.query({"kind": "grid5000"}, MB, "bottom_up")  # evicts fef
                assert client.stats()["entries"] == 2
                again = client.query({"kind": "grid5000"}, MB, "fef")
                assert not again.cached  # it was evicted, recomputed
                recent = client.query({"kind": "grid5000"}, MB, "bottom_up")
                assert recent.cached
            assert server.stats()["misses"] == 4
            assert server.stats()["hits"] == 1

    def test_topology_cache_keeps_cost_matrices_warm(self):
        """A known topology keeps one grid identity across queries — which
        is what keeps its weakly-keyed GridCostCache matrices warm."""
        spec = {"kind": "random", "clusters": 7, "seed": 5}
        with running_service() as (server, address):
            with ScheduleClient(address) as client:
                client.query(spec, MB, "fef")
                key = topology_key(spec)
                grid = server._grids[key]
                # The service built (and cached) exactly this size's matrices.
                assert server._costs_for(grid, float(MB)) is GridCostCache.for_grid(
                    grid, float(MB)
                )
                client.query(spec, 2 * MB, "fef")
                client.query(spec, MB, "ecef")
                assert server._grids[key] is grid
                assert server.stats()["topologies"] == 1

    def test_band_retiming_is_exact_on_constant_gap_topologies(self):
        """With band_bytes set, a second size in the band replays the cached
        decision order re-timed at the exact query size — which on constant
        gap topologies (the Monte-Carlo grids) is bit-identical to inline."""
        spec = {"kind": "random", "clusters": 9, "seed": 13}
        with running_service(band_bytes=MB) as (server, address):
            with ScheduleClient(address) as client:
                first = client.query(spec, MB, "ecef_la")
                assert not first.cached
                assert_bit_identical(first, spec, MB, "ecef_la")
                # Same band (1 MiB wide), different exact size.
                second = client.query(spec, MB + 4_096, "ecef_la")
                assert second.cached
                assert_bit_identical(second, spec, MB + 4_096, "ecef_la")
                stats = client.stats()
                assert stats["retimed"] == 1 and stats["hits"] == 1
                # The band representative stays cached at its own exact size.
                replay = client.query(spec, MB, "ecef_la")
                assert replay.cached and replay.payload == first.payload


class TestServiceConcurrency:
    def test_concurrent_client_soak_every_response_bit_identical(self):
        """N threads hammer one daemon with a mixed query set; every single
        response must match the inline path bit for bit."""
        queries = TestServiceQueries.QUERIES
        references = [
            inline_schedule(spec, size, heuristic, root=root)
            for spec, size, heuristic, root in queries
        ]
        failures: list[str] = []
        rounds, workers = 3, 6

        with running_service(max_clients=workers + 1) as (server, address):

            def hammer(worker: int) -> None:
                try:
                    with ScheduleClient(address, timeout=60) as client:
                        for _ in range(rounds):
                            for index, (spec, size, heuristic, root) in enumerate(
                                queries
                            ):
                                reply = client.query(
                                    spec, size, heuristic, root=root
                                )
                                schedule = reply.schedule()
                                reference = references[index]
                                if (
                                    schedule.order != reference.order
                                    or schedule.makespan != reference.makespan
                                    or schedule.completion_times
                                    != reference.completion_times
                                    or schedule.summary() != reference.summary()
                                ):
                                    failures.append(
                                        f"worker {worker} query {index} diverged"
                                    )
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append(f"worker {worker}: {type(exc).__name__}: {exc}")

            threads = [
                threading.Thread(target=hammer, args=(worker,))
                for worker in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not failures, failures
            stats = server.stats()
            assert stats["served"] == workers * rounds * len(queries)
            assert stats["hits"] + stats["misses"] == stats["served"]
            # Concurrent first-misses on one key may each compute, so misses
            # is at least one per distinct query rather than exactly one.
            assert len(queries) <= stats["misses"] <= workers * len(queries)
            assert stats["entries"] == len(queries)

    def test_connection_admission_bounces_busy(self):
        with running_service(max_clients=1) as (_, address):
            first = ScheduleClient(address, timeout=5).connect()
            try:
                with pytest.raises(ServiceBusyError, match="max clients"):
                    ScheduleClient(address, timeout=5).connect()
            finally:
                first.close()
            # The slot frees once the first client leaves.
            deadline = time.monotonic() + 10
            while True:
                try:
                    second = ScheduleClient(address, timeout=5).connect()
                    break
                except ServiceBusyError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            second.close()

    def test_queue_bound_bounces_per_query_busy(self, monkeypatch):
        """With queue=1, a query arriving while another is in flight is
        refused with a per-query BUSY frame the client surfaces as
        ServiceBusyError — and the connection itself survives the bounce."""
        started = threading.Event()
        release = threading.Event()
        original = ScheduleService._answer

        def slow_answer(self, message):
            if message.get("heuristic") == "fef":  # only the blocker stalls
                started.set()
                release.wait(10)
            return original(self, message)

        monkeypatch.setattr(ScheduleService, "_answer", slow_answer)
        with running_service(queue=1) as (_, address):
            blocker = ScheduleClient(address, timeout=30).connect()
            probe = ScheduleClient(address, timeout=30).connect()
            try:
                box: dict = {}
                thread = threading.Thread(
                    target=lambda: box.update(
                        reply=blocker.query({"kind": "grid5000"}, MB, "fef")
                    )
                )
                thread.start()
                # The blocker's query is admitted (it reached _answer) and
                # holds the whole in-flight budget.
                assert started.wait(10)
                with pytest.raises(ServiceBusyError, match="queue"):
                    probe.query({"kind": "grid5000"}, MB, "ecef")
                release.set()
                thread.join(timeout=30)
                assert "reply" in box
                assert_bit_identical(box["reply"], {"kind": "grid5000"}, MB, "fef")
                # Post-flush the bound has room again on the same probe
                # connection.  The blocker's reply flushes before the server
                # decrements its in-flight count, so allow a beat.
                deadline = time.monotonic() + 10
                while True:
                    try:
                        after = probe.query({"kind": "grid5000"}, MB, "ecef")
                        break
                    except ServiceBusyError:
                        assert time.monotonic() < deadline, "queue never freed"
                        time.sleep(0.05)
                assert_bit_identical(after, {"kind": "grid5000"}, MB, "ecef")
            finally:
                release.set()
                blocker.close()
                probe.close()

    def test_drain_flushes_inflight_query_and_refuses_new_work(self, monkeypatch):
        """begin_drain mid-query: the admitted query finishes and its result
        flushes; peers get per-query BUSY; fresh connections are refused."""
        started = threading.Event()
        release = threading.Event()
        original = ScheduleService._answer

        def slow_answer(self, message):
            started.set()
            release.wait(10)
            return original(self, message)

        monkeypatch.setattr(ScheduleService, "_answer", slow_answer)
        with running_service() as (server, address):
            inflight = ScheduleClient(address, timeout=30).connect()
            peer = ScheduleClient(address, timeout=30).connect()
            try:
                box: dict = {}
                thread = threading.Thread(
                    target=lambda: box.update(
                        reply=inflight.query({"kind": "grid5000"}, MB, "ecef_la")
                    )
                )
                thread.start()
                assert started.wait(10)
                server.begin_drain()
                # An established peer is bounced per-query...
                with pytest.raises(ServiceBusyError):
                    peer.query({"kind": "grid5000"}, MB, "fef")
                # ...and a newcomer is refused: either the closed listener
                # rejects the connect outright, or (while the accept loop is
                # still unwinding) the handshake lands and is bounced with a
                # BUSY hello.  Both are ServiceBusyError/OSError, never a
                # served query.
                with pytest.raises((OSError, ServiceError)):
                    ScheduleClient(address, timeout=2).connect()
                release.set()
                thread.join(timeout=30)
                assert server.drain(timeout=10)
                assert_bit_identical(
                    box["reply"], {"kind": "grid5000"}, MB, "ecef_la"
                )
            finally:
                release.set()
                inflight.close()
                peer.close()


def _spawn_service_daemon(*extra: str) -> tuple[subprocess.Popen, tuple[str, int]]:
    """Start one `service serve` daemon subprocess and read its address."""
    import repro

    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "service",
        "serve",
        "--bind",
        "127.0.0.1:0",
        *extra,
    ]
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = package_root + (os.pathsep + existing if existing else "")
    process = subprocess.Popen(command, stdout=subprocess.PIPE, text=True, env=env)
    assert process.stdout is not None
    line = process.stdout.readline()
    match = _ANNOUNCE.search(line)
    if match is None:
        process.kill()
        process.wait(timeout=15)
        raise RuntimeError(f"no announce line from the daemon, got {line!r}")
    return process, (match.group(1), int(match.group(2)))


class TestServiceDaemon:
    def test_sigterm_drains_and_exits_zero(self):
        """The `service serve` daemon answers queries until SIGTERM, then
        refuses new work, drains and exits 0."""
        process, address = _spawn_service_daemon()
        try:
            with ScheduleClient(address, timeout=30) as client:
                reply = client.query({"kind": "grid5000"}, MB, "ecef_la")
                assert_bit_identical(reply, {"kind": "grid5000"}, MB, "ecef_la")
                process.send_signal(signal.SIGTERM)
                # Signal delivery is asynchronous: poll until the drain
                # takes effect (per-query BUSY, or the torn-down socket).
                deadline = time.monotonic() + 30
                while True:
                    try:
                        client.query({"kind": "grid5000"}, MB, "fef")
                    except (ServiceError, OSError):
                        break
                    assert time.monotonic() < deadline, "still serving"
                    time.sleep(0.05)
            assert process.wait(timeout=60) == 0
            with pytest.raises(OSError):
                socket.create_connection(address, timeout=2)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=15)
