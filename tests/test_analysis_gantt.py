"""Tests for repro.analysis.gantt (ASCII Gantt charts)."""

from __future__ import annotations

import pytest

from repro.analysis.gantt import (
    IDLE_CHAR,
    LOCAL_CHAR,
    SEND_CHAR,
    WAIT_CHAR,
    render_execution_gantt,
    render_schedule_gantt,
)
from repro.core.ecef import ECEF
from repro.mpi.bcast import grid_aware_bcast_program
from repro.simulator.execution import execute_program
from repro.simulator.network import SimulatedNetwork


@pytest.fixture
def schedule(heterogeneous_grid):
    return ECEF().schedule(heterogeneous_grid, 1_000)


class TestScheduleGantt:
    def test_one_row_per_cluster_plus_header_and_legend(self, schedule):
        chart = render_schedule_gantt(schedule)
        lines = chart.splitlines()
        assert len(lines) == schedule.num_clusters + 2
        assert "makespan" in lines[0]
        assert "legend" in lines[-1]

    def test_root_row_has_sends_and_no_waiting(self, schedule):
        chart = render_schedule_gantt(schedule, width=40)
        root_row = chart.splitlines()[1 + schedule.root]
        assert SEND_CHAR in root_row
        assert WAIT_CHAR not in root_row

    def test_leaf_cluster_waits_then_broadcasts(self, schedule):
        # Cluster 2 in the fixture receives late and has a tiny T.
        chart = render_schedule_gantt(schedule, width=40)
        row = chart.splitlines()[1 + 2]
        assert WAIT_CHAR in row
        assert "|" in row

    def test_slow_cluster_shows_local_broadcast(self, schedule):
        # Cluster 1 has T = 2.0 s, which dominates the makespan.
        chart = render_schedule_gantt(schedule, width=40)
        row = chart.splitlines()[1 + 1]
        assert row.count(LOCAL_CHAR) > 10

    def test_custom_labels(self, schedule):
        chart = render_schedule_gantt(schedule, labels=["rootsite", "slowsite", "farsite"])
        assert "slowsite" in chart

    def test_label_count_mismatch(self, schedule):
        with pytest.raises(ValueError):
            render_schedule_gantt(schedule, labels=["only-one"])

    def test_width_must_be_positive(self, schedule):
        with pytest.raises(ValueError):
            render_schedule_gantt(schedule, width=0)

    def test_rows_respect_width(self, schedule):
        chart = render_schedule_gantt(schedule, width=30)
        # every row (label + space + bar of width+1 cells) stays bounded
        label_width = max(len(f"cluster {i}") for i in range(schedule.num_clusters))
        for line in chart.splitlines()[1:-1]:
            assert len(line) <= label_width + 1 + 31


class TestExecutionGantt:
    def test_chart_over_real_execution(self, heterogeneous_grid, schedule):
        program = grid_aware_bcast_program(heterogeneous_grid, schedule, 1_000)
        result = execute_program(SimulatedNetwork(heterogeneous_grid), program)
        chart = render_execution_gantt(result, width=40, max_rows=6)
        lines = chart.splitlines()
        assert len(lines) == 1 + 6
        assert "makespan" in lines[0]
        assert any(SEND_CHAR in line for line in lines[1:])

    def test_truncates_to_busiest_ranks(self, heterogeneous_grid, schedule):
        program = grid_aware_bcast_program(heterogeneous_grid, schedule, 1_000)
        result = execute_program(SimulatedNetwork(heterogeneous_grid), program)
        chart = render_execution_gantt(result, max_rows=3)
        assert "3/12 ranks shown" in chart.splitlines()[0]

    def test_invalid_parameters(self, heterogeneous_grid, schedule):
        program = grid_aware_bcast_program(heterogeneous_grid, schedule, 1_000)
        result = execute_program(SimulatedNetwork(heterogeneous_grid), program)
        with pytest.raises(ValueError):
            render_execution_gantt(result, width=-1)
        with pytest.raises(ValueError):
            render_execution_gantt(result, max_rows=0)
