"""Equivalence and unit tests for the vectorized scheduling engine.

The repository ships three scheduling engines that must agree bit-for-bit:

* the **scalar reference** (``vectorized=False``): the seed implementation's
  nested Python loops;
* the **vectorized** per-grid engine: masked NumPy argmin kernels on a
  :class:`~repro.core.costs.GridCostCache`;
* the **batched** engine (:mod:`repro.core.batch`): whole stacks of grids
  advanced one selection round at a time.

The property tests below assert identical decision orders and identical
(``==``, not approximately equal) makespans across engines on randomized
grids, for every registered heuristic and lookahead — tie-breaking included.

One caveat: the *average*-based ablation lookaheads reduce with a different
summation order per engine (scalar left-to-right vs NumPy pairwise vs BLAS
dot), so their scores can differ by a few ULPs and exact equality is only
guaranteed when no two candidate scores are within ULPs of each other.  Those
two lookaheads are therefore exercised on a fixed seed set (deterministic)
rather than under hypothesis, which could in principle stumble on a near-tie.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.base import SchedulingState, run_heuristics
from repro.core.batch import BatchedGridCosts, batched_makespans
from repro.core.costs import GridCostCache
from repro.core.ecef import ECEFLookahead
from repro.core.lookahead import LOOKAHEAD_FUNCTIONS
from repro.core.registry import PAPER_HEURISTICS, get_heuristic, instantiate
from repro.topology.generators import RandomGridGenerator, make_uniform_grid
from repro.utils.rng import RandomStream

MESSAGE_SIZE = 1_048_576

#: Every registry key with a polynomial-time batched/vectorized path.
GREEDY_KEYS = tuple(k for k in PAPER_HEURISTICS) + ("mixed",)

#: Lookaheads whose vectorized/batched twins are exact (min/max reductions
#: are order-independent in IEEE arithmetic) vs. the average-based ones
#: (summation order differs per engine, so scores may differ by ULPs).
EXACT_LOOKAHEADS = ("none", "min_edge", "grid_aware_min", "grid_aware_max")
AVERAGE_LOOKAHEADS = ("average_latency", "average_informed")


def random_grid(num_clusters: int, seed: int):
    return RandomGridGenerator(cluster_size=2).generate(
        num_clusters, RandomStream(seed=seed)
    )


# ---------------------------------------------------------------------------
# engine equivalence (the tentpole property)
# ---------------------------------------------------------------------------


class TestEngineEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_clusters=st.integers(min_value=2, max_value=12),
        key=st.sampled_from(GREEDY_KEYS),
    )
    @settings(max_examples=60, deadline=None)
    def test_vectorized_matches_scalar(self, seed, num_clusters, key):
        grid = random_grid(num_clusters, seed)
        heuristic = get_heuristic(key)
        fast = heuristic.schedule(grid, MESSAGE_SIZE, vectorized=True)
        reference = heuristic.schedule(grid, MESSAGE_SIZE, vectorized=False)
        assert fast.order == reference.order
        assert fast.makespan == reference.makespan

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_clusters=st.integers(min_value=2, max_value=10),
        lookahead=st.sampled_from(EXACT_LOOKAHEADS),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_lookaheads_match_scalar(self, seed, num_clusters, lookahead):
        grid = random_grid(num_clusters, seed)
        heuristic = ECEFLookahead(lookahead, key="t", display_name="t")
        fast = heuristic.schedule(grid, MESSAGE_SIZE, vectorized=True)
        reference = heuristic.schedule(grid, MESSAGE_SIZE, vectorized=False)
        assert fast.order == reference.order
        assert fast.makespan == reference.makespan

    @pytest.mark.parametrize("lookahead", AVERAGE_LOOKAHEADS)
    @pytest.mark.parametrize("seed", [0, 7, 42, 123, 999, 2024])
    @pytest.mark.parametrize("num_clusters", [2, 5, 9])
    def test_average_lookaheads_match_scalar_on_fixed_seeds(
        self, seed, num_clusters, lookahead
    ):
        """Deterministic seed set: avoids hypothesis ever landing on a
        score near-tie, where the engines' different summation orders could
        legitimately pick different (equally good) pairs."""
        grid = random_grid(num_clusters, seed)
        heuristic = ECEFLookahead(lookahead, key="t", display_name="t")
        fast = heuristic.schedule(grid, MESSAGE_SIZE, vectorized=True)
        reference = heuristic.schedule(grid, MESSAGE_SIZE, vectorized=False)
        assert fast.order == reference.order
        assert fast.makespan == reference.makespan
        stacked = BatchedGridCosts([GridCostCache.for_grid(grid, MESSAGE_SIZE)])
        batch = batched_makespans(heuristic, stacked)
        assert batch is not None and batch[0] == reference.makespan

    def test_lookahead_split_covers_the_registry(self):
        assert set(EXACT_LOOKAHEADS) | set(AVERAGE_LOOKAHEADS) == set(
            LOOKAHEAD_FUNCTIONS
        )

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_clusters=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=15, deadline=None)
    def test_optimal_matches_scalar(self, seed, num_clusters):
        grid = random_grid(num_clusters, seed)
        heuristic = get_heuristic("optimal")
        fast = heuristic.schedule(grid, MESSAGE_SIZE, vectorized=True)
        reference = heuristic.schedule(grid, MESSAGE_SIZE, vectorized=False)
        assert fast.order == reference.order
        assert fast.makespan == reference.makespan

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_clusters=st.integers(min_value=2, max_value=12),
        root=st.integers(min_value=0, max_value=11),
    )
    @settings(max_examples=40, deadline=None)
    def test_batched_matches_per_grid(self, seed, num_clusters, root):
        root = root % num_clusters
        grids = [random_grid(num_clusters, seed + offset) for offset in range(4)]
        caches = [GridCostCache.for_grid(g, MESSAGE_SIZE) for g in grids]
        stacked = BatchedGridCosts(caches)
        for heuristic in instantiate(GREEDY_KEYS):
            batch = batched_makespans(heuristic, stacked, root=root)
            assert batch is not None, heuristic.name
            per_grid = [
                heuristic.schedule(
                    grid, MESSAGE_SIZE, root=root, costs=cache
                ).makespan
                for grid, cache in zip(grids, caches)
            ]
            assert batch.tolist() == per_grid, heuristic.name

    def test_custom_lookahead_falls_back_but_stays_vectorized(self):
        """An unregistered lookahead callable still schedules correctly."""
        grid = random_grid(6, seed=7)

        def custom(state, candidate):
            return state.broadcast_time(candidate) * 0.5

        heuristic = ECEFLookahead(custom, key="c", display_name="custom")
        fast = heuristic.schedule(grid, MESSAGE_SIZE, vectorized=True)
        reference = heuristic.schedule(grid, MESSAGE_SIZE, vectorized=False)
        assert fast.order == reference.order
        # And the batched engine reports no kernel for it.
        stacked = BatchedGridCosts([GridCostCache.for_grid(grid, MESSAGE_SIZE)])
        assert batched_makespans(heuristic, stacked) is None

    def test_makespan_fast_path_matches_schedule(self):
        grid = random_grid(9, seed=11)
        for heuristic in instantiate(GREEDY_KEYS):
            assert heuristic.makespan(grid, MESSAGE_SIZE) == (
                heuristic.schedule(grid, MESSAGE_SIZE).makespan
            )


# ---------------------------------------------------------------------------
# GridCostCache
# ---------------------------------------------------------------------------


class TestGridCostCache:
    def test_matrices_match_grid_queries(self, heterogeneous_grid):
        cache = GridCostCache.build(heterogeneous_grid, 1_000)
        n = heterogeneous_grid.num_clusters
        for i in range(n):
            for j in range(n):
                if i == j:
                    assert cache.gap[i, j] == 0.0
                    assert cache.latency[i, j] == 0.0
                    continue
                assert cache.gap[i, j] == heterogeneous_grid.gap(i, j, 1_000)
                assert cache.latency[i, j] == heterogeneous_grid.latency(i, j)
                assert cache.transfer[i, j] == (
                    cache.gap[i, j] + cache.latency[i, j]
                )
        assert cache.broadcast_list() == heterogeneous_grid.broadcast_times(1_000)

    def test_for_grid_is_shared_and_per_message_size(self, heterogeneous_grid):
        first = GridCostCache.for_grid(heterogeneous_grid, 1_000)
        assert GridCostCache.for_grid(heterogeneous_grid, 1_000) is first
        assert GridCostCache.for_grid(heterogeneous_grid, 2_000) is not first
        assert GridCostCache.build(heterogeneous_grid, 1_000) is not first

    def test_for_grid_evicts_oldest_message_size(self, heterogeneous_grid):
        first = GridCostCache.for_grid(heterogeneous_grid, 1.0)
        for size in range(2, GridCostCache.MAX_SIZES_PER_GRID + 2):
            GridCostCache.for_grid(heterogeneous_grid, float(size))
        # The oldest entry was evicted, so asking again builds a new cache.
        assert GridCostCache.for_grid(heterogeneous_grid, 1.0) is not first

    def test_matrices_are_read_only(self, heterogeneous_grid):
        cache = GridCostCache.for_grid(heterogeneous_grid, 1_000)
        with pytest.raises(ValueError):
            cache.transfer[0, 1] = 0.0

    def test_state_rejects_mismatched_cache(self, heterogeneous_grid, uniform_grid):
        cache = GridCostCache.for_grid(uniform_grid, 1_000)
        with pytest.raises(ValueError, match="different grid"):
            SchedulingState(
                grid=heterogeneous_grid, message_size=1_000, root=0, costs=cache
            )
        with pytest.raises(ValueError, match="different grid"):
            SchedulingState(
                grid=uniform_grid, message_size=2_000, root=0, costs=cache
            )

    def test_min_incoming(self, heterogeneous_grid):
        cache = GridCostCache.for_grid(heterogeneous_grid, 1_000)
        expected = [
            min(
                heterogeneous_grid.transfer_time(i, j, 1_000)
                for i in range(heterogeneous_grid.num_clusters)
                if i != j
            )
            for j in range(heterogeneous_grid.num_clusters)
        ]
        assert cache.min_incoming() == pytest.approx(expected)

    def test_cost_matrices_bulk_matches_per_pair(self):
        grid = random_grid(7, seed=3)
        latency, gap = grid.cost_matrices(MESSAGE_SIZE)
        for i in range(7):
            for j in range(7):
                if i == j:
                    continue
                assert latency[i, j] == grid.latency(i, j)
                assert gap[i, j] == grid.gap(i, j, MESSAGE_SIZE)


# ---------------------------------------------------------------------------
# incremental A/B bookkeeping
# ---------------------------------------------------------------------------


class TestIncrementalSets:
    def test_informed_pending_stay_sorted_through_commits(self):
        grid = random_grid(8, seed=5)
        state = SchedulingState(grid=grid, message_size=MESSAGE_SIZE, root=3)
        while not state.done:
            assert state.informed == sorted(state.ready_time)
            assert state.pending == sorted(state.waiting)
            sender, receiver = state.select_min_completion()
            state.commit(sender, receiver)
        assert state.informed == sorted(state.ready_time)
        assert state.pending == []

    def test_run_heuristics_shares_one_cache(self, heterogeneous_grid):
        cache = GridCostCache.for_grid(heterogeneous_grid, 1_000)
        results = run_heuristics(
            instantiate(("ecef", "flat_tree")), heterogeneous_grid, 1_000, costs=cache
        )
        for schedule in results.values():
            schedule.validate()
        assert set(results) == {"ECEF", "Flat Tree"}


# ---------------------------------------------------------------------------
# batched engine edge cases
# ---------------------------------------------------------------------------


class TestBatchedEngine:
    def test_rejects_mixed_sizes(self):
        caches = [
            GridCostCache.for_grid(random_grid(3, seed=1), MESSAGE_SIZE),
            GridCostCache.for_grid(random_grid(4, seed=2), MESSAGE_SIZE),
        ]
        with pytest.raises(ValueError, match="same size"):
            BatchedGridCosts(caches)

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchedGridCosts([])

    def test_single_cluster_batch(self):
        grid = make_uniform_grid(1)
        stacked = BatchedGridCosts([GridCostCache.for_grid(grid, MESSAGE_SIZE)])
        makespans = batched_makespans(get_heuristic("ecef"), stacked)
        assert makespans.shape == (1,)
        assert makespans[0] == pytest.approx(grid.broadcast_time(0, MESSAGE_SIZE))

    def test_optimal_has_no_batched_kernel(self):
        grid = random_grid(3, seed=9)
        stacked = BatchedGridCosts([GridCostCache.for_grid(grid, MESSAGE_SIZE)])
        assert batched_makespans(get_heuristic("optimal"), stacked) is None

    def test_subclass_with_overridden_build_order_falls_back(self):
        """A subclass may change the selection rule, so it must never
        silently inherit the parent's batched kernel."""
        from repro.core.ecef import ECEF

        class ReversedECEF(ECEF):
            def build_order(self, state):
                while not state.done:
                    state.commit(state.informed[-1], state.pending[-1])

        grid = random_grid(4, seed=17)
        stacked = BatchedGridCosts([GridCostCache.for_grid(grid, MESSAGE_SIZE)])
        assert batched_makespans(ReversedECEF(), stacked) is None

    def test_flat_tree_rejects_duplicate_cluster_order_in_every_engine(self):
        from repro.core.flat_tree import FlatTreeHeuristic

        grid = random_grid(4, seed=13)
        heuristic = FlatTreeHeuristic(cluster_order=[1, 1, 2, 3])
        with pytest.raises(ValueError, match="exactly once"):
            heuristic.schedule(grid, MESSAGE_SIZE)
        with pytest.raises(ValueError, match="exactly once"):
            heuristic.schedule(grid, MESSAGE_SIZE, vectorized=False)
        stacked = BatchedGridCosts([GridCostCache.for_grid(grid, MESSAGE_SIZE)])
        with pytest.raises(ValueError, match="exactly once"):
            batched_makespans(heuristic, stacked)

    def test_flat_tree_custom_order_agrees_across_engines(self):
        from repro.core.flat_tree import FlatTreeHeuristic

        grid = random_grid(5, seed=21)
        heuristic = FlatTreeHeuristic(cluster_order=[4, 2, 3, 1, 0])
        stacked = BatchedGridCosts([GridCostCache.for_grid(grid, MESSAGE_SIZE)])
        batch = batched_makespans(heuristic, stacked)
        assert batch[0] == heuristic.schedule(grid, MESSAGE_SIZE).makespan
