"""Tests for repro.topology.node and repro.topology.cluster."""

from __future__ import annotations

import pytest

from repro.model.plogp import PLogPParameters
from repro.topology.cluster import Cluster
from repro.topology.node import Node


class TestNode:
    def test_coordinator_flag(self):
        assert Node(rank=0, cluster_id=0, local_index=0).is_coordinator
        assert not Node(rank=1, cluster_id=0, local_index=1).is_coordinator

    def test_label_prefers_hostname(self):
        assert Node(rank=3, cluster_id=1, local_index=2, hostname="orsay-2").label() == "orsay-2"
        assert Node(rank=3, cluster_id=1, local_index=2).label() == "c1n2"

    def test_rejects_negative_rank(self):
        with pytest.raises(ValueError):
            Node(rank=-1, cluster_id=0, local_index=0)

    def test_rejects_non_int_fields(self):
        with pytest.raises(TypeError):
            Node(rank=0.5, cluster_id=0, local_index=0)  # type: ignore[arg-type]

    def test_ordering_by_rank(self):
        nodes = [Node(rank=r, cluster_id=0, local_index=r) for r in (3, 1, 2)]
        assert [n.rank for n in sorted(nodes)] == [1, 2, 3]


class TestClusterConstruction:
    def test_requires_some_broadcast_cost_definition(self):
        with pytest.raises(ValueError, match="neither intra_params nor fixed_broadcast_time"):
            Cluster(cluster_id=0, size=4)

    def test_single_node_needs_no_cost(self):
        cluster = Cluster(cluster_id=0, size=1)
        assert cluster.broadcast_time(1_000_000) == 0.0

    def test_default_name(self):
        assert Cluster(cluster_id=3, size=1).name == "cluster3"

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Cluster(cluster_id=0, size=0)

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            Cluster(cluster_id=-1, size=1)

    def test_intra_params_num_procs_forced_to_size(self):
        params = PLogPParameters.from_values(latency=1e-4, gap=1e-3, num_procs=2)
        cluster = Cluster(cluster_id=0, size=10, intra_params=params)
        assert cluster.intra_params.num_procs == 10


class TestClusterBroadcastTime:
    def test_fixed_time_ignores_message_size(self):
        cluster = Cluster(cluster_id=0, size=8, fixed_broadcast_time=0.7)
        assert cluster.broadcast_time(0) == 0.7
        assert cluster.broadcast_time(10_000_000) == 0.7

    def test_predicted_time_grows_with_message_size(self):
        from repro.model.plogp import GapFunction

        params = PLogPParameters(
            latency=1e-4,
            gap=GapFunction.from_bandwidth(overhead=1e-4, bandwidth=1e8),
            num_procs=8,
        )
        cluster = Cluster(cluster_id=0, size=8, intra_params=params)
        assert cluster.broadcast_time(4_000_000) > cluster.broadcast_time(1_000)

    def test_single_machine_cluster_is_free(self):
        cluster = Cluster(cluster_id=0, size=1, fixed_broadcast_time=5.0)
        assert cluster.broadcast_time(1_000_000) == 0.0

    def test_with_fixed_broadcast_time_copy(self):
        cluster = Cluster(cluster_id=2, size=8, fixed_broadcast_time=0.7)
        other = cluster.with_fixed_broadcast_time(1.5)
        assert other.broadcast_time(0) == 1.5
        assert cluster.broadcast_time(0) == 0.7
        assert other.cluster_id == 2 and other.size == 8

    def test_rejects_negative_fixed_time(self):
        with pytest.raises(ValueError):
            Cluster(cluster_id=0, size=2, fixed_broadcast_time=-1.0)


class TestClusterNodes:
    def test_build_nodes_assigns_contiguous_ranks(self):
        cluster = Cluster(cluster_id=1, size=3, fixed_broadcast_time=0.1)
        nodes = cluster.build_nodes(first_rank=10)
        assert [n.rank for n in nodes] == [10, 11, 12]
        assert [n.local_index for n in nodes] == [0, 1, 2]
        assert all(n.cluster_id == 1 for n in nodes)

    def test_coordinator_is_first_node(self):
        cluster = Cluster(cluster_id=1, size=3, fixed_broadcast_time=0.1)
        cluster.build_nodes(first_rank=5)
        assert cluster.coordinator.rank == 5

    def test_coordinator_requires_built_nodes(self):
        cluster = Cluster(cluster_id=1, size=3, fixed_broadcast_time=0.1)
        with pytest.raises(RuntimeError):
            _ = cluster.coordinator

    def test_build_nodes_rejects_negative_first_rank(self):
        cluster = Cluster(cluster_id=1, size=3, fixed_broadcast_time=0.1)
        with pytest.raises(ValueError):
            cluster.build_nodes(first_rank=-1)
