"""Tests for repro.collectives.trees."""

from __future__ import annotations

import math

import pytest

from repro.collectives.trees import (
    BroadcastTree,
    binary_tree,
    binomial_tree,
    chain_tree,
    flat_tree,
    make_tree,
)


class TestTreeValidation:
    def test_every_participant_reached_exactly_once(self):
        tree = BroadcastTree(size=4, children=((1, 2), (3,), (), ()))
        assert tree.parent_of(3) == 1

    def test_rejects_duplicate_receiver(self):
        with pytest.raises(ValueError, match="more than once"):
            BroadcastTree(size=3, children=((1, 2), (2,), ()))

    def test_rejects_missing_receiver(self):
        with pytest.raises(ValueError, match="never receive"):
            BroadcastTree(size=3, children=((1,), (), ()))

    def test_rejects_root_as_receiver(self):
        with pytest.raises(ValueError, match="root"):
            BroadcastTree(size=2, children=((1,), (0,)))

    def test_rejects_self_send(self):
        with pytest.raises(ValueError, match="itself"):
            BroadcastTree(size=2, children=((0, 1), ()))

    def test_rejects_out_of_range_child(self):
        with pytest.raises(ValueError, match="out of range"):
            BroadcastTree(size=2, children=((5,), ()))

    def test_rejects_wrong_children_length(self):
        with pytest.raises(ValueError):
            BroadcastTree(size=3, children=((1, 2),))


class TestConstructions:
    @pytest.mark.parametrize("size", [1, 2, 3, 7, 8, 16, 31, 88])
    @pytest.mark.parametrize("name", ["binomial", "flat", "chain", "binary"])
    def test_all_shapes_are_valid_for_any_size(self, name, size):
        tree = make_tree(name, size)
        assert tree.size == size
        assert len(tree.edges()) == size - 1

    def test_binomial_root_sends_log_times(self):
        for size in (2, 5, 8, 16, 31):
            tree = binomial_tree(size)
            assert len(tree.children[0]) == math.ceil(math.log2(size))

    def test_binomial_depth_is_logarithmic(self):
        # The depth of participant p equals the number of set bits in p, so the
        # tree depth is floor(log2(size)) hops, not the number of rounds.
        assert binomial_tree(16).depth() == 4
        assert binomial_tree(17).depth() == 4
        assert binomial_tree(32).depth() == 5

    def test_flat_tree_structure(self):
        tree = flat_tree(5)
        assert tree.children[0] == (1, 2, 3, 4)
        assert tree.depth() == 1
        assert tree.max_fanout() == 4

    def test_chain_structure(self):
        tree = chain_tree(4)
        assert tree.depth() == 3
        assert tree.max_fanout() == 1
        assert tree.parent_of(3) == 2

    def test_binary_tree_fanout(self):
        tree = binary_tree(7)
        assert tree.max_fanout() == 2
        assert tree.depth() == 2

    def test_unknown_tree_name(self):
        with pytest.raises(ValueError, match="unknown tree"):
            make_tree("fibonacci", 4)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            binomial_tree(0)


class TestQueries:
    def test_parent_of_root_is_none(self):
        assert binomial_tree(8).parent_of(0) is None

    def test_parent_of_out_of_range(self):
        with pytest.raises(ValueError):
            binomial_tree(8).parent_of(8)

    def test_edges_ordered_by_sender_send_order(self):
        tree = binomial_tree(4)
        assert tree.edges()[0] == (0, 1)

    def test_networkx_export_is_arborescence(self):
        import networkx as nx

        graph = binomial_tree(16).to_networkx()
        assert graph.number_of_nodes() == 16
        assert graph.number_of_edges() == 15
        assert nx.is_arborescence(graph)
