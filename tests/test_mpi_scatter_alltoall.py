"""Tests for repro.mpi.scatter and repro.mpi.alltoall."""

from __future__ import annotations

import pytest

from repro.core.ecef import ECEFLookahead
from repro.mpi.alltoall import direct_alltoall_program, grid_aware_alltoall_program
from repro.mpi.scatter import flat_scatter_program, grid_aware_scatter_program
from repro.simulator.execution import execute_program
from repro.simulator.network import SimulatedNetwork


class TestScatterPrograms:
    def test_flat_scatter_one_message_per_rank(self, heterogeneous_grid):
        program = flat_scatter_program(heterogeneous_grid, 1_000, root_rank=0)
        assert program.total_messages() == heterogeneous_grid.num_nodes - 1
        assert program.receivers() == set(range(1, heterogeneous_grid.num_nodes))

    def test_grid_aware_scatter_aggregates_per_cluster(self, heterogeneous_grid):
        program, schedule = grid_aware_scatter_program(
            heterogeneous_grid, 1_000, heuristic=ECEFLookahead.bhat()
        )
        root_rank = heterogeneous_grid.coordinator_rank(0)
        inter = [i for i in program.sends_of(root_rank) if i.tag == "scatter-aggregate"]
        assert len(inter) == heterogeneous_grid.num_clusters - 1
        # Each aggregated message carries cluster_size blocks.
        assert all(i.message_size == 4 * 1_000 for i in inter)
        assert schedule.heuristic_name.startswith("scatter[")

    def test_grid_aware_scatter_everyone_gets_a_block(self, heterogeneous_grid):
        program, _ = grid_aware_scatter_program(
            heterogeneous_grid, 1_000, heuristic=ECEFLookahead.bhat()
        )
        receivers = program.receivers()
        assert receivers == set(range(1, heterogeneous_grid.num_nodes))

    def test_grid_aware_beats_flat_on_grid5000_for_small_chunks(self, grid5000):
        """Aggregation pays off when the per-message latency dominates."""
        network = SimulatedNetwork(grid5000)
        aware_program, _ = grid_aware_scatter_program(
            grid5000, 4_096, heuristic=ECEFLookahead.bhat()
        )
        aware = execute_program(network, aware_program)
        flat = execute_program(
            network, flat_scatter_program(grid5000, 4_096, root_rank=grid5000.coordinator_rank(0))
        )
        assert aware.makespan < flat.makespan

    def test_rejects_negative_chunk(self, heterogeneous_grid):
        with pytest.raises(ValueError):
            flat_scatter_program(heterogeneous_grid, -1)


class TestAllToAllPrograms:
    def test_direct_alltoall_message_count(self, heterogeneous_grid):
        program = direct_alltoall_program(heterogeneous_grid, 100)
        n = heterogeneous_grid.num_nodes
        assert program.total_messages() == n * (n - 1)

    def test_grid_aware_alltoall_wan_messages_one_per_cluster_pair(self, heterogeneous_grid):
        program = grid_aware_alltoall_program(heterogeneous_grid, 100)
        exchange = [
            i
            for sends in program.sends.values()
            for i in sends
            if i.tag == "a2a-exchange"
        ]
        clusters = heterogeneous_grid.num_clusters
        assert len(exchange) == clusters * (clusters - 1)

    def test_grid_aware_alltoall_conserves_volume_per_destination_cluster(
        self, heterogeneous_grid
    ):
        chunk = 100
        program = grid_aware_alltoall_program(heterogeneous_grid, chunk)
        # Every rank ultimately needs (n-1) * chunk bytes of foreign data; the
        # redistribution message from its coordinator must carry the remote part.
        coordinator = heterogeneous_grid.coordinator_rank(1)
        scatter = [
            i for i in program.sends_of(coordinator) if i.tag == "a2a-scatter"
        ]
        remote_ranks = heterogeneous_grid.num_nodes - heterogeneous_grid.cluster(1).size
        assert all(i.message_size == remote_ranks * chunk for i in scatter)

    def test_both_programs_execute(self, heterogeneous_grid):
        network = SimulatedNetwork(heterogeneous_grid)
        for program in (
            direct_alltoall_program(heterogeneous_grid, 100),
            grid_aware_alltoall_program(heterogeneous_grid, 100),
        ):
            result = execute_program(
                network, program, initially_active=range(heterogeneous_grid.num_nodes)
            )
            assert result.makespan > 0

    def test_rejects_negative_chunk(self, heterogeneous_grid):
        with pytest.raises(ValueError):
            grid_aware_alltoall_program(heterogeneous_grid, -5)
