"""Tests for repro.experiments.simulation_study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import SimulationStudyConfig
from repro.experiments.simulation_study import run_simulation_study


@pytest.fixture(scope="module")
def small_study():
    """A small but statistically meaningful study reused by several tests."""
    config = SimulationStudyConfig(
        cluster_counts=(2, 4, 8), iterations=40, seed=123
    )
    return run_simulation_study(config)


class TestStructure:
    def test_result_shapes(self, small_study):
        assert small_study.makespans.shape == (3, 7, 40)
        assert len(small_study.heuristic_names) == 7
        assert small_study.cluster_counts == [2, 4, 8]

    def test_all_makespans_positive_and_finite(self, small_study):
        assert np.all(small_study.makespans > 0)
        assert np.all(np.isfinite(small_study.makespans))

    def test_mean_and_std_shapes(self, small_study):
        assert small_study.mean_completion_times().shape == (3, 7)
        assert small_study.std_completion_times().shape == (3, 7)

    def test_series_lookup(self, small_study):
        series = small_study.series("Flat Tree")
        assert len(series) == 3
        with pytest.raises(ValueError):
            small_study.series("Unknown")

    def test_as_table_rows(self, small_study):
        rows = small_study.as_table()
        assert len(rows) == 3
        assert rows[0]["clusters"] == 2.0
        assert set(rows[0]) == {"clusters", *small_study.heuristic_names}


class TestBatchedDriver:
    """The batched/chunked/parallel drivers must all agree bit-for-bit."""

    def test_matches_naive_per_grid_loop(self):
        from repro.core.registry import instantiate
        from repro.topology.generators import RandomGridGenerator
        from repro.utils.rng import RandomStream

        config = SimulationStudyConfig(cluster_counts=(2, 6), iterations=12, seed=31)
        study = run_simulation_study(config)

        heuristics = instantiate(config.heuristics)
        generator = RandomGridGenerator(config.ranges)
        parent = RandomStream(seed=config.seed)
        expected = np.empty_like(study.makespans)
        for count_index, num_clusters in enumerate(config.cluster_counts):
            for iteration in range(config.iterations):
                grid = generator.generate(num_clusters, parent.spawn())
                for heuristic_index, heuristic in enumerate(heuristics):
                    expected[count_index, heuristic_index, iteration] = (
                        heuristic.schedule(
                            grid, config.message_size, root=config.root_cluster
                        ).makespan
                    )
        assert np.array_equal(study.makespans, expected)

    def test_chunking_does_not_change_results(self, monkeypatch):
        import repro.experiments.simulation_study as module

        config = SimulationStudyConfig(cluster_counts=(5,), iterations=11, seed=3)
        whole = run_simulation_study(config)
        # Force ~3-iteration chunks so several batches cover one count.
        monkeypatch.setattr(module, "MAX_BATCH_ELEMENTS", 5 * 5 * 3)
        chunked = run_simulation_study(config)
        assert np.array_equal(whole.makespans, chunked.makespans)

    def test_workers_do_not_change_results(self):
        config = SimulationStudyConfig(cluster_counts=(3, 5), iterations=8, seed=17)
        serial = run_simulation_study(config, workers=0)
        parallel = run_simulation_study(config, workers=2)
        assert np.array_equal(serial.makespans, parallel.makespans)

    def test_heuristic_without_batched_kernel_falls_back(self):
        config = SimulationStudyConfig(
            cluster_counts=(3, 4),
            iterations=4,
            heuristics=("ecef", "optimal"),
            seed=5,
        )
        study = run_simulation_study(config)
        ecef, optimal = study.makespans[:, 0, :], study.makespans[:, 1, :]
        assert np.all(np.isfinite(study.makespans))
        # The exhaustive search is a true lower bound for ECEF.
        assert np.all(optimal <= ecef + 1e-12)


class TestReproducibility:
    def test_same_seed_same_results(self):
        config = SimulationStudyConfig(cluster_counts=(3,), iterations=10, seed=7)
        a = run_simulation_study(config)
        b = run_simulation_study(config)
        assert np.array_equal(a.makespans, b.makespans)

    def test_different_seed_different_results(self):
        base = SimulationStudyConfig(cluster_counts=(3,), iterations=10, seed=7)
        other = SimulationStudyConfig(cluster_counts=(3,), iterations=10, seed=8)
        assert not np.array_equal(
            run_simulation_study(base).makespans, run_simulation_study(other).makespans
        )


class TestPaperShapes:
    """Statistical checks of the Figure 1 / Figure 2 qualitative claims."""

    def test_flat_tree_is_worst_for_larger_grids(self, small_study):
        """The Flat Tree falls behind once the cluster count grows (Figure 1);
        for very small grids it can still be competitive, so only the largest
        swept count is checked."""
        means = small_study.mean_completion_times()
        flat_index = small_study.heuristic_names.index("Flat Tree")
        assert means[-1, flat_index] == pytest.approx(means[-1].max())

    def test_flat_tree_grows_fastest_with_cluster_count(self, small_study):
        flat = np.array(small_study.series("Flat Tree"))
        ecef = np.array(small_study.series("ECEF"))
        assert (flat[-1] - flat[0]) > (ecef[-1] - ecef[0])

    def test_ecef_beats_fef_on_average(self, small_study):
        means = small_study.mean_completion_times()
        fef = small_study.heuristic_names.index("FEF")
        ecef = small_study.heuristic_names.index("ECEF")
        assert means[-1, ecef] < means[-1, fef]

    def test_global_minimum_is_lower_bound(self, small_study):
        minima = small_study.global_minima()
        assert np.all(minima[:, None, :] <= small_study.makespans + 1e-12)

    def test_hit_counts_sum_at_least_iterations(self, small_study):
        """Every iteration has at least one hit (the minimum itself)."""
        hits = small_study.hit_counts()
        assert np.all(hits.sum(axis=1) >= small_study.config.iterations)

    def test_hit_rates_between_zero_and_one(self, small_study):
        rates = small_study.hit_rates()
        assert np.all(rates >= 0.0) and np.all(rates <= 1.0)

    def test_two_cluster_grids_all_heuristics_tie(self, small_study):
        """With 2 clusters there is only one possible schedule."""
        row = small_study.cluster_counts.index(2)
        spread = small_study.makespans[row].max(axis=0) - small_study.makespans[row].min(axis=0)
        assert np.all(spread < 1e-12)
