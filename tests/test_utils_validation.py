"""Tests for repro.utils.validation."""

from __future__ import annotations

import math

import pytest

from repro.utils import validation


class TestCheckType:
    def test_accepts_matching_type(self):
        assert validation.check_type(3, int, "x") == 3

    def test_accepts_tuple_of_types(self):
        assert validation.check_type(3.5, (int, float), "x") == 3.5

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be of type int"):
            validation.check_type("3", int, "x")

    def test_error_lists_alternatives(self):
        with pytest.raises(TypeError, match="int or float"):
            validation.check_type("3", (int, float), "x")


class TestCheckFinite:
    def test_accepts_int_and_float(self):
        assert validation.check_finite(2, "x") == 2.0
        assert validation.check_finite(2.5, "x") == 2.5

    def test_returns_float(self):
        assert isinstance(validation.check_finite(2, "x"), float)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            validation.check_finite(math.nan, "x")

    def test_rejects_infinity(self):
        with pytest.raises(ValueError, match="finite"):
            validation.check_finite(math.inf, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            validation.check_finite(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            validation.check_finite("1.0", "x")


class TestCheckNonNegativeAndPositive:
    def test_non_negative_accepts_zero(self):
        assert validation.check_non_negative(0.0, "x") == 0.0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            validation.check_non_negative(-1e-9, "x")

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="strictly positive"):
            validation.check_positive(0.0, "x")

    def test_positive_accepts_small_values(self):
        assert validation.check_positive(1e-12, "x") == 1e-12


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert validation.check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2.0])
    def test_rejects_outside_unit_interval(self, value):
        with pytest.raises(ValueError):
            validation.check_probability(value, "p")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert validation.check_in_range(1.0, 1.0, 2.0, "x") == 1.0
        assert validation.check_in_range(2.0, 1.0, 2.0, "x") == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            validation.check_in_range(1.0, 1.0, 2.0, "x", inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match=r"\[1.0, 2.0\]"):
            validation.check_in_range(3.0, 1.0, 2.0, "x")


class TestCheckIndex:
    def test_accepts_valid_index(self):
        assert validation.check_index(2, 5, "i") == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validation.check_index(-1, 5, "i")

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            validation.check_index(5, 5, "i")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            validation.check_index(True, 5, "i")


class TestCheckUnique:
    def test_accepts_unique_values(self):
        assert validation.check_unique([1, 2, 3], "xs") == [1, 2, 3]

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            validation.check_unique([1, 2, 1], "xs")

    def test_empty_is_fine(self):
        assert validation.check_unique([], "xs") == []
