"""Tests for repro.experiments.hit_rate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import SimulationStudyConfig
from repro.experiments.hit_rate import hit_rate_from_study, run_hit_rate_study
from repro.experiments.simulation_study import run_simulation_study


@pytest.fixture(scope="module")
def hit_rate_result():
    config = SimulationStudyConfig(
        cluster_counts=(4, 8),
        iterations=30,
        heuristics=("ecef", "ecef_la", "ecef_lat_max", "ecef_lat_min"),
        seed=99,
    )
    return run_hit_rate_study(config)


class TestHitRateResult:
    def test_shapes(self, hit_rate_result):
        assert hit_rate_result.hit_counts.shape == (2, 4)
        assert hit_rate_result.iterations == 30

    def test_counts_bounded_by_iterations(self, hit_rate_result):
        assert np.all(hit_rate_result.hit_counts >= 0)
        assert np.all(hit_rate_result.hit_counts <= 30)

    def test_rates_are_normalised_counts(self, hit_rate_result):
        assert np.allclose(
            hit_rate_result.hit_rates(), hit_rate_result.hit_counts / 30.0
        )

    def test_every_iteration_has_a_winner(self, hit_rate_result):
        assert np.all(hit_rate_result.hit_counts.sum(axis=1) >= 30)

    def test_series_lookup(self, hit_rate_result):
        series = hit_rate_result.series("ECEF")
        assert len(series) == 2
        assert all(isinstance(v, int) for v in series)
        with pytest.raises(ValueError):
            hit_rate_result.series("nope")

    def test_trend_slope_is_finite(self, hit_rate_result):
        for name in hit_rate_result.heuristic_names:
            assert np.isfinite(hit_rate_result.trend_slope(name))

    def test_as_table(self, hit_rate_result):
        rows = hit_rate_result.as_table()
        assert len(rows) == 2
        assert rows[0]["clusters"] == 4.0

    def test_from_existing_study_matches(self):
        config = SimulationStudyConfig(
            cluster_counts=(4,), iterations=10, heuristics=("ecef", "ecef_la"), seed=5
        )
        study = run_simulation_study(config)
        direct = run_hit_rate_study(config)
        derived = hit_rate_from_study(study)
        assert np.array_equal(direct.hit_counts, derived.hit_counts)


class TestDegenerateCases:
    def test_single_heuristic_always_hits(self):
        config = SimulationStudyConfig(
            cluster_counts=(5,), iterations=10, heuristics=("ecef",), seed=1
        )
        result = run_hit_rate_study(config)
        assert np.all(result.hit_counts == 10)

    def test_identical_heuristics_tie_everywhere(self):
        config = SimulationStudyConfig(
            cluster_counts=(5,), iterations=10, heuristics=("ecef", "ecef"), seed=1
        )
        result = run_hit_rate_study(config)
        assert np.all(result.hit_counts == 10)
