"""Tests for repro.mpi.bcast (grid-aware and binomial broadcast programs)."""

from __future__ import annotations

import pytest

from repro.core.ecef import ECEF
from repro.core.flat_tree import FlatTreeHeuristic
from repro.mpi.bcast import (
    binomial_bcast_program,
    grid_aware_bcast_program,
    predict_bcast_makespan,
)
from repro.simulator.execution import execute_program
from repro.simulator.network import SimulatedNetwork


class TestGridAwareBcastProgram:
    def test_program_is_valid_broadcast(self, heterogeneous_grid):
        schedule = ECEF().schedule(heterogeneous_grid, 1_000)
        program = grid_aware_bcast_program(heterogeneous_grid, schedule, 1_000)
        program.validate_broadcast()
        assert program.root == heterogeneous_grid.coordinator_rank(0)

    def test_every_rank_receives_once(self, grid5000):
        schedule = ECEF().schedule(grid5000, 1_048_576)
        program = grid_aware_bcast_program(grid5000, schedule, 1_048_576)
        assert program.total_messages() == grid5000.num_nodes - 1

    def test_coordinators_send_inter_cluster_before_local(self, heterogeneous_grid):
        schedule = FlatTreeHeuristic().schedule(heterogeneous_grid, 1_000)
        program = grid_aware_bcast_program(heterogeneous_grid, schedule, 1_000)
        root_rank = heterogeneous_grid.coordinator_rank(0)
        tags = [i.tag for i in program.sends_of(root_rank)]
        inter = [index for index, tag in enumerate(tags) if tag == "inter-cluster"]
        local = [index for index, tag in enumerate(tags) if tag.startswith("local")]
        assert inter and local
        assert max(inter) < min(local)

    def test_local_first_flag_reverses_phases(self, heterogeneous_grid):
        schedule = FlatTreeHeuristic().schedule(heterogeneous_grid, 1_000)
        program = grid_aware_bcast_program(
            heterogeneous_grid, schedule, 1_000, local_first=True
        )
        root_rank = heterogeneous_grid.coordinator_rank(0)
        tags = [i.tag for i in program.sends_of(root_rank)]
        assert tags[0].startswith("local")

    def test_non_binomial_local_tree(self, heterogeneous_grid):
        schedule = ECEF().schedule(heterogeneous_grid, 1_000)
        program = grid_aware_bcast_program(
            heterogeneous_grid, schedule, 1_000, local_tree="flat"
        )
        root_rank = heterogeneous_grid.coordinator_rank(0)
        local_sends = [i for i in program.sends_of(root_rank) if i.tag.startswith("local")]
        # Flat local tree: the coordinator sends to all 3 other local machines.
        assert len(local_sends) == 3

    def test_mismatched_schedule_rejected(self, heterogeneous_grid, uniform_grid):
        schedule = ECEF().schedule(uniform_grid, 1_000)
        with pytest.raises(ValueError):
            grid_aware_bcast_program(heterogeneous_grid, schedule, 1_000)

    def test_executed_makespan_close_to_predicted(self, grid5000):
        """Measured (noise-free simulator) time matches the model prediction
        within a few percent for every heuristic — the paper's §7 observation."""
        network = SimulatedNetwork(grid5000)
        for heuristic in (ECEF(), FlatTreeHeuristic()):
            schedule = heuristic.schedule(grid5000, 4_194_304)
            program = grid_aware_bcast_program(grid5000, schedule, 4_194_304)
            result = execute_program(network, program)
            assert result.makespan == pytest.approx(schedule.makespan, rel=0.15)

    def test_predict_bcast_makespan_is_schedule_makespan(self, heterogeneous_grid):
        schedule = ECEF().schedule(heterogeneous_grid, 1_000)
        assert predict_bcast_makespan(heterogeneous_grid, schedule) == schedule.makespan


class TestBinomialBcastProgram:
    def test_valid_broadcast_over_all_ranks(self, grid5000):
        program = binomial_bcast_program(grid5000, 1_048_576)
        program.validate_broadcast()
        assert program.total_messages() == grid5000.num_nodes - 1

    def test_root_rotation(self, heterogeneous_grid):
        program = binomial_bcast_program(heterogeneous_grid, 1_000, root_rank=5)
        program.validate_broadcast()
        assert program.root == 5

    def test_rejects_bad_root(self, heterogeneous_grid):
        with pytest.raises(ValueError):
            binomial_bcast_program(heterogeneous_grid, 1_000, root_rank=999)

    def test_binomial_slower_than_grid_aware_on_grid5000(self, grid5000):
        """The 'Default LAM' baseline loses to the scheduled hierarchical bcast
        (Figure 6's message), because it crosses the WAN more often."""
        network = SimulatedNetwork(grid5000)
        schedule = ECEF().schedule(grid5000, 4_194_304)
        aware = execute_program(
            network, grid_aware_bcast_program(grid5000, schedule, 4_194_304)
        )
        naive = execute_program(network, binomial_bcast_program(grid5000, 4_194_304))
        assert naive.makespan > aware.makespan

    def test_binomial_beats_flat_tree_on_grid5000(self, grid5000):
        """...but still beats the Flat Tree, as in Figure 6."""
        network = SimulatedNetwork(grid5000)
        schedule = FlatTreeHeuristic().schedule(grid5000, 4_194_304)
        flat = execute_program(
            network, grid_aware_bcast_program(grid5000, schedule, 4_194_304)
        )
        naive = execute_program(network, binomial_bcast_program(grid5000, 4_194_304))
        assert naive.makespan < flat.makespan
