#!/usr/bin/env python
"""Execute every Python code block in README.md and docs/*.md.

The documentation's promise is that its quickstart snippets run as printed;
this script keeps that promise mechanically checkable.  Every fenced
```` ```python ```` block is executed in its own namespace (fenced ``bash`` /
``console`` blocks are shell examples and are skipped), and
``examples/quickstart.py`` — the longer tour the README points at — is run
as a subprocess.  CI's ``docs`` job fails if any block raises.

Run from the repository root::

    PYTHONPATH=src python docs/check_docs.py
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documents whose ```python blocks must execute.
DOCUMENTS = (
    "README.md",
    "docs/architecture.md",
    "docs/reproducing.md",
    "docs/distributed.md",
    "docs/service.md",
    "docs/gossip.md",
    "docs/static_analysis.md",
)

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path) -> list[str]:
    return [match.group(1) for match in _FENCE.finditer(path.read_text())]


def main() -> int:
    failures = 0
    for name in DOCUMENTS:
        path = REPO_ROOT / name
        blocks = python_blocks(path)
        for index, block in enumerate(blocks):
            label = f"{name} block {index + 1}/{len(blocks)}"
            try:
                exec(compile(block, f"<{label}>", "exec"), {"__name__": "__docs__"})
            except Exception as exc:  # noqa: BLE001 - report and keep going
                failures += 1
                print(f"FAIL  {label}: {exc!r}", file=sys.stderr)
            else:
                print(f"  ok  {label}")
        if not blocks:
            print(f"  --  {name}: no python blocks")

    quickstart = REPO_ROOT / "examples" / "quickstart.py"
    result = subprocess.run(
        [sys.executable, str(quickstart)], cwd=REPO_ROOT, capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        failures += 1
        print(f"FAIL  examples/quickstart.py:\n{result.stderr}", file=sys.stderr)
    else:
        print("  ok  examples/quickstart.py")

    if failures:
        print(f"\n{failures} documentation block(s) failed.", file=sys.stderr)
        return 1
    print("\nAll documentation code blocks execute.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
