"""Gossip runs as :class:`~repro.simulator.program.CommunicationProgram`\\ s.

:func:`gossip_program` replays a churn-free gossip run (executed by the round
engine) into the simulator's send-list representation, so small gossip
instances flow through the existing scalar and batched simulator lanes
unchanged — same pLogP timing, same traces, same noise machinery as the
paper's tree broadcasts.  The program is a faithful transcript of the
engine's payload traffic: each rank's send list is its round-by-round sends,
tagged ``round-<k>``, in round-major slot order.

Two deliberate scope limits:

* **Churn-free only.**  A :class:`CommunicationProgram` has no notion of a
  rank disappearing mid-run; specs with an active churn schedule are
  rejected (the round engines handle churn natively).
* **Payload messages only.**  ``pushpull``'s empty pull *requests* come from
  uninformed ranks, which the activation-based executor cannot represent as
  senders; the program carries the payload-bearing traffic (pushes, flood
  and tree sends, EpTO relays, pull *replies*, tagged ``round-<k>/pull``).
  ``GossipRunResult.total_messages`` counts requests too, so for
  ``pushpull`` the program's message count is the engine total minus the
  request traffic; for every other protocol the counts match exactly.
"""

from __future__ import annotations

import numpy as np

from repro.gossip.engine import GossipRunResult, _round_targets, run_gossip
from repro.gossip.spec import GossipSpec
from repro.simulator.program import CommunicationProgram, SendInstruction
from repro.utils.validation import check_non_negative


def gossip_program(
    spec: GossipSpec,
    message_size: float,
    *,
    result: GossipRunResult | None = None,
) -> CommunicationProgram:
    """Transcribe a churn-free gossip run into a communication program.

    Parameters
    ----------
    spec:
        The run to transcribe.  ``spec.churn`` must be ``None`` or inactive.
    message_size:
        Payload size in bytes, applied to every send.
    result:
        Optional pre-computed outcome of ``run_gossip(spec)``; passed by
        callers that already ran the engine (the transcription re-runs it
        otherwise).  It must belong to the same spec.

    Returns
    -------
    CommunicationProgram
        One send list per rank, in round-major slot order.  Intended for the
        small instances the scalar/batched lanes are built for — a
        million-node flood transcript would be the traffic itself.
    """
    check_non_negative(message_size, "message_size")
    if spec.churn is not None and spec.churn.active:
        raise ValueError(
            "gossip_program only transcribes churn-free specs; "
            "use run_gossip for churned networks"
        )
    if result is None:
        result = run_gossip(spec)
    elif result.spec != spec:
        raise ValueError("result was produced by a different spec")

    n = spec.num_nodes
    protocol = spec.protocol
    informed_round = result.informed_round
    ttl = spec.effective_ttl if protocol == "epto" else 0
    sends: dict[int, list[SendInstruction]] = {}

    def emit(sender: int, destination: int, tag: str) -> None:
        sends.setdefault(sender, []).append(
            SendInstruction(destination=destination, message_size=message_size, tag=tag)
        )

    for round_index in range(result.rounds_executed):
        informed = (informed_round >= 0) & (informed_round <= round_index)
        tag = f"round-{round_index}"
        if protocol == "flood":
            for sender in np.flatnonzero(informed_round == round_index):
                for destination in range(n):
                    if destination != sender:
                        emit(int(sender), destination, tag)
            continue
        if protocol == "tree":
            pow2 = 1 << min(round_index, 62)
            offsets = (np.arange(n) - spec.root) % n
            mask = informed & (offsets < pow2) & (offsets + pow2 < n)
            for sender in np.flatnonzero(mask):
                destination = int((offsets[sender] + pow2 + spec.root) % n)
                emit(int(sender), destination, tag)
            continue
        targets = _round_targets(spec, round_index)
        if protocol == "epto":
            senders = informed & (informed_round + ttl > round_index)
        else:
            senders = informed
        for sender in np.flatnonzero(senders):
            for slot in range(spec.fanout):
                emit(int(sender), int(targets[sender, slot]), tag)
        if protocol == "pushpull":
            for puller in np.flatnonzero(~informed):
                for slot in range(spec.fanout):
                    target = int(targets[puller, slot])
                    if informed[target]:
                        emit(target, int(puller), f"{tag}/pull")

    return CommunicationProgram(
        num_ranks=n,
        root=spec.root,
        sends=sends,
        name=f"gossip-{protocol}[n={n},fanout={spec.fanout},seed={spec.seed}]",
    )
