"""The gossip round engines: vectorized flat-array hot loop + scalar reference.

Round-based epidemic protocols advance in synchronous rounds: every node
active in round ``r`` injects its messages, and every message is processed by
its receiver at the start of round ``r + 1``.  That structure is what makes a
million-node network tractable — all per-node state (informed round, TTL
budget, alive interval) lives in flat NumPy arrays, and one round is a
handful of vectorized passes over them, exactly the state-row layout the
batched simulator (PR 2/3) uses for per-rank message state.

Two engines share one contract:

* :func:`run_gossip` with ``engine="vectorized"`` (default) — the flat-array
  engine; a 10⁶-node random-fanout broadcast completes in a few seconds.
* ``engine="scalar"`` — the per-node reference: plain Python loops over the
  same per-round draws, kept as ground truth (``tests/test_gossip.py``
  asserts bit-identical results on every protocol, churn on and off).

**Determinism contract.**  Every round's fanout targets are drawn in one bulk
call from ``derive_seed(seed, "gossip/targets", protocol, round)`` — for
*all* nodes, whether or not they send that round — so the draw stream never
depends on the informed set's evolution, on the engine, or on how a study
chunks its runs.  Churn schedules and per-round noise factors come from their
own derived seeds the same way.  Both engines make their stop decision
through one shared helper on plain integer counts, so they execute exactly
the same rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gossip.spec import GossipSpec, churn_schedule
from repro.model.plogp import GapFunction, PLogPParameters
from repro.utils.rng import derive_seed

#: Valid ``engine=`` values of :func:`run_gossip`.
ENGINES = ("vectorized", "scalar")

#: Default wide-area link model for gossip timing: 1.5 ms latency and an
#: affine gap (60 µs software overhead + 1 Gbit/s).  Gossip runs over
#: commodity internet paths rather than the paper's Grid'5000 interconnect,
#: so the default is deliberately WAN-flavoured; studies pass their own
#: :class:`~repro.model.plogp.PLogPParameters` to model anything else.
DEFAULT_GOSSIP_PARAMS = PLogPParameters(
    latency=0.0015,
    gap=GapFunction.from_bandwidth(overhead=60e-6, bandwidth=125_000_000.0),
)


def gossip_round_time(
    spec: GossipSpec,
    message_size: float,
    params: PLogPParameters = DEFAULT_GOSSIP_PARAMS,
) -> float:
    """The noise-free pLogP duration of one gossip round.

    A round is one latency plus the sender occupancy of the messages a busy
    node injects (``fanout`` gaps for the random-fanout protocols, ``n - 1``
    for flood, one for the binomial tree) — the same ``L + k * g(m)`` shape
    the scheduling kernel uses for a cluster's local sends.
    """
    return params.latency + spec.sends_per_sender * params.gap(message_size)


def _round_targets(spec: GossipSpec, round_index: int) -> np.ndarray:
    """The ``(num_nodes, fanout)`` peer draw of one round, self-excluded.

    Drawn for every node in one bulk call from a seed keyed on
    ``(seed, protocol, round)`` — a node's row is its targets *if* it sends
    this round; unused rows cost nothing but keep the stream independent of
    the infection state, which is what makes the scalar and vectorized
    engines (and any study chunking) bit-identical.  Targets are sampled
    with replacement, as the epidemic literature assumes; the raw draw is
    over ``n - 1`` values and shifted past the drawing node, so a node never
    picks itself.
    """
    n = spec.num_nodes
    rng = np.random.default_rng(
        derive_seed(spec.seed, "gossip/targets", spec.protocol, round_index)
    )
    raw = rng.integers(0, n - 1, size=(n, spec.fanout))
    raw += raw >= np.arange(n)[:, None]
    return raw


def _should_stop(
    protocol: str,
    round_index: int,
    num_nodes: int,
    num_senders: int,
    num_uninformed_reachable: int,
) -> bool:
    """Whether round ``round_index`` has nothing left to do.

    One shared decision for both engines, on plain integer counts, so they
    can never diverge on *which* rounds execute:

    * a one-node network is delivered before any round;
    * ``tree`` runs its full ``ceil(log2 n)`` binomial ladder (offsets of
      ``2^r >= n`` can never land in range again);
    * ``flood`` and ``epto`` stop when no active sender remains — flood
      senders are only ever freshly informed nodes, and an EpTO ball with no
      TTL budget left anywhere is dead (EpTO keeps relaying after full
      delivery; that residual traffic is part of the protocol's cost);
    * ``push``/``pushpull`` stop when no sender remains or when every node
      that could still be alive in a future round is informed — the epidemic
      has delivered and further rounds would only add idle traffic.
    """
    if num_nodes <= 1:
        return True
    if protocol == "tree":
        return (1 << min(round_index, 62)) >= num_nodes
    if protocol in ("flood", "epto"):
        return num_senders == 0
    return num_senders == 0 or num_uninformed_reachable == 0


@dataclass
class GossipRunResult:
    """Integer outcome of one gossip run, engine-independent by contract.

    The engines produce only integer state — who was informed in which
    round, how many messages flew per round, the churn schedule they ran
    against — and every float (makespan, delivery time) is derived here
    through one shared code path, so engine bit-identity reduces to integer
    equality.

    Attributes
    ----------
    spec:
        The spec that produced the run.
    informed_round:
        Per-node round of first infection (``int64``; ``-1`` = never
        informed; the root holds ``0``).
    messages_per_round:
        Messages injected in each executed round (pull requests and their
        replies both count — traffic is traffic).
    rounds_executed:
        Number of executed rounds (``len(messages_per_round)``).
    join_round / leave_round:
        The churn schedule the run used: node ``i`` was alive in rounds
        ``[join_round[i], leave_round[i])``.
    final_ttl:
        Remaining EpTO relay budget per node (``None`` for other protocols).
    """

    spec: GossipSpec
    informed_round: np.ndarray
    messages_per_round: np.ndarray
    rounds_executed: int
    join_round: np.ndarray
    leave_round: np.ndarray
    final_ttl: np.ndarray | None = None

    # -- dissemination metrics ---------------------------------------------------

    @property
    def delivered_mask(self) -> np.ndarray:
        """Per-node bool: was the payload ever received (root included)?"""
        return self.informed_round >= 0

    @property
    def delivered_count(self) -> int:
        """Number of nodes the payload reached."""
        return int(self.delivered_mask.sum())

    @property
    def ever_alive_count(self) -> int:
        """Nodes whose alive interval was non-empty within the horizon."""
        return int((self.join_round < self.leave_round).sum())

    @property
    def delivery_fraction(self) -> float:
        """Delivered nodes over nodes that ever existed — the robustness axis."""
        return self.delivered_count / max(1, self.ever_alive_count)

    @property
    def rounds_to_delivery(self) -> int:
        """Round by which the last delivered node was informed."""
        return int(self.informed_round.max())

    @property
    def total_messages(self) -> int:
        """Total messages injected over the whole run."""
        return int(self.messages_per_round.sum())

    @property
    def messages_per_node(self) -> float:
        """Total traffic normalised by network size — the overhead axis."""
        return self.total_messages / self.spec.num_nodes

    def new_informed_per_round(self) -> np.ndarray:
        """Nodes first informed in round ``k``, for ``k = 0..rounds_executed``."""
        return np.bincount(
            self.informed_round[self.delivered_mask],
            minlength=self.rounds_executed + 1,
        )

    def informed_counts(self) -> np.ndarray:
        """Cumulative informed count after round ``k`` (monotone by design)."""
        return np.cumsum(self.new_informed_per_round())

    # -- timing (shared derivation: floats never depend on the engine) -----------

    def round_durations(
        self,
        message_size: float,
        *,
        params: PLogPParameters = DEFAULT_GOSSIP_PARAMS,
        noise_sigma: float = 0.0,
    ) -> np.ndarray:
        """Per-round wall durations under the pLogP model, optionally noisy.

        Noise is one bulk log-normal draw from
        ``derive_seed(seed, "gossip/noise")`` — one factor per executed
        round, the same multiplicative jitter model the measured simulator
        applies per message.
        """
        base = gossip_round_time(self.spec, message_size, params)
        durations = np.full(self.rounds_executed, base, dtype=float)
        if noise_sigma > 0.0 and self.rounds_executed:
            rng = np.random.default_rng(derive_seed(self.spec.seed, "gossip/noise"))
            durations *= rng.lognormal(0.0, noise_sigma, size=self.rounds_executed)
        return durations

    def makespan(
        self,
        message_size: float,
        *,
        params: PLogPParameters = DEFAULT_GOSSIP_PARAMS,
        noise_sigma: float = 0.0,
    ) -> float:
        """Wall time of the whole run (all executed rounds)."""
        return float(self.round_durations(
            message_size, params=params, noise_sigma=noise_sigma
        ).sum())

    def delivery_time(
        self,
        message_size: float,
        *,
        params: PLogPParameters = DEFAULT_GOSSIP_PARAMS,
        noise_sigma: float = 0.0,
    ) -> float:
        """Wall time until the last delivered node was informed."""
        durations = self.round_durations(
            message_size, params=params, noise_sigma=noise_sigma
        )
        return float(durations[: self.rounds_to_delivery].sum())


def run_gossip(spec: GossipSpec, *, engine: str = "vectorized") -> GossipRunResult:
    """Execute one gossip dissemination and return its integer outcome.

    ``engine="vectorized"`` (default) advances the whole network one flat
    NumPy pass per round; ``engine="scalar"`` is the per-node Python
    reference.  Both are bit-identical for every spec — same informed
    rounds, same per-round message counts, same executed round count — which
    ``tests/test_gossip.py`` asserts protocol by protocol.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "scalar":
        return _run_scalar(spec)
    return _run_vectorized(spec)


def _run_vectorized(spec: GossipSpec) -> GossipRunResult:
    """One flat NumPy pass per round over the whole network."""
    n = spec.num_nodes
    protocol = spec.protocol
    fanout = spec.fanout
    join, leave = churn_schedule(spec)
    informed_round = np.full(n, -1, dtype=np.int64)
    informed_round[spec.root] = 0
    ttl = spec.effective_ttl if protocol == "epto" else 0
    ttl_left = np.zeros(n, dtype=np.int64)
    if protocol == "epto":
        ttl_left[spec.root] = ttl
    ranks = np.arange(n)
    offsets = (ranks - spec.root) % n if protocol == "tree" else None
    messages: list[int] = []
    # Rolling state, updated in place each round: `informed` mirrors
    # `informed_round >= 0` (the informed set only grows) and `alive_now`
    # becomes the previous round's `alive_next` — one pass each instead of
    # recomputing from the int arrays every round.
    informed = informed_round >= 0
    alive_now = (join <= 0) & (leave > 0)
    needs_reachable = protocol in ("push", "pushpull")

    for round_index in range(spec.rounds):
        if protocol == "flood":
            senders = informed & alive_now & (informed_round == round_index)
        elif protocol == "epto":
            # ttl_left > 0 implies informed: the budget is only ever set at
            # infection (and effective_ttl >= 1).
            senders = alive_now & (ttl_left > 0)
        elif protocol == "tree":
            pow2 = 1 << min(round_index, 62)
            senders = (
                informed & alive_now & (offsets < pow2) & (offsets + pow2 < n)
                if pow2 < n
                else np.zeros(n, dtype=bool)
            )
        else:
            senders = informed & alive_now
        num_senders = int(senders.sum())
        reachable = (
            int(((~informed) & (leave > round_index + 1)).sum())
            if needs_reachable
            else 0
        )
        if _should_stop(protocol, round_index, n, num_senders, reachable):
            break

        alive_next = (join <= round_index + 1) & (leave > round_index + 1)
        new = np.zeros(n, dtype=bool)
        if protocol == "flood":
            count = num_senders * (n - 1)
            if num_senders:
                new = (~informed) & alive_next
        elif protocol == "tree":
            count = num_senders
            hit = np.zeros(n, dtype=bool)
            hit[(offsets[senders] + pow2 + spec.root) % n] = True
            new = hit & (~informed) & alive_next
        else:
            targets = _round_targets(spec, round_index)
            count = num_senders * fanout
            hit = np.zeros(n, dtype=bool)
            hit[targets[senders].ravel()] = True
            new = hit & (~informed) & alive_next
            if protocol == "pushpull":
                pullers = alive_now & (~informed)
                pulled = targets[pullers]
                available = informed & alive_now
                replied = available[pulled]
                count += int(pullers.sum()) * fanout + int(replied.sum())
                pull_new = np.zeros(n, dtype=bool)
                pull_new[ranks[pullers][replied.any(axis=1)]] = True
                new |= pull_new & alive_next
        informed_round[new] = round_index + 1
        informed |= new
        alive_now = alive_next
        if protocol == "epto":
            ttl_left[new] = ttl
            ttl_left[senders] -= 1
        messages.append(count)

    return GossipRunResult(
        spec=spec,
        informed_round=informed_round,
        messages_per_round=np.asarray(messages, dtype=np.int64),
        rounds_executed=len(messages),
        join_round=join,
        leave_round=leave,
        final_ttl=ttl_left if protocol == "epto" else None,
    )


def _run_scalar(spec: GossipSpec) -> GossipRunResult:
    """The per-node reference: plain Python loops, same draws, same rounds.

    State lives in Python lists and every infection is decided node by node
    and slot by slot — the honest scalar baseline the vectorized engine's
    benchmark floor is measured against.  It consumes exactly the same
    per-round bulk draws (:func:`_round_targets`) and the same shared stop
    decision, which is what pins the two engines bit-identical.
    """
    n = spec.num_nodes
    protocol = spec.protocol
    fanout = spec.fanout
    join_array, leave_array = churn_schedule(spec)
    join = join_array.tolist()
    leave = leave_array.tolist()
    informed_round = [-1] * n
    informed_round[spec.root] = 0
    ttl = spec.effective_ttl if protocol == "epto" else 0
    ttl_left = [0] * n
    if protocol == "epto":
        ttl_left[spec.root] = ttl
    messages: list[int] = []

    for round_index in range(spec.rounds):
        pow2 = 1 << min(round_index, 62)
        senders: list[int] = []
        reachable = 0
        for node in range(n):
            alive = join[node] <= round_index < leave[node]
            is_informed = informed_round[node] >= 0
            if not is_informed and leave[node] > round_index + 1:
                reachable += 1
            if not (is_informed and alive):
                continue
            if protocol == "flood":
                if informed_round[node] == round_index:
                    senders.append(node)
            elif protocol == "epto":
                if ttl_left[node] > 0:
                    senders.append(node)
            elif protocol == "tree":
                offset = (node - spec.root) % n
                if pow2 < n and offset < pow2 and offset + pow2 < n:
                    senders.append(node)
            else:
                senders.append(node)
        if _should_stop(protocol, round_index, n, len(senders), reachable):
            break

        targets = (
            _round_targets(spec, round_index)
            if protocol in ("push", "pushpull", "epto")
            else None
        )
        hit = [False] * n
        count = 0
        for node in senders:
            if protocol == "flood":
                count += n - 1
                for other in range(n):
                    if other != node:
                        hit[other] = True
            elif protocol == "tree":
                count += 1
                hit[((node - spec.root) % n + pow2 + spec.root) % n] = True
            else:
                for slot in range(fanout):
                    count += 1
                    hit[int(targets[node, slot])] = True
        if protocol == "pushpull":
            for node in range(n):
                if informed_round[node] >= 0 or not join[node] <= round_index < leave[node]:
                    continue
                success = False
                for slot in range(fanout):
                    count += 1
                    target = int(targets[node, slot])
                    if (
                        informed_round[target] >= 0
                        and join[target] <= round_index < leave[target]
                    ):
                        count += 1
                        success = True
                if success:
                    hit[node] = True
        for node in range(n):
            if (
                hit[node]
                and informed_round[node] < 0
                and join[node] <= round_index + 1 < leave[node]
            ):
                informed_round[node] = round_index + 1
                if protocol == "epto":
                    ttl_left[node] = ttl
        if protocol == "epto":
            for node in senders:
                ttl_left[node] -= 1
        messages.append(count)

    return GossipRunResult(
        spec=spec,
        informed_round=np.asarray(informed_round, dtype=np.int64),
        messages_per_round=np.asarray(messages, dtype=np.int64),
        rounds_executed=len(messages),
        join_round=join_array,
        leave_round=leave_array,
        final_ttl=np.asarray(ttl_left, dtype=np.int64) if protocol == "epto" else None,
    )
