"""Gossip run specifications: protocol family, parameters, churn schedules.

A :class:`GossipSpec` pins down *everything* a gossip run depends on —
protocol, node count, fanout, TTL budget, round cap, root and seed — so that
one spec always produces one result, whichever engine executes it.  Churn
(nodes joining late and leaving early) is itself part of the spec: a
:class:`ChurnSpec` describes the *distribution* of join/leave rounds, and
:func:`churn_schedule` materialises it into per-node round intervals from a
seed derived with :func:`repro.utils.rng.derive_seed` — the schedule is a
pure function of ``(seed, churn, num_nodes, rounds)`` and never of execution
order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import DEFAULT_SEED, derive_seed

#: The protocols of the gossip collective family:
#:
#: * ``"flood"`` — a node forwards to **every** other node in the round after
#:   it is first informed (one-shot flood; maximal traffic, minimal rounds);
#: * ``"push"`` — every informed node forwards to ``fanout`` uniformly drawn
#:   peers each round (the classic random-fanout epidemic push);
#: * ``"pushpull"`` — push, plus every *uninformed* node polls ``fanout``
#:   peers each round and is informed when any of them already holds the
#:   payload (anti-entropy pull);
#: * ``"epto"`` — EpTO-style TTL balls: a node relays for ``ttl`` rounds
#:   after infection, then goes quiet — traffic is bounded by
#:   ``n * ttl * fanout`` instead of growing with the round cap;
#: * ``"tree"`` — the deterministic binomial broadcast tree expressed in the
#:   same round family, kept as the paper-style baseline the epidemics are
#:   compared against (same churn schedules, same round clock, no draws).
GOSSIP_PROTOCOLS = ("flood", "push", "pushpull", "epto", "tree")

#: Per-spec hard ceiling on rounds; a cap above it is almost certainly a
#: typo (an epidemic over 10⁶ nodes completes in tens of rounds).
MAX_ROUNDS = 4096


@dataclass(frozen=True)
class ChurnSpec:
    """Distribution of node join/leave rounds.

    Attributes
    ----------
    leave_fraction:
        Fraction of nodes (uniformly chosen) that leave the network at a
        round drawn uniformly from ``[1, rounds]``; the rest stay to the end.
    join_fraction:
        Fraction of nodes that join late, at a round drawn uniformly from
        ``[1, rounds]``; the rest are present from round 0.
    """

    leave_fraction: float = 0.0
    join_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("leave_fraction", "join_fraction"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TypeError(f"{name} must be a float, got {type(value).__name__}")
            if not 0.0 <= float(value) < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")

    @property
    def active(self) -> bool:
        """Whether this spec describes any churn at all."""
        return self.leave_fraction > 0.0 or self.join_fraction > 0.0


@dataclass(frozen=True)
class GossipSpec:
    """One fully specified gossip run.

    Attributes
    ----------
    protocol:
        One of :data:`GOSSIP_PROTOCOLS`.
    num_nodes:
        Network size (the protocols are designed for 10⁴–10⁶; any ``>= 1``
        works).
    fanout:
        Peers drawn per node per round (``push``/``pushpull``/``epto``;
        ignored by ``flood`` and ``tree``).
    ttl:
        Rounds a node relays after infection (``epto`` only).  ``0`` means
        *auto*: ``ceil(log2(num_nodes)) + 2``, the classic EpTO sizing that
        keeps the delivery probability high without flooding.
    rounds:
        Hard cap on executed rounds; every engine stops earlier as soon as
        no further infection is possible.
    root:
        The initially informed rank.
    seed:
        Root seed of every random decision (targets, churn, noise).
    churn:
        Optional :class:`ChurnSpec`; ``None`` keeps all nodes alive
        throughout.
    """

    protocol: str
    num_nodes: int
    fanout: int = 2
    ttl: int = 0
    rounds: int = 64
    root: int = 0
    seed: int = DEFAULT_SEED
    churn: ChurnSpec | None = None

    def __post_init__(self) -> None:
        if self.protocol not in GOSSIP_PROTOCOLS:
            raise ValueError(
                f"protocol must be one of {GOSSIP_PROTOCOLS}, got {self.protocol!r}"
            )
        for name in ("num_nodes", "fanout", "ttl", "rounds", "root", "seed"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
                raise TypeError(f"{name} must be an int, got {type(value).__name__}")
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if self.num_nodes > 1 and self.fanout > self.num_nodes - 1:
            raise ValueError(
                f"fanout {self.fanout} exceeds the {self.num_nodes - 1} "
                "possible peers"
            )
        if self.ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {self.ttl}")
        if not 1 <= self.rounds <= MAX_ROUNDS:
            raise ValueError(f"rounds must be in [1, {MAX_ROUNDS}], got {self.rounds}")
        if not 0 <= self.root < self.num_nodes:
            raise ValueError(f"root must be a valid rank, got {self.root}")
        if self.churn is not None and not isinstance(self.churn, ChurnSpec):
            raise TypeError("churn must be a ChurnSpec or None")

    @property
    def effective_ttl(self) -> int:
        """The TTL budget an ``epto`` run uses (resolving ``ttl=0`` = auto)."""
        if self.ttl > 0:
            return self.ttl
        return int(np.ceil(np.log2(max(2, self.num_nodes)))) + 2

    @property
    def sends_per_sender(self) -> int:
        """Messages one active sender injects per round (the timing model)."""
        if self.protocol == "flood":
            return max(1, self.num_nodes - 1)
        if self.protocol == "tree":
            return 1
        return self.fanout


def churn_schedule(spec: GossipSpec) -> tuple[np.ndarray, np.ndarray]:
    """Materialise ``spec.churn`` into per-node ``(join_round, leave_round)``.

    Node ``i`` is alive in round ``r`` iff ``join_round[i] <= r <
    leave_round[i]``.  Without churn every node gets ``join_round = 0`` and
    ``leave_round = rounds + 1`` (beyond the horizon).  The root is always
    pinned alive for the whole run — an epidemic whose patient zero never
    existed is not a dissemination study.

    The schedule is drawn from ``derive_seed(spec.seed, "gossip/churn")`` in
    three bulk calls, so it depends only on the spec — never on which engine
    consumes it or how a study chunks its runs.
    """
    n = spec.num_nodes
    horizon = np.int64(spec.rounds + 1)
    join = np.zeros(n, dtype=np.int64)
    leave = np.full(n, horizon, dtype=np.int64)
    churn = spec.churn
    if churn is not None and churn.active:
        rng = np.random.default_rng(derive_seed(spec.seed, "gossip/churn"))
        lottery = rng.random(size=(2, n))
        leavers = lottery[0] < churn.leave_fraction
        joiners = lottery[1] < churn.join_fraction
        leave_rounds = rng.integers(1, spec.rounds + 1, size=n)
        join_rounds = rng.integers(1, spec.rounds + 1, size=n)
        leave[leavers] = leave_rounds[leavers]
        join[joiners] = join_rounds[joiners]
        join[spec.root] = 0
        leave[spec.root] = horizon
        # A node whose join lands at or after its leave simply never shows
        # up; clamp so the interval stays well-formed (empty, not inverted).
        join = np.minimum(join, leave)
    return join, leave
