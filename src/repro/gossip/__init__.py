"""Gossip/epidemic broadcast family with a vectorized round engine.

The paper's tree-scheduled broadcast tops out at tens of grid clusters; this
package opens the workload the field actually runs at scale: epidemic
dissemination over 10⁴–10⁶ nodes, in the style of round-based protocols such
as EpTO (Matos et al., Middleware'15).  It provides

* :mod:`~repro.gossip.spec` — :class:`GossipSpec` (protocol, fanout, TTL,
  round cap) and :class:`ChurnSpec` (seeded join/leave schedules);
* :mod:`~repro.gossip.engine` — the **round engines**: a vectorized engine
  holding all per-node state (informed round, TTL budget, alive interval) in
  flat NumPy arrays and advancing an entire million-node network one
  vectorized pass per round, plus the scalar per-node reference engine it is
  verified bit-identical against;
* :mod:`~repro.gossip.programs` — :class:`~repro.simulator.program.CommunicationProgram`
  producers, so small gossip instances run through the existing scalar and
  batched simulator lanes unchanged.

Every random decision (fanout targets, churn schedule, per-round noise) is
drawn from a stream seeded by :func:`repro.utils.rng.derive_seed` keyed on
stable labels, so results are bit-identical for any engine, executor lane,
chunking or worker count.
"""

from repro.gossip.engine import (
    GossipRunResult,
    gossip_round_time,
    run_gossip,
)
from repro.gossip.programs import gossip_program
from repro.gossip.spec import (
    GOSSIP_PROTOCOLS,
    ChurnSpec,
    GossipSpec,
    churn_schedule,
)

__all__ = [
    "GOSSIP_PROTOCOLS",
    "ChurnSpec",
    "GossipSpec",
    "GossipRunResult",
    "churn_schedule",
    "gossip_program",
    "gossip_round_time",
    "run_gossip",
]
