"""The shared study-execution runtime.

PR 1 and PR 2 made each half of a study fast in isolation — the batched
scheduling kernel (:mod:`repro.core.batch`) and the batched measurement
engine (:mod:`repro.simulator.batch`) — but every study still paid the same
orchestration taxes: a fresh :mod:`multiprocessing` pool per call, full cost
matrices and compiled programs re-pickled per chunk, and schedule
construction strictly serialised before measured execution.  This package is
the subsystem that removes them, shared by every study driver and the CLI:

* :mod:`repro.runtime.pool` — :class:`~repro.runtime.pool.StudyPool`, the
  persistent worker pool created once per process and reused across studies
  (per-task seed derivation keeps results bit-identical for any pool
  lifetime, submission order or worker count);
* :mod:`repro.runtime.transport` —
  :class:`~repro.runtime.transport.ArrayShipment`, zero-copy shipping of
  ``(K, n, n)`` cost stacks and compiled program arrays through
  :mod:`multiprocessing.shared_memory` (pickle fallback on platforms
  without it);
* :mod:`repro.runtime.pipeline` —
  :class:`~repro.runtime.pipeline.PipelinedExecutor`, the overlapped
  construct/measure driver behind the streaming Table 3 sweep.

Worker counts everywhere resolve through
:func:`repro.utils.workers.resolve_workers` (``REPRO_MC_WORKERS`` /
``REPRO_PRACTICAL_WORKERS`` with the shared ``REPRO_WORKERS`` fallback).
"""

from repro.runtime.pool import StudyPool, get_pool, shutdown_pool
from repro.runtime.transport import (
    TRANSPORTS,
    ArrayShipment,
    resolve_transport,
    shared_memory_available,
)
from repro.runtime.pipeline import PipelinedExecutor

__all__ = [
    "StudyPool",
    "get_pool",
    "shutdown_pool",
    "TRANSPORTS",
    "ArrayShipment",
    "resolve_transport",
    "shared_memory_available",
    "PipelinedExecutor",
]
