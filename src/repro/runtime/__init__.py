"""The shared study-execution runtime.

PR 1 and PR 2 made each half of a study fast in isolation — the batched
scheduling kernel (:mod:`repro.core.batch`) and the batched measurement
engine (:mod:`repro.simulator.batch`) — but every study still paid the same
orchestration taxes: a fresh :mod:`multiprocessing` pool per call, full cost
matrices and compiled programs re-pickled per chunk, and schedule
construction strictly serialised before measured execution.  This package is
the subsystem that removes them, shared by every study driver and the CLI:

* :mod:`repro.runtime.pool` — :class:`~repro.runtime.pool.StudyPool` (the
  process lane) and :class:`~repro.runtime.pool.ThreadStudyPool` (the thread
  lane: same submit/collect contract, workers read the parent's arrays in
  place, nothing ships), both persistent — created once per process and
  reused across studies (per-task seed derivation keeps results
  bit-identical for any lane, pool lifetime, submission order or worker
  count);
* :mod:`repro.runtime.transport` —
  :class:`~repro.runtime.transport.ArrayShipment`, zero-copy shipping of
  ``(K, n, n)`` cost stacks and compiled program arrays through
  :mod:`multiprocessing.shared_memory` (pickle fallback on platforms
  without it); process lane only — the thread lane needs no transport;
* :mod:`repro.runtime.chunking` — cost-aware chunk sizing
  (:func:`~repro.runtime.chunking.partition_by_cost`,
  :class:`~repro.runtime.chunking.CostModel`) and executor selection
  (:func:`~repro.runtime.chunking.choose_executor`,
  ``executor="thread"|"process"|"auto"``);
* :mod:`repro.runtime.pipeline` —
  :class:`~repro.runtime.pipeline.PipelinedExecutor`, the overlapped
  construct/measure driver behind the streaming Table 3 sweep;
* :mod:`repro.runtime.wire` / :mod:`repro.runtime.remote` — the
  **distributed lane** (``executor="remote"``):
  :class:`~repro.runtime.remote.RemoteStudyPool` serves the same
  submit/collect contract over a length-prefixed socket protocol to
  standalone worker agents (``repro-bcast worker serve``), each fronting
  its own local process pool; agents are named by ``hosts=`` /
  ``REPRO_HOSTS`` or auto-spawned as loopback subprocesses;
* :mod:`repro.runtime.serving` / :mod:`repro.runtime.service` — the
  **serving surface**: :class:`~repro.runtime.serving.FrameServer` (the
  accept-loop/admission/drain skeleton shared by the agent and the
  daemon) and broadcast-scheduling-as-a-service — a
  :class:`~repro.runtime.service.ScheduleService` daemon (``repro-bcast
  service serve``) answering (topology, size, heuristic) queries with
  bit-identical timed schedules out of an LRU schedule cache, plus its
  :class:`~repro.runtime.service.ScheduleClient`.

Worker counts everywhere resolve through
:func:`repro.utils.workers.resolve_workers` (``REPRO_MC_WORKERS`` /
``REPRO_PRACTICAL_WORKERS`` with the shared ``REPRO_WORKERS`` fallback);
executor lanes resolve through
:func:`repro.runtime.chunking.resolve_executor` (``REPRO_EXECUTOR``, default
``"auto"``).
"""

from repro.runtime.pool import StudyPool, ThreadStudyPool, get_pool, shutdown_pool
from repro.runtime.transport import (
    TRANSPORTS,
    ArrayShipment,
    resolve_transport,
    shared_memory_available,
    sweep_shipments,
)
from repro.runtime.chunking import (
    CHUNKINGS,
    EXECUTORS,
    CostModel,
    aggregate_unit_costs,
    choose_executor,
    compiled_cost,
    load_cost_model,
    partition_by_cost,
    program_cost,
    resolve_executor,
    save_cost_model,
    save_cost_models,
)
from repro.runtime.pipeline import PipelinedExecutor
from repro.runtime.remote import (
    AgentServer,
    RemoteStudyPool,
    parse_hosts,
    resolve_hosts,
    serve_agent,
)
from repro.runtime.serving import FrameServer
from repro.runtime.service import (
    ScheduleClient,
    ScheduleReply,
    ScheduleService,
    ServiceBusyError,
    ServiceError,
    serve_service,
    topology_key,
)

__all__ = [
    "StudyPool",
    "ThreadStudyPool",
    "get_pool",
    "shutdown_pool",
    "TRANSPORTS",
    "ArrayShipment",
    "resolve_transport",
    "shared_memory_available",
    "sweep_shipments",
    "CHUNKINGS",
    "EXECUTORS",
    "CostModel",
    "aggregate_unit_costs",
    "choose_executor",
    "compiled_cost",
    "load_cost_model",
    "partition_by_cost",
    "program_cost",
    "resolve_executor",
    "save_cost_model",
    "save_cost_models",
    "PipelinedExecutor",
    "AgentServer",
    "RemoteStudyPool",
    "parse_hosts",
    "resolve_hosts",
    "serve_agent",
    "FrameServer",
    "ScheduleClient",
    "ScheduleReply",
    "ScheduleService",
    "ServiceBusyError",
    "ServiceError",
    "serve_service",
    "topology_key",
]
