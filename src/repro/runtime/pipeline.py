"""The pipelined study driver: overlap construction with measured execution.

The Table 3 sweep has two halves with different bottlenecks: schedule
construction and program compilation are parent-side CPU work, measured
execution is embarrassingly parallel across (heuristic, size) tasks.  The
sequential driver runs them strictly one after the other; the
:class:`PipelinedExecutor` streams instead — as soon as one batch of programs
is compiled it is shipped to the persistent worker pool
(:mod:`repro.runtime.pool`) and *measured while the next batch constructs*.

The executor keeps one parent-side compiler alive across submissions, so
every pLogP parameter evaluated for an early batch is reused by later ones.
How a batch reaches the workers depends on the pool's lane: a process
:class:`~repro.runtime.pool.StudyPool` receives each batch's compiled arrays
through :mod:`repro.runtime.transport` (zero-copy shared memory when
available), while a :class:`~repro.runtime.pool.ThreadStudyPool` receives the
parent's compiled programs **by reference** — the thread lane ships nothing.

Chunking is adaptive by default: each submission is split into cost-balanced
worker chunks (per-task cost = program message count), and every completed
chunk's wall time feeds the executor's
:class:`~repro.runtime.chunking.CostModel`, so later batches of the same
study are split against *observed* throughput rather than the prior.
Submission order defines result order, every task carries its own derived
noise seed, and chains are submitted whole — so the pipelined results are
bit-identical to the sequential driver's for any lane, transport or chunking
policy, which the determinism suite asserts directly.

Without a pool the executor degrades to the plain in-process batched engine
(same results, no overlap), so callers can use one code path for both.
"""

from __future__ import annotations

from typing import Sequence

import repro.simulator.batch as _batch
from repro.runtime.chunking import (
    CHUNKINGS,
    FLEET_SKEW_MIN,
    CostModel,
    aggregate_unit_costs,
    compiled_cost,
    cost_model_key,
    load_cost_model,
    partition_by_cost,
    save_cost_model,
)
from repro.runtime.pool import StudyPool
from repro.simulator.execution import ExecutionResult
from repro.simulator.network import NetworkConfig
from repro.topology.grid import Grid

#: Submissions whose estimated wall time is below this are sent as a single
#: chunk — splitting them would cost more in per-chunk overhead than the
#: balance could recover.  A pure performance knob; never affects results.
SPLIT_MIN_SECONDS = 0.002

#: Key the pipelined driver's observations live under in the opt-in on-disk
#: cost cache (``REPRO_COST_CACHE``; see
#: :func:`repro.runtime.chunking.load_cost_model`).  With the cache enabled
#: the *first* submission of a study splits against the units-per-second a
#: previous study actually measured instead of the prior.
COST_MODEL_KEY = "pipeline"

#: A submission is split into cost-balanced chunks only when its atomic
#: units are at least this skewed (max unit cost over min unit cost).
#: Uniform batches stay whole: inter-batch pipelining already occupies the
#: pool, so splitting them buys no balance and costs extra round trips and
#: parent-side contention.  Skewed batches — a chained scatter next to a
#: ~20x all-to-all — are exactly where one oversized chunk would stall the
#: collect order.
SPLIT_MIN_SKEW = 2.0


class PipelinedExecutor:
    """Submit-as-you-construct measured execution on one grid.

    Parameters
    ----------
    grid:
        The topology every submitted program runs on.
    config:
        Shared network behaviour (noise sigma, fallback seed, receive
        overhead).
    pool:
        The worker pool to overlap against — a process
        :class:`~repro.runtime.pool.StudyPool` (batches ship through the
        transport), a :class:`~repro.runtime.pool.ThreadStudyPool` (batches
        pass by reference, nothing ships) or a
        :class:`~repro.runtime.remote.RemoteStudyPool` (batches framed over
        the wire to worker agents); ``None`` runs every submission
        synchronously in-process (bit-identical results, no overlap).
    transport:
        Shipping transport for compiled batches on the process lane —
        ``"auto"`` (default), ``"shm"`` or ``"pickle"``; see
        :mod:`repro.runtime.transport`.  Ignored on the thread lane.
    chunking:
        ``"adaptive"`` (default) splits each submission into cost-balanced
        worker chunks and refines the cost model from observed chunk wall
        times; ``"fixed"`` keeps each submission as one chunk (the
        historical behaviour).  Bit-identical either way.
    collect_traces:
        Keep full message traces (measured sweeps pass ``False``).
    workload:
        Optional label of the collective mix this executor runs (e.g.
        ``"bcast"``).  When given, the on-disk cost cache is read and
        written under a key shaped by ``(workload, grid)`` — see
        :func:`repro.runtime.chunking.cost_model_key` — with the legacy
        shared ``"pipeline"`` record as the read fallback, so differently
        shaped studies stop mispricing each other's throughput.
    """

    def __init__(
        self,
        grid: Grid,
        *,
        config: NetworkConfig | None = None,
        pool: StudyPool | None = None,
        transport: str | None = None,
        chunking: str = "adaptive",
        collect_traces: bool = False,
        workload: str | None = None,
    ) -> None:
        if chunking not in CHUNKINGS:
            raise ValueError(
                f"chunking must be one of {CHUNKINGS}, got {chunking!r}"
            )
        self._grid = grid
        self._config = config if config is not None else NetworkConfig()
        self._pool = pool
        self._transport = transport
        self._chunking = chunking
        self._collect_traces = collect_traces
        self._compiler = _batch._BatchCompiler(grid, collect_traces)
        # Preloaded from the opt-in REPRO_COST_CACHE (a fresh model with the
        # default prior otherwise) so even the first submission can split
        # against observed throughput.  A workload label shapes the cache
        # key; the legacy shared record seeds shaped readers until their
        # own record exists.
        if workload is not None:
            self._cost_key = cost_model_key(
                workload, grid.num_clusters, grid.num_nodes
            )
            self._cost_model = load_cost_model(
                self._cost_key, fallback_keys=(COST_MODEL_KEY,)
            )
        else:
            self._cost_key = COST_MODEL_KEY
            self._cost_model = load_cost_model(self._cost_key)
        # Each entry is ("sync", results) or ("async", handles, shipment,
        # units, task count), in submission order; harvested async entries
        # collapse back to ("sync", results).
        self._pending: list[tuple] = []
        self._finished = False

    @property
    def pipelined(self) -> bool:
        """Whether submissions overlap with pool-side execution."""
        return self._pool is not None

    @property
    def cost_model(self) -> CostModel:
        """The executor's estimated-then-observed task cost model."""
        return self._cost_model

    def submit(self, tasks: Sequence[_batch.ExecutionTask]) -> None:
        """Queue one batch of tasks for execution.

        With a pool the batch is compiled and handed to the workers
        immediately (shipped on the process lane, by reference on the thread
        lane) — the call returns while they execute, so the caller can
        construct the next batch in parallel.  Chains must be contained in a
        single submission.
        """
        if self._finished:
            raise RuntimeError("PipelinedExecutor.finish() was already called")
        normalized = [
            task
            if isinstance(task, _batch.ExecutionTask)
            else _batch.ExecutionTask(program=task)
            for task in tasks
        ]
        _batch._validate_tasks(normalized)
        if not normalized:
            return
        compiled = [self._compiler.compile(task) for task in normalized]
        seeds = _batch._task_seeds(normalized, self._config)
        resets = [task.reset_network for task in normalized]
        if self._pool is None:
            results = _batch._run_task_sequence(
                compiled,
                seeds,
                resets,
                self._config.noise_sigma,
                self._config.receive_overhead,
                self._collect_traces,
                self._grid.num_nodes,
            )
            self._pending.append(("sync", results))
            return
        # Feed the cost model with whatever already finished, so this
        # submission's chunk split rests on observed throughput.
        self._harvest()
        costs = [compiled_cost(prog) for prog in compiled]
        units = float(sum(costs))
        bounds = self._bounds(normalized, costs, units)
        kind = getattr(self._pool, "kind", "process")
        chunk_units = [float(sum(costs[start:end])) for start, end in bounds]
        if kind == "thread":
            handles = [
                self._pool.submit(
                    _batch._execute_compiled_chunk,
                    (
                        start,
                        compiled[start:end],
                        seeds[start:end],
                        resets[start:end],
                        self._config.noise_sigma,
                        self._config.receive_overhead,
                        self._collect_traces,
                        self._grid.num_nodes,
                    ),
                    units=chunk_units[index],
                )
                for index, (start, end) in enumerate(bounds)
            ]
            shipment = None
        elif kind == "remote":
            # Per-chunk wire bundles (see _batch._remote_chunk_jobs): every
            # frame carries only the arrays its chunk runs; nothing to
            # unlink afterwards, the frames own their bytes.
            handles = [
                self._pool.submit(
                    _batch._execute_shipped_chunk, job, units=chunk_units[index]
                )
                for index, job in enumerate(
                    _batch._remote_chunk_jobs(
                        compiled,
                        seeds,
                        resets,
                        bounds,
                        self._config,
                        self._collect_traces,
                        self._grid.num_nodes,
                    )
                )
            ]
            shipment = None
        else:
            shipment, metas, index_of = _batch._ship_compiled(
                compiled, self._collect_traces, self._transport
            )
            entries = [
                (index_of[id(prog)], seed, reset)
                for prog, seed, reset in zip(compiled, seeds, resets)
            ]
            handles = []
            for chunk_index, (start, end) in enumerate(bounds):
                chunk_entries = entries[start:end]
                needed = {unique_index for unique_index, _, _ in chunk_entries}
                job = (
                    start,
                    shipment,
                    {index: metas[index] for index in needed},
                    chunk_entries,
                    self._config.noise_sigma,
                    self._config.receive_overhead,
                    self._collect_traces,
                    self._grid.num_nodes,
                )
                handles.append(
                    self._pool.submit(
                        _batch._execute_shipped_chunk,
                        job,
                        units=chunk_units[chunk_index],
                    )
                )
        self._pending.append(
            ("async", handles, shipment, units, len(normalized))
        )

    def _bounds(
        self,
        tasks: Sequence[_batch.ExecutionTask],
        costs: Sequence[float],
        units: float,
    ) -> list[tuple[int, int]]:
        """Worker chunk boundaries for one submission.

        Adaptive chunking splits into up to ``pool.workers`` cost-balanced
        chunks — but only when the batch's estimated wall time (cost model)
        is worth the per-chunk overhead *and* its unit costs are skewed
        enough that balancing matters (:data:`SPLIT_MIN_SKEW`); tiny or
        uniform batches stay whole and ride the inter-batch pipeline.

        On a remote pool whose fleet is heterogeneous (estimated per-slot
        throughputs skewed at least
        :data:`~repro.runtime.chunking.FLEET_SKEW_MIN` apart —
        ``partition_weights``), the split is *weighted*: chunks are sized
        proportionally to the slots' throughput, and even a cost-uniform
        batch is split, because on a skewed fleet equal chunks are exactly
        the imbalance.  Homogeneous fleets and local pools keep the
        historical uniform behaviour.
        """
        workers = self._pool.workers
        if (
            self._chunking != "adaptive"
            or workers < 2
            or self._cost_model.seconds_for(units) < SPLIT_MIN_SECONDS
        ):
            return [(0, len(tasks))]
        chain_units = _batch._chain_units(tasks)
        if len(chain_units) < 2:
            return [(0, len(tasks))]
        fleet = getattr(self._pool, "partition_weights", None)
        weights = fleet() if fleet is not None else None
        if weights is not None and (
            min(weights) <= 0.0
            or max(weights) < FLEET_SKEW_MIN * min(weights)
        ):
            weights = None
        unit_costs = aggregate_unit_costs(chain_units, costs)
        if weights is not None:
            return partition_by_cost(
                chain_units, unit_costs, len(weights), weights=weights
            )
        if max(unit_costs) < SPLIT_MIN_SKEW * max(min(unit_costs), 1.0):
            return [(0, len(tasks))]
        return partition_by_cost(chain_units, unit_costs, workers)

    def _collect(self, entry: tuple) -> list[ExecutionResult]:
        """Gather one async entry's chunks (blocking) and feed the model."""
        _, handles, shipment, units, count = entry
        results: list[ExecutionResult | None] = [None] * count
        elapsed = 0.0
        try:
            for handle in handles:
                start, values, seconds = handle.get()
                results[start : start + len(values)] = values
                elapsed += seconds
        finally:
            if shipment is not None:
                shipment.unlink()
        self._cost_model.observe(units, elapsed)
        return results  # type: ignore[return-value]

    def _harvest(self) -> None:
        """Collapse finished async entries without blocking on running ones."""
        for index, entry in enumerate(self._pending):
            if entry[0] != "async":
                continue
            if not all(handle.ready() for handle in entry[1]):
                continue
            self._pending[index] = ("sync", self._collect(entry))

    def finish(self) -> list[ExecutionResult]:
        """Wait for every submitted batch; results flattened in submit order.

        Every shipped batch is unlinked whether or not its worker succeeded,
        so a failing chunk never strands the other batches' shared-memory
        segments.
        """
        if self._finished:
            raise RuntimeError("PipelinedExecutor.finish() was already called")
        self._finished = True
        pending, self._pending = self._pending, []
        results: list[ExecutionResult] = []
        failure: BaseException | None = None
        for entry in pending:
            if entry[0] == "sync":
                results.extend(entry[1])
                continue
            if failure is None:
                try:
                    results.extend(self._collect(entry))
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    failure = exc
            elif entry[2] is not None:
                # Draining the remaining shipments is best-effort cleanup;
                # it must never mask the root-cause failure above.
                try:
                    entry[2].unlink()
                except Exception:
                    pass
        # Persist whatever was observed (opt-in via REPRO_COST_CACHE) so the
        # next study's first split starts from measured throughput.
        save_cost_model(self._cost_key, self._cost_model)
        if failure is not None:
            raise failure
        return results

    def abort(self) -> None:
        """Drop every submitted batch and release its shipment.

        For callers whose *construction* fails mid-stream: already-submitted
        work is abandoned (workers may still be executing it — unlinking is
        safe, their mappings survive until they finish) and the executor
        becomes unusable.
        """
        self._finished = True
        pending, self._pending = self._pending, []
        for entry in pending:
            if entry[0] == "async" and entry[2] is not None:
                entry[2].unlink()
