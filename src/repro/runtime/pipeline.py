"""The pipelined study driver: overlap construction with measured execution.

The Table 3 sweep has two halves with different bottlenecks: schedule
construction and program compilation are parent-side CPU work, measured
execution is embarrassingly parallel across (heuristic, size) tasks.  The
sequential driver runs them strictly one after the other; the
:class:`PipelinedExecutor` streams instead — as soon as one batch of programs
is compiled it is shipped to the persistent worker pool
(:mod:`repro.runtime.pool`) and *measured while the next batch constructs*.

The executor keeps one parent-side compiler alive across submissions, so
every pLogP parameter evaluated for an early batch is reused by later ones,
and ships each batch's compiled arrays through
:mod:`repro.runtime.transport` (zero-copy shared memory when available).
Submission order defines result order, every task carries its own derived
noise seed, and chains are submitted whole — so the pipelined results are
bit-identical to the sequential driver's, which the determinism suite
asserts directly.

Without a pool the executor degrades to the plain in-process batched engine
(same results, no overlap), so callers can use one code path for both.
"""

from __future__ import annotations

from typing import Sequence

import repro.simulator.batch as _batch
from repro.runtime.pool import StudyPool
from repro.simulator.execution import ExecutionResult
from repro.simulator.network import NetworkConfig
from repro.topology.grid import Grid


class PipelinedExecutor:
    """Submit-as-you-construct measured execution on one grid.

    Parameters
    ----------
    grid:
        The topology every submitted program runs on.
    config:
        Shared network behaviour (noise sigma, fallback seed, receive
        overhead).
    pool:
        The worker pool to overlap against; ``None`` runs every submission
        synchronously in-process (bit-identical results, no overlap).
    transport:
        Shipping transport for compiled batches — ``"auto"`` (default),
        ``"shm"`` or ``"pickle"``; see :mod:`repro.runtime.transport`.
    collect_traces:
        Keep full message traces (measured sweeps pass ``False``).
    """

    def __init__(
        self,
        grid: Grid,
        *,
        config: NetworkConfig | None = None,
        pool: StudyPool | None = None,
        transport: str | None = None,
        collect_traces: bool = False,
    ) -> None:
        self._grid = grid
        self._config = config if config is not None else NetworkConfig()
        self._pool = pool
        self._transport = transport
        self._collect_traces = collect_traces
        self._compiler = _batch._BatchCompiler(grid, collect_traces)
        # Each entry is ("sync", results) or ("async", handle, shipment,
        # batch length), in submission order.
        self._pending: list[tuple] = []
        self._finished = False

    @property
    def pipelined(self) -> bool:
        """Whether submissions overlap with pool-side execution."""
        return self._pool is not None

    def submit(self, tasks: Sequence[_batch.ExecutionTask]) -> None:
        """Queue one batch of tasks for execution.

        With a pool the batch is compiled, shipped and handed to the workers
        immediately — the call returns while they execute, so the caller can
        construct the next batch in parallel.  Chains must be contained in a
        single submission.
        """
        if self._finished:
            raise RuntimeError("PipelinedExecutor.finish() was already called")
        normalized = [
            task
            if isinstance(task, _batch.ExecutionTask)
            else _batch.ExecutionTask(program=task)
            for task in tasks
        ]
        _batch._validate_tasks(normalized)
        if not normalized:
            return
        compiled = [self._compiler.compile(task) for task in normalized]
        seeds = _batch._task_seeds(normalized, self._config)
        resets = [task.reset_network for task in normalized]
        if self._pool is None:
            results = _batch._run_task_sequence(
                compiled,
                seeds,
                resets,
                self._config.noise_sigma,
                self._config.receive_overhead,
                self._collect_traces,
                self._grid.num_nodes,
            )
            self._pending.append(("sync", results))
            return
        shipment, metas, index_of = _batch._ship_compiled(
            compiled, self._collect_traces, self._transport
        )
        entries = [
            (index_of[id(prog)], seed, reset)
            for prog, seed, reset in zip(compiled, seeds, resets)
        ]
        job = (
            0,
            shipment,
            dict(enumerate(metas)),
            entries,
            self._config.noise_sigma,
            self._config.receive_overhead,
            self._collect_traces,
            self._grid.num_nodes,
        )
        handle = self._pool.submit(_batch._execute_shipped_chunk, job)
        self._pending.append(("async", handle, shipment))

    def finish(self) -> list[ExecutionResult]:
        """Wait for every submitted batch; results flattened in submit order.

        Every shipped batch is unlinked whether or not its worker succeeded,
        so a failing chunk never strands the other batches' shared-memory
        segments.
        """
        if self._finished:
            raise RuntimeError("PipelinedExecutor.finish() was already called")
        self._finished = True
        pending, self._pending = self._pending, []
        results: list[ExecutionResult] = []
        failure: BaseException | None = None
        for entry in pending:
            if entry[0] == "sync":
                results.extend(entry[1])
                continue
            _, handle, shipment = entry
            try:
                if failure is None:
                    _, values = handle.get()
                    results.extend(values)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failure = exc
            finally:
                shipment.unlink()
        if failure is not None:
            raise failure
        return results

    def abort(self) -> None:
        """Drop every submitted batch and release its shipment.

        For callers whose *construction* fails mid-stream: already-submitted
        work is abandoned (workers may still be executing it — unlinking is
        safe, their mappings survive until they finish) and the executor
        becomes unusable.
        """
        self._finished = True
        pending, self._pending = self._pending, []
        for entry in pending:
            if entry[0] != "sync":
                entry[2].unlink()
