"""Deterministic fault injection for the distributed executor lane.

The remote lane's recovery machinery — heartbeats, per-frame deadlines,
probation reconnect, admission backoff, degradation to the local lanes —
only earns trust if its failure paths run constantly, not just when a real
box dies.  This module is the harness that makes them run: a
:class:`FaultPlan` is a *seeded schedule of misbehaviour* that the
coordinator's wire layer consults at its injection points —

* **connect refusal** — a connect/reconnect attempt is bounced, exercising
  the retry/backoff path and keeping a "crashed" agent from rejoining;
* **frame drop** — an outbound frame (job or ping) silently vanishes,
  exercising per-frame deadlines and heartbeat staleness;
* **frame delay** — an outbound frame is held back before hitting the wire;
* **frame corruption** — an outbound frame is sent with a mangled header,
  poisoning the stream so the agent drops the connection (the reconnect
  path from a half-dead link);
* **agent crash** — after a chosen number of delivered results the agent is
  killed for good: its process (when the coordinator owns one) receives
  ``SIGKILL``, its socket is torn down, and every later connect attempt is
  refused;
* **agent hang** (heartbeat blackhole) — after a chosen number of results
  the link turns into a black hole for a while: outbound frames are
  swallowed, inbound frames (results *and* pongs) are absorbed before they
  can refresh liveness, and reconnect probes are refused until the hole
  expires — exactly what a frozen host looks like from the coordinator.

Schedules are **deterministic**: every (agent, injection-site) pair draws
its decisions from its own :class:`random.Random` stream seeded via
:func:`repro.utils.rng.derive_seed`, so a plan replays identically for a
given ``seed`` regardless of thread interleaving at *other* sites, and a
chaos test failure can be reproduced from its seed alone.  Fault timing can
never change study *results* — every task carries its own derived seed — so
the only thing a plan perturbs is where and when chunks run, which is
precisely the property the chaos suite asserts.

Plans select agents three ways, most specific first: an exact
``"host:port"`` name, a join-order index (``"#0"`` is the first agent the
pool registered — how loopback agents with OS-assigned ports are targeted),
and the ``"*"`` wildcard.  A plan reaches the pool either as ``faults=`` on
:class:`~repro.runtime.remote.RemoteStudyPool` (a :class:`FaultPlan`, a
spec dict, or a path to a JSON spec) or through the ``REPRO_FAULT_PLAN``
environment variable naming a JSON file.  Injection is **off by default**
with zero hot-path cost: an unset plan resolves to ``None`` and the wire
layer's consult sites are single ``is not None`` checks.
"""

from __future__ import annotations

import json
import math
import os
import random
import threading
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Mapping

from repro.utils.rng import derive_seed

#: Environment variable naming a JSON fault-plan file consulted when a
#: ``RemoteStudyPool`` is built without an explicit ``faults=`` argument.
#: Unset (the production default) means no injection at all.
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: ``on_send`` verdicts: deliver the frame, drop it silently, hold it back
#: for ``delay_seconds``, or mangle its header so the receiving agent drops
#: the connection.
SEND_OK = "ok"
SEND_DROP = "drop"
SEND_DELAY = "delay"
SEND_CORRUPT = "corrupt"

#: ``after_result`` verdicts: kill the agent for good / turn it into a
#: temporary black hole.
FAULT_CRASH = "crash"
FAULT_HANG = "hang"


@dataclass(frozen=True)
class AgentFaultSpec:
    """The per-agent knobs of a :class:`FaultPlan` (all off by default).

    Rates are per-frame probabilities in ``[0, 1]`` drawn from the agent's
    seeded stream; ``*_after_results`` counters trigger once, after that
    many results have been delivered through the agent's link (``0`` —
    never).
    """

    #: Refuse the first N connect attempts (fleet-launch stragglers).
    refuse_connects: int = 0
    #: P(an outbound frame is silently dropped).
    drop_rate: float = 0.0
    #: P(an outbound frame is delayed by up to ``delay_seconds``).
    delay_rate: float = 0.0
    #: Longest injected send delay, in seconds.
    delay_seconds: float = 0.05
    #: P(an outbound frame is sent with a corrupted header).
    corrupt_rate: float = 0.0
    #: Kill the agent for good after this many delivered results (0: never).
    crash_after_results: int = 0
    #: Black-hole the agent after this many delivered results (0: never).
    hang_after_results: int = 0
    #: How long a hang's black hole lasts (0: forever).
    hang_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "corrupt_rate"):
            rate = float(getattr(self, name))
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")


class _AgentFaultState:
    """Mutable per-agent injection state (counters, streams, the hole)."""

    __slots__ = (
        "spec",
        "index",
        "connect_attempts",
        "results",
        "crashed",
        "hole_until",
        "send_rng",
    )

    def __init__(self, spec: AgentFaultSpec, index: int, seed: int, name: str) -> None:
        self.spec = spec
        self.index = index
        self.connect_attempts = 0
        self.results = 0
        self.crashed = False
        #: Monotonic time the black hole expires (0: no hole; inf: forever).
        self.hole_until = 0.0
        self.send_rng = random.Random(derive_seed(seed, "fault-send", name))

    def in_hole(self, now: float) -> bool:
        return now < self.hole_until


class FaultPlan:
    """A seeded, thread-safe schedule of injected faults.

    Parameters
    ----------
    seed:
        Root seed of every per-agent decision stream.
    agents:
        Mapping of agent selector — exact ``"host:port"``, join-order index
        ``"#N"``, or ``"*"`` — to an :class:`AgentFaultSpec` (or a plain
        dict of its fields).  The most specific selector wins.
    """

    def __init__(
        self,
        seed: int = 0,
        agents: Mapping[str, AgentFaultSpec | Mapping[str, object]] | None = None,
    ) -> None:
        self.seed = int(seed)
        self._specs: dict[str, AgentFaultSpec] = {}
        for selector, spec in (agents or {}).items():
            if not isinstance(spec, AgentFaultSpec):
                allowed = {field.name for field in fields(AgentFaultSpec)}
                unknown = set(spec) - allowed
                if unknown:
                    raise ValueError(
                        f"unknown fault knob(s) {sorted(unknown)} for agent "
                        f"{selector!r}; valid knobs: {sorted(allowed)}"
                    )
                spec = AgentFaultSpec(**{key: spec[key] for key in spec})  # type: ignore[arg-type]
            self._specs[str(selector)] = spec
        self._lock = threading.Lock()
        self._states: dict[str, _AgentFaultState] = {}  # guarded-by: _lock
        self._order: dict[str, int] = {}  # guarded-by: _lock

    @classmethod
    def from_spec(cls, spec: Mapping[str, object]) -> "FaultPlan":
        """Build a plan from a parsed JSON spec (``{"seed": ..., "agents": ...}``)."""
        seed = spec.get("seed", 0)
        agents = spec.get("agents", {})
        if not isinstance(seed, int):
            raise ValueError(f"fault-plan seed must be an integer, got {seed!r}")
        if not isinstance(agents, Mapping):
            raise ValueError("fault-plan 'agents' must be a mapping of selectors")
        return cls(seed=seed, agents=agents)  # type: ignore[arg-type]

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file (the ``REPRO_FAULT_PLAN`` format)."""
        text = Path(path).read_text()
        spec = json.loads(text)
        if not isinstance(spec, dict):
            raise ValueError(f"fault plan {path} must contain a JSON object")
        return cls.from_spec(spec)

    # -- agent registration and selector matching ---------------------------------

    def _state(self, name: str) -> _AgentFaultState:  # holds: _lock
        state = self._states.get(name)
        if state is None:
            index = self._order.setdefault(name, len(self._order))
            spec = (
                self._specs.get(name)
                or self._specs.get(f"#{index}")
                or self._specs.get("*")
                or AgentFaultSpec()
            )
            state = _AgentFaultState(spec, index, self.seed, name)
            self._states[name] = state
        return state

    def register(self, name: str) -> None:
        """Record ``name``'s join order (first registration wins the index)."""
        with self._lock:
            self._state(name)

    # -- injection points ----------------------------------------------------------

    def refuse_connect(self, name: str) -> bool:
        """Whether this connect attempt should be bounced.

        Crashed agents are refused forever, black-holed agents until the
        hole expires, and otherwise the first ``refuse_connects`` attempts.
        """
        with self._lock:
            state = self._state(name)
            if state.crashed or state.in_hole(time.monotonic()):
                return True
            state.connect_attempts += 1
            return state.connect_attempts <= state.spec.refuse_connects

    def on_send(self, name: str) -> tuple[str, float]:
        """The fate of one outbound frame: ``(verdict, delay_seconds)``."""
        with self._lock:
            state = self._state(name)
            if state.in_hole(time.monotonic()):
                return SEND_DROP, 0.0
            spec = state.spec
            if spec.drop_rate or spec.delay_rate or spec.corrupt_rate:
                draw = state.send_rng.random()
                if draw < spec.drop_rate:
                    return SEND_DROP, 0.0
                draw -= spec.drop_rate
                if draw < spec.corrupt_rate:
                    return SEND_CORRUPT, 0.0
                draw -= spec.corrupt_rate
                if draw < spec.delay_rate:
                    return SEND_DELAY, state.send_rng.uniform(
                        0.0, spec.delay_seconds
                    )
        return SEND_OK, 0.0

    def absorb_receive(self, name: str) -> bool:
        """Whether an inbound frame vanishes into the agent's black hole."""
        with self._lock:
            return self._state(name).in_hole(time.monotonic())

    def after_result(self, name: str) -> str | None:
        """Advance the agent's result counter; trigger a crash/hang if due."""
        with self._lock:
            state = self._state(name)
            state.results += 1
            spec = state.spec
            if not state.crashed and spec.crash_after_results:
                if state.results >= spec.crash_after_results:
                    state.crashed = True
                    return FAULT_CRASH
            if spec.hang_after_results and state.hole_until == 0.0:
                if state.results >= spec.hang_after_results:
                    state.hole_until = (
                        time.monotonic() + spec.hang_seconds
                        if spec.hang_seconds > 0
                        else math.inf
                    )
                    return FAULT_HANG
        return None

    def crash(self, name: str) -> None:
        """Mark ``name`` crashed outright (used by tests and schedules)."""
        with self._lock:
            self._state(name).crashed = True


def corrupt_frame(frame: bytes) -> bytes:
    """Mangle a frame's magic so the receiver rejects the stream.

    The corrupted frame keeps its original length: the receiver reads one
    complete frame, fails the magic check, and drops the connection — the
    same observable outcome as a truncated or bit-flipped frame, without
    leaving the TCP stream mid-frame (which would only stall the peer).
    """
    return b"XFLT" + frame[4:]


def resolve_fault_plan(
    faults: "FaultPlan | Mapping[str, object] | str | Path | None",
) -> FaultPlan | None:
    """Normalise a ``faults=`` argument; ``None`` consults ``REPRO_FAULT_PLAN``.

    Returns ``None`` — injection fully off — when neither names a plan.
    """
    if faults is None:
        path = os.environ.get(FAULT_PLAN_ENV_VAR, "").strip()
        return FaultPlan.load(path) if path else None
    if isinstance(faults, FaultPlan):
        return faults
    if isinstance(faults, (str, Path)):
        return FaultPlan.load(faults)
    return FaultPlan.from_spec(faults)
