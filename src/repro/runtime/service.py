"""Broadcast-scheduling-as-a-service: the schedule daemon and its client.

The paper's contribution is a heuristic that *computes* broadcast
schedules; this module serves that computation as traffic.  A
:class:`ScheduleService` is a long-running daemon (the ``repro-bcast
service serve`` CLI) speaking the length-prefixed wire protocol
(:mod:`repro.runtime.wire`) on the shared serving skeleton
(:class:`repro.runtime.serving.FrameServer` — the same accept loop,
``--max-clients`` admission, ``BUSY`` bounce and SIGTERM drain as the
study agent).  Each query names a **topology spec**, a message size, a
heuristic and a root; the answer is the full timed schedule — decision
order, makespan and the predicted per-cluster completion vector.

**Determinism contract.**  A response is bit-identical to what an inline
``get_heuristic(key).schedule(grid, size, root=root)`` call produces on
the same spec: the service builds the very same :class:`Grid`, runs the
very same engine, and the wire layer ships floats losslessly (binary
pickle, no text round-trip).  ``tests/test_properties.py`` pins the
underlying engine-level contract; ``tests/test_service.py`` pins the
service against the inline path.

**Caching.**  Two layers make repeat queries dictionary hits:

* a **topology cache** mapping the canonical topology hash to the built
  :class:`Grid`.  Keeping the grid object alive also keeps its
  :class:`~repro.core.costs.GridCostCache` entries warm (they are keyed
  by grid identity through a weak reference), so even a *new* (size,
  heuristic) query on a known topology skips the dense-matrix rebuild;
* an **LRU schedule cache** keyed by ``(topology hash, size band,
  heuristic, root)`` holding complete response payloads.

With the default ``band_bytes=0`` the size band *is* the exact message
size, so a cache hit replays a stored payload verbatim — trivially
bit-identical.  With ``band_bytes > 0`` queries within one band share a
cached *decision order* which is re-timed at the exact query size via
:func:`~repro.core.schedule.evaluate_order`; the timings are exact, and
the order reuse is exact for constant-gap topologies (the Monte-Carlo
random grids) while being a banded approximation for size-dependent gap
functions (Grid'5000) — which is why banding is opt-in.

**Wire format.**  After the hello frame (``{"hello": <wire version>,
"service": "schedule", "heuristics": [...]}``), each request frame is a
dict; replies echo the ``query`` correlation id:

* ``{"query": id, "topology": spec, "message_size": m, "heuristic": key,
  "root": r}`` → ``{"query": id, "result": payload, "cached": bool}`` or
  ``{"query": id, "error": text}`` (the connection survives query
  errors) or ``{"query": id, "op": "busy"}`` when draining / over the
  ``queue`` bound;
* ``{"op": "stats"}`` → ``{"op": "stats", "served": ..., "hits": ...,
  "misses": ..., "retimed": ..., "entries": ..., "topologies": ...}``;
* ``PING`` / ``SHUTDOWN`` control frames as everywhere on this wire.
"""

from __future__ import annotations

import hashlib
import json
import socket
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.core.costs import GridCostCache
from repro.core.registry import available_heuristics, get_heuristic
from repro.core.schedule import BroadcastSchedule, ScheduledTransfer, evaluate_order
from repro.runtime import wire
from repro.runtime.serving import FrameServer
from repro.topology.cluster import Cluster
from repro.topology.generators import RandomGridGenerator
from repro.topology.grid import Grid, InterClusterLink
from repro.topology.grid5000 import build_grid5000_topology
from repro.utils.rng import RandomStream

__all__ = [
    "DEFAULT_SERVICE_PORT",
    "ScheduleClient",
    "ScheduleReply",
    "ScheduleService",
    "ServiceBusyError",
    "ServiceError",
    "build_topology",
    "canonical_topology_spec",
    "serve_service",
    "topology_key",
]

#: Default port of the ``service serve`` / ``service query`` CLI pair.
DEFAULT_SERVICE_PORT = 7030
#: Default connection cap of the daemon (``--max-clients``).
DEFAULT_MAX_CLIENTS = 8
#: Default bound on distinct cached schedules (``--cache-size``).
DEFAULT_CACHE_SIZE = 1024


# -- topology specs -------------------------------------------------------------------


def canonical_topology_spec(spec: Any) -> dict[str, Any]:
    """Validate a wire-side topology spec and return its canonical form.

    Three kinds are understood:

    * ``{"kind": "grid5000"}`` — the paper's Table 3 nine-cluster testbed;
    * ``{"kind": "random", "clusters": n, "seed": s}`` — one Table 2
      Monte-Carlo grid, exactly as ``RandomGridGenerator`` draws it;
    * ``{"kind": "explicit", "broadcast": [T_i], "latency": [[L_ij]],
      "gap": [[g_ij]], "sizes": [n_i]}`` — a literal grid: per-cluster
      local broadcast times plus full matrices of constant link
      parameters (the upper triangle ``i < j`` defines each link, matching
      the Monte-Carlo constant-gap style; ``sizes`` is optional and
      defaults to one machine per cluster).

    The canonical form fixes key order and numeric types so that equal
    topologies hash equally; raises :class:`ValueError` on anything else.
    """
    if not isinstance(spec, Mapping):
        raise ValueError(f"topology spec must be a mapping, got {type(spec).__name__}")
    kind = spec.get("kind")
    if kind == "grid5000":
        return {"kind": "grid5000"}
    if kind == "random":
        clusters = int(spec.get("clusters", 0))
        if clusters < 1:
            raise ValueError(f"random topology needs clusters >= 1, got {clusters}")
        return {"kind": "random", "clusters": clusters, "seed": int(spec.get("seed", 0))}
    if kind == "explicit":
        broadcast = [float(value) for value in spec.get("broadcast", ())]
        n = len(broadcast)
        if n < 1:
            raise ValueError("explicit topology needs at least one cluster")
        latency = _canonical_matrix(spec.get("latency"), n, "latency")
        gap = _canonical_matrix(spec.get("gap"), n, "gap")
        sizes = [int(value) for value in spec.get("sizes", [1] * n)]
        if len(sizes) != n or any(size < 1 for size in sizes):
            raise ValueError(f"sizes must be {n} machine counts >= 1, got {sizes}")
        return {
            "kind": "explicit",
            "broadcast": broadcast,
            "latency": latency,
            "gap": gap,
            "sizes": sizes,
        }
    raise ValueError(
        f"unknown topology kind {kind!r}; expected grid5000, random or explicit"
    )


def _canonical_matrix(raw: Any, n: int, label: str) -> list[list[float]]:
    """An ``n x n`` matrix of non-negative floats, or :class:`ValueError`."""
    if raw is None:
        raise ValueError(f"explicit topology needs a {label} matrix")
    matrix = [[float(value) for value in row] for row in raw]
    if len(matrix) != n or any(len(row) != n for row in matrix):
        raise ValueError(f"{label} must be an {n}x{n} matrix")
    for i, row in enumerate(matrix):
        for j, value in enumerate(row):
            if i != j and value < 0.0:
                raise ValueError(f"{label}[{i}][{j}] must be >= 0, got {value}")
    return matrix


def topology_key(spec: Any) -> str:
    """The canonical topology hash: sha256 of the canonical JSON spec."""
    canonical = canonical_topology_spec(spec)
    encoded = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def build_topology(spec: Any) -> Grid:
    """Build the :class:`Grid` a canonical (or raw) topology spec names."""
    canonical = canonical_topology_spec(spec)
    kind = canonical["kind"]
    if kind == "grid5000":
        return build_grid5000_topology()
    if kind == "random":
        stream = RandomStream(seed=canonical["seed"])
        return RandomGridGenerator().generate(canonical["clusters"], stream)
    broadcast = canonical["broadcast"]
    sizes = canonical["sizes"]
    clusters = [
        Cluster(cluster_id=index, size=sizes[index], fixed_broadcast_time=time_i)
        for index, time_i in enumerate(broadcast)
    ]
    links = {
        (i, j): InterClusterLink.from_values(
            canonical["latency"][i][j], canonical["gap"][i][j]
        )
        for i in range(len(broadcast))
        for j in range(i + 1, len(broadcast))
    }
    return Grid(clusters, links, name="explicit")


# -- response payloads ----------------------------------------------------------------


def _schedule_payload(schedule: BroadcastSchedule) -> dict[str, Any]:
    """The wire payload of a schedule: plain lists and floats, loss-free."""
    return {
        "heuristic": schedule.heuristic_name,
        "root": schedule.root,
        "num_clusters": schedule.num_clusters,
        "message_size": schedule.message_size,
        "makespan": schedule.makespan,
        "order": [(t.sender, t.receiver) for t in schedule.transfers],
        "transfers": [
            (
                t.sender,
                t.receiver,
                t.start_time,
                t.sender_release_time,
                t.arrival_time,
                t.gap,
                t.latency,
            )
            for t in schedule.transfers
        ],
        "arrival_times": list(schedule.arrival_times),
        "local_start_times": list(schedule.local_start_times),
        "completion_times": list(schedule.completion_times),
    }


def _payload_schedule(payload: Mapping[str, Any]) -> BroadcastSchedule:
    """Rebuild the :class:`BroadcastSchedule` a payload describes."""
    return BroadcastSchedule(
        root=int(payload["root"]),
        num_clusters=int(payload["num_clusters"]),
        message_size=float(payload["message_size"]),
        transfers=[
            ScheduledTransfer(*transfer) for transfer in payload["transfers"]
        ],
        arrival_times=list(payload["arrival_times"]),
        local_start_times=list(payload["local_start_times"]),
        completion_times=list(payload["completion_times"]),
        heuristic_name=str(payload["heuristic"]),
    )


# -- the daemon -----------------------------------------------------------------------


class ScheduleService(FrameServer):
    """The schedule daemon: query frames in, timed broadcast schedules out.

    See the module docstring for the wire format and the caching design.

    Parameters
    ----------
    host, port:
        Listen address; port ``0`` lets the OS pick (the bound address is
        available as :attr:`address` after :meth:`bind`).
    max_clients:
        Concurrent client connections served before new connections are
        bounced ``BUSY`` (default :data:`DEFAULT_MAX_CLIENTS`).
    queue:
        Bound on queries admitted but not yet answered across all clients;
        ``0`` — the default — is unbounded.
    cache_size:
        Bound on cached schedules (and on cached topologies), evicted LRU
        (default :data:`DEFAULT_CACHE_SIZE`).
    band_bytes:
        Width of the message-size band in the schedule-cache key.  ``0`` —
        the default — keys by exact size, which keeps cache hits trivially
        bit-identical; a positive width lets nearby sizes share a cached
        decision order, re-timed exactly per query (see module docstring
        for when that reuse is exact).
    """

    thread_name = "repro-service-conn"
    busy_reason = "service at max clients or draining"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        queue: int = 0,
        cache_size: int = DEFAULT_CACHE_SIZE,
        band_bytes: int = 0,
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"--cache-size must be >= 1, got {cache_size}")
        if band_bytes < 0:
            raise ValueError(f"--band-bytes must be >= 0 (0: exact), got {band_bytes}")
        super().__init__(host, port, max_clients=max_clients, queue=queue)
        self.cache_size = int(cache_size)
        self.band_bytes = int(band_bytes)
        #: Cache state; scheduling itself runs outside this lock so slow
        #: queries never serialise the whole daemon.
        self._cache_lock = threading.Lock()
        self._grids: OrderedDict[str, Grid] = OrderedDict()  # guarded-by: _cache_lock
        self._schedules: OrderedDict[
            tuple[str, float, str, int], dict[str, Any]
        ] = OrderedDict()  # guarded-by: _cache_lock
        self.hits = 0  # guarded-by: _cache_lock
        self.misses = 0  # guarded-by: _cache_lock
        self.retimed = 0  # guarded-by: _cache_lock
        self.served = 0  # guarded-by: _cache_lock
        #: GridCostCache.for_grid is unsynchronised (its callers are
        #: single-threaded loops); serialise matrix builds across the
        #: connection threads so its per-grid FIFO eviction cannot race.
        self._costs_lock = threading.Lock()

    # -- FrameServer protocol surface -----------------------------------------

    def _hello_message(self) -> dict[str, Any]:
        return {
            "hello": wire.WIRE_VERSION,
            "service": "schedule",
            "heuristics": available_heuristics(),
        }

    def _error_reply(
        self, message: dict[str, Any], exc: Exception
    ) -> dict[str, Any]:
        return {
            "query": message.get("query"),
            "error": f"service could not serialise the reply: {exc}",
        }

    def _handle_frame(
        self, message: dict[str, Any], reply: Callable[[dict[str, Any]], None]
    ) -> bool:
        if message.get("op") == "stats":
            reply({"op": "stats", **self.stats()})
            return True
        if "query" not in message:
            return False
        query_id = message["query"]
        if not self._admit_job():
            # Draining, or the in-flight bound is hit: a clean per-query
            # reject the client surfaces as ServiceBusyError.
            reply({"query": query_id, "op": wire.OP_BUSY})
            return True
        try:
            payload, cached = self._answer(message)
            reply({"query": query_id, "result": payload, "cached": cached})
        except Exception as exc:  # noqa: BLE001 - reported to the client;
            # a malformed query must not drop the connection, let alone
            # the daemon.
            reply({"query": query_id, "error": f"{type(exc).__name__}: {exc}"})
        finally:
            self._job_finished()
        return True

    # -- query answering -------------------------------------------------------

    def _answer(self, message: Mapping[str, Any]) -> tuple[dict[str, Any], bool]:
        """Serve one query: ``(payload, cache_hit)``; raises on bad input."""
        spec = canonical_topology_spec(message.get("topology"))
        key = topology_key(spec)
        message_size = float(message.get("message_size", -1.0))
        if message_size < 0.0:
            raise ValueError("a query needs a message_size >= 0")
        heuristic = get_heuristic(str(message.get("heuristic", "")))
        heuristic_key = str(message.get("heuristic", ""))
        root = int(message.get("root", 0))
        if self.band_bytes > 0:
            band = float(message_size // self.band_bytes)
        else:
            band = message_size
        cache_key = (key, band, heuristic_key.lower().replace("-", "_"), root)
        with self._cache_lock:
            entry = self._schedules.get(cache_key)
            if entry is not None:
                self._schedules.move_to_end(cache_key)
                self.hits += 1
                self.served += 1
            else:
                self.misses += 1
                self.served += 1
        if entry is not None:
            if entry["message_size"] == message_size:
                return entry, True
            # A banded hit at a different exact size: replay the cached
            # decision order, re-timed at the query's size.
            grid = self._grid_for(key, spec)
            schedule = evaluate_order(
                grid,
                message_size,
                root,
                [tuple(pair) for pair in entry["order"]],
                heuristic_name=str(entry["heuristic"]),
                costs=self._costs_for(grid, message_size),
            )
            with self._cache_lock:
                self.retimed += 1
            return _schedule_payload(schedule), True
        grid = self._grid_for(key, spec)
        schedule = heuristic.schedule(
            grid, message_size, root=root, costs=self._costs_for(grid, message_size)
        )
        payload = _schedule_payload(schedule)
        with self._cache_lock:
            self._schedules[cache_key] = payload
            self._schedules.move_to_end(cache_key)
            while len(self._schedules) > self.cache_size:
                self._schedules.popitem(last=False)
        return payload, False

    def _grid_for(self, key: str, spec: Mapping[str, Any]) -> Grid:
        """The cached :class:`Grid` for a canonical spec, built on first use.

        The cache holds strong references, which is what keeps each grid's
        weakly-keyed :class:`GridCostCache` matrices warm between queries.
        """
        with self._cache_lock:
            grid = self._grids.get(key)
            if grid is not None:
                self._grids.move_to_end(key)
                return grid
        built = build_topology(spec)
        with self._cache_lock:
            # Two threads may have raced the build; first insert wins so
            # every later query shares one grid identity (and one cost
            # cache).
            grid = self._grids.get(key)
            if grid is None:
                self._grids[key] = built
                grid = built
            self._grids.move_to_end(key)
            while len(self._grids) > self.cache_size:
                self._grids.popitem(last=False)
        return grid

    def _costs_for(self, grid: Grid, message_size: float) -> GridCostCache:
        with self._costs_lock:
            return GridCostCache.for_grid(grid, message_size)

    def stats(self) -> dict[str, int]:
        """A snapshot of the cache counters (also the ``stats`` op body)."""
        with self._cache_lock:
            return {
                "served": self.served,
                "hits": self.hits,
                "misses": self.misses,
                "retimed": self.retimed,
                "entries": len(self._schedules),
                "topologies": len(self._grids),
            }


# -- the client -----------------------------------------------------------------------


class ServiceError(RuntimeError):
    """The service answered with an error frame, or broke protocol."""


class ServiceBusyError(ServiceError):
    """The service bounced the connection or the query ``BUSY``."""


@dataclass(frozen=True)
class ScheduleReply:
    """One service answer: the schedule payload plus its cache provenance."""

    payload: dict[str, Any]
    cached: bool

    def schedule(self) -> BroadcastSchedule:
        """The reply as a first-class :class:`BroadcastSchedule`."""
        return _payload_schedule(self.payload)

    @property
    def makespan(self) -> float:
        return float(self.payload["makespan"])

    @property
    def order(self) -> list[tuple[int, int]]:
        return [(int(s), int(r)) for s, r in self.payload["order"]]


class ScheduleClient:
    """A blocking client for one :class:`ScheduleService` connection.

    Queries are answered in order on one socket; use one client per
    thread (the service serves each connection on its own thread, so N
    clients get N-way concurrency).  Usable as a context manager.

    Parameters
    ----------
    address:
        ``(host, port)`` or ``"host:port"``.
    timeout:
        Socket timeout in seconds for connect and for each reply;
        ``None`` — the default — blocks indefinitely.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        timeout: float | None = None,
    ) -> None:
        if isinstance(address, str):
            host, _, port_text = address.rpartition(":")
            if not host or not port_text:
                raise ValueError(f"address must be HOST:PORT, got {address!r}")
            address = (host, int(port_text))
        self._address: tuple[str, int] = (address[0], int(address[1]))
        self._timeout = timeout
        self._sock: socket.socket | None = None
        self._next_query = 0
        self.hello: dict[str, Any] | None = None

    def connect(self) -> "ScheduleClient":
        """Connect and consume the hello frame (idempotent).

        Raises :class:`ServiceBusyError` when the daemon bounces the
        connection, :class:`ServiceError` when the peer is not a schedule
        service.
        """
        if self._sock is not None:
            return self
        sock = socket.create_connection(self._address, timeout=self._timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = wire.recv_message(sock)
            if not isinstance(hello, dict):
                raise ServiceError("service sent no hello frame")
            if hello.get("op") == wire.OP_BUSY:
                raise ServiceBusyError(
                    str(hello.get("reason", "service refused the connection"))
                )
            if hello.get("service") != "schedule":
                raise ServiceError(
                    f"peer at {self._address[0]}:{self._address[1]} is not a "
                    f"schedule service (hello: {hello!r})"
                )
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self.hello = hello
        return self

    def query(
        self,
        topology: Mapping[str, Any],
        message_size: float,
        heuristic: str,
        *,
        root: int = 0,
    ) -> ScheduleReply:
        """Ask for one schedule; see the module docstring for the spec shape."""
        self._next_query += 1
        response = self._roundtrip(
            {
                "query": self._next_query,
                "topology": dict(topology),
                "message_size": float(message_size),
                "heuristic": str(heuristic),
                "root": int(root),
            }
        )
        return ScheduleReply(
            payload=response["result"], cached=bool(response.get("cached", False))
        )

    def stats(self) -> dict[str, int]:
        """The daemon's cache counters (the ``stats`` op)."""
        response = self._roundtrip({"op": "stats"})
        return {
            key: int(value)
            for key, value in response.items()
            if isinstance(value, int)
        }

    def _roundtrip(self, message: dict[str, Any]) -> dict[str, Any]:
        self.connect()
        sock = self._sock
        assert sock is not None
        wire.send_message(sock, message)
        while True:
            response = wire.recv_message(sock)
            if response is None:
                raise ServiceError("service closed the connection")
            if not isinstance(response, dict):
                raise ServiceError(f"service broke protocol: {response!r}")
            if "query" in message and response.get("query") != message["query"]:
                continue
            if response.get("op") == wire.OP_BUSY:
                raise ServiceBusyError(
                    "service refused the query (draining or at its queue bound)"
                )
            if "error" in response:
                raise ServiceError(str(response["error"]))
            return response

    def close(self) -> None:
        """Drop the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ScheduleClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- the CLI daemon body --------------------------------------------------------------


def serve_service(
    bind: str = f"127.0.0.1:{DEFAULT_SERVICE_PORT}",
    *,
    max_clients: int = DEFAULT_MAX_CLIENTS,
    queue: int = 0,
    cache_size: int = DEFAULT_CACHE_SIZE,
    band_bytes: int = 0,
    drain_timeout: float = 30.0,
) -> None:
    """Run one schedule daemon in the foreground (``service serve`` body).

    Announces the concrete listen address on stdout (``listening on
    host:port``) so spawners — and humans — can read an OS-assigned port
    back.  SIGTERM triggers the shared graceful drain: admitted queries
    finish and flush, everything new bounces ``BUSY``, and the daemon
    exits 0.
    """
    import signal

    host, _, port_text = bind.rpartition(":")
    if not host or not port_text:
        raise ValueError(f"--bind must be HOST:PORT, got {bind!r}")
    server = ScheduleService(
        host,
        int(port_text),
        max_clients=max_clients,
        queue=queue,
        cache_size=cache_size,
        band_bytes=band_bytes,
    )
    # begin_drain is async-signal-safe (an Event set plus a socket close,
    # no locks) and kicks serve_forever out of accept; the drain itself
    # runs below, in the normal flow.
    try:
        signal.signal(signal.SIGTERM, lambda *_: server.begin_drain())
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    bound_host, bound_port = server.bind()
    print(
        f"repro-schedule-service listening on {bound_host}:{bound_port} "
        f"(heuristics={len(available_heuristics())}, wire v{wire.WIRE_VERSION})",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        if server.draining:
            server.drain(drain_timeout)
        server.close()
