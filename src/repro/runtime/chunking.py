"""Cost-aware chunk sizing and executor selection for the study runtime.

Before this module worker chunks were sized by *task count*: a chunk of ten
tasks was assumed to cost ten cost units.  That assumption is badly wrong for
mixed workloads — an all-to-all program injects ``n * (n - 1)`` messages
where a scheduled broadcast injects ``n - 1``, so one all-to-all task costs
roughly 20x a bcast task on the Table 3 grid and a count-based split leaves
most workers idle while one worker drains the expensive chunk.  This module
sizes chunks from **per-task cost** instead:

* the *prior* cost of a task is its program's message count (Monte-Carlo
  scheduling chunks use ``iterations * clusters**2`` — the stacked-matrix
  cell count — as the equivalent prior);
* within a study, *observed wall-time* feeds back through a
  :class:`CostModel`: the pipelined driver times every completed chunk and
  refines its units-per-second rate, so later batches of the same study are
  split against measured cost, not the prior.

The same cost estimates drive **executor selection**
(:func:`choose_executor`): ``executor="auto"`` runs small batches — the ones
whose total estimated cost cannot amortise process-pool shipping — on the
thread lane (:class:`~repro.runtime.pool.ThreadStudyPool`, zero shipping) and
everything else on the process lane.  Neither chunking nor executor choice
ever changes results: every task carries its own derived seed, so all
partitions of all sizes on either lane are bit-identical (asserted by
``tests/test_runtime.py``).
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping, Sequence

try:  # POSIX writer lock for the shared on-disk cost cache
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Valid ``executor=`` values accepted by the runtime entry points and every
#: study driver: ``"auto"`` (cost-based choice), ``"thread"``
#: (:class:`~repro.runtime.pool.ThreadStudyPool`, no shipping), ``"process"``
#: (:class:`~repro.runtime.pool.StudyPool` + transport) and ``"remote"``
#: (:class:`~repro.runtime.remote.RemoteStudyPool` — chunks shipped over
#: sockets to worker agents; never chosen by ``"auto"``, only explicitly).
EXECUTORS = ("auto", "thread", "process", "remote")

#: Valid ``chunking=`` values: ``"adaptive"`` (cost-balanced chunks, the
#: default) and ``"fixed"`` (the historical task-count chunking, kept as the
#: benchmark baseline and for the equivalence suite).
CHUNKINGS = ("adaptive", "fixed")

#: Environment variable consulted when ``executor=None``; the shared way to
#: force every study onto one lane (``REPRO_EXECUTOR=thread|process|auto``).
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: An ``"auto"`` fan-out whose total estimated cost is at most this many units
#: runs on the thread lane.  One unit is roughly one message (or one stacked
#: scheduling-matrix cell); the threshold sits where the measured
#: thread-vs-process crossover lands on the benchmark box (see
#: ``benchmarks/bench_runtime.py``, section ``thread_vs_process``).
AUTO_THREAD_MAX_UNITS = 4096

#: Prior throughput assumed before a study has observed any wall-time:
#: roughly the batched measurement engine's per-message rate.  Only used to
#: decide whether splitting a batch is worth the per-chunk overhead; never
#: affects results.
DEFAULT_UNITS_PER_SECOND = 200_000.0

#: Chunks-per-worker target shared by every fan-out path: enough chunks that
#: a skewed workload still balances, few enough that per-chunk overhead stays
#: negligible.
CHUNKS_PER_WORKER = 4

#: Environment variable naming an opt-in on-disk cost cache (a JSON file).
#: When set, the pipelined driver restores previously observed
#: units-per-second on start-up and records its own on finish — so the
#: *first* submission of a study, local or remote, is split against measured
#: throughput instead of the :data:`DEFAULT_UNITS_PER_SECOND` prior.  Purely
#: a performance device: like everything in this module it can never change
#: results, so a stale, missing or unwritable cache file is always safe.
COST_CACHE_ENV_VAR = "REPRO_COST_CACHE"

#: A fleet of remote agents is *skewed* when the fastest chunk slot's
#: estimated throughput is at least this multiple of the slowest's — the
#: point where weighted (throughput-proportional) chunk splitting starts to
#: pay for its extra frames.  Below it, agents are near-enough identical
#: that the historical uniform split behaves the same.
FLEET_SKEW_MIN = 1.5


def cost_model_key(workload: str, num_clusters: int, num_nodes: int) -> str:
    """The shaped on-disk cost-cache key of one workload.

    Observed units-per-second depends on *what* is being measured — an
    all-to-all message costs the same unit as a bcast message, but grids of
    different sizes compile and execute at different per-unit rates.  Keying
    cache entries by ``(workload label, grid shape)`` keeps a 45-node bcast
    sweep's throughput from mispricing a 6-node scatter study.  Readers pass
    the legacy shared ``"pipeline"`` record as a fallback
    (:func:`load_cost_model`), so cache files written before shaped keys
    existed still seed the model.
    """
    return f"pipeline/{workload}/c{num_clusters}-n{num_nodes}"


def resolve_executor(executor: str | None) -> str:
    """Normalise an ``executor=`` argument to one of :data:`EXECUTORS`.

    ``None`` consults the ``REPRO_EXECUTOR`` environment variable and falls
    back to ``"auto"``.  The executor never changes results — only where the
    work runs — so the environment override is always safe to set globally.
    """
    if executor is None:
        executor = os.environ.get(EXECUTOR_ENV_VAR, "").strip() or "auto"
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    return executor


def choose_executor(
    executor: str | None,
    total_units: float,
    *,
    transport: str | None = None,
    threshold: float = AUTO_THREAD_MAX_UNITS,
) -> str:
    """The concrete lane (``"thread"`` or ``"process"``) for one fan-out.

    ``"auto"`` picks the thread lane when the batch's total estimated cost is
    at most ``threshold`` units — a batch that small finishes before process
    shipping would have amortised — and the process lane otherwise.  Naming a
    ``transport`` pins ``"auto"`` to the process lane (transports describe
    process shipping; the thread lane ships nothing).  Explicit
    ``"thread"``/``"process"``/``"remote"`` always win; ``"auto"`` never
    chooses the remote lane on its own (crossing a machine boundary is an
    explicit decision — via ``executor="remote"`` or ``REPRO_EXECUTOR``).
    """
    resolved = resolve_executor(executor)
    if resolved != "auto":
        return resolved
    if transport is not None:
        return "process"
    return "thread" if total_units <= threshold else "process"


def program_cost(program: Any) -> int:
    """Prior cost of executing one communication program, in units.

    The unit is one message: the batched measurement engine's work is
    dominated by per-message bookkeeping, so a program's message count is a
    faithful relative cost (an all-to-all task really does cost ~20x a bcast
    task on the Table 3 grid).  The ``+ 1`` keeps empty programs from
    costing nothing.
    """
    return 1 + sum(len(sends) for sends in program.sends.values())


def gossip_cost(num_nodes: int, rounds: int) -> float:
    """Prior cost of one vectorized gossip run, in message-equivalent units.

    A round of the vectorized engine touches every node once, so the work is
    ``num_nodes`` times the *expected* executed rounds — an epidemic over
    ``n`` nodes completes in about ``log2(n)`` rounds, capped by the spec's
    round budget.  One vectorized node-round costs roughly 1/64 of a
    simulated message (the engine advances ~10⁷ node-rounds/s where the
    batched measurement engine moves ~10⁵ messages/s), so node-rounds are
    scaled down to keep one shared unit across workloads.  Like every prior
    here it only balances chunks and picks lanes; it never affects results.
    """
    expected_rounds = min(rounds, int(math.ceil(math.log2(max(2, num_nodes)))) + 2)
    return 1.0 + num_nodes * expected_rounds / 64.0


def compiled_cost(compiled_program: Any) -> int:
    """Prior cost of one *compiled* program — the compiled twin of
    :func:`program_cost`.

    Compiled programs (``repro.simulator.batch._CompiledProgram``) carry
    their flattened message list in ``dest``, so the message count is a
    direct length.  Every dispatch path (pipelined, process, thread) must
    price tasks through this one helper so the cost prior can never diverge
    between drivers.
    """
    return 1 + len(compiled_program.dest)


class CostModel:
    """Estimated-then-observed cost of one study's tasks.

    Starts from the :data:`DEFAULT_UNITS_PER_SECOND` prior and refines it
    with every ``observe(units, seconds)`` call — the pipelined driver feeds
    it each completed chunk's wall time, so chunk-splitting decisions later
    in the same study rest on measured throughput.  Purely a performance
    device: the model never influences *what* is computed.
    """

    __slots__ = ("_units", "_seconds")

    def __init__(self) -> None:
        self._units = 0.0
        self._seconds = 0.0

    @property
    def observed(self) -> bool:
        """Whether any wall-time has been fed back yet."""
        return self._seconds > 0.0

    @property
    def units_per_second(self) -> float:
        """Observed throughput, or the prior before any observation."""
        if self._seconds > 0.0 and self._units > 0.0:
            return self._units / self._seconds
        return DEFAULT_UNITS_PER_SECOND

    def observe(self, units: float, seconds: float) -> None:
        """Record that ``units`` of work took ``seconds`` of wall time."""
        if units > 0.0 and seconds > 0.0:
            self._units += units
            self._seconds += seconds

    def seconds_for(self, units: float) -> float:
        """Estimated wall time of ``units`` of work at the current rate."""
        return units / self.units_per_second

    def snapshot(self) -> dict[str, float]:
        """The model's accumulated observations, as a JSON-friendly dict."""
        return {"units": self._units, "seconds": self._seconds}

    def restore(self, snapshot: dict) -> "CostModel":
        """Adopt a :meth:`snapshot` (replacing any current observations).

        Malformed snapshots are rejected with :class:`ValueError`; callers
        reading from untrusted storage (the on-disk cache) catch and fall
        back to the prior.
        """
        units = float(snapshot["units"])
        seconds = float(snapshot["seconds"])
        if units < 0.0 or seconds < 0.0:
            raise ValueError(f"negative cost-model snapshot {snapshot!r}")
        self._units = units
        self._seconds = seconds
        return self


def _cost_cache_path() -> Path | None:
    raw = os.environ.get(COST_CACHE_ENV_VAR, "").strip()
    return Path(raw) if raw else None


def load_cost_model(key: str, fallback_keys: Sequence[str] = ()) -> CostModel:
    """A :class:`CostModel` preloaded from the on-disk cache, if enabled.

    Looks ``key`` up in the ``REPRO_COST_CACHE`` JSON file, then each of
    ``fallback_keys`` in order — the migration path for cache files written
    before shaped keys existed (a reader passes the legacy ``"pipeline"``
    record as its fallback and re-saves under the shaped key).  Any failure
    — variable unset, file missing, unreadable, every entry malformed —
    falls back to a fresh model with the default prior.  Never raises.
    """
    model = CostModel()
    path = _cost_cache_path()
    if path is None:
        return model
    try:
        document = json.loads(path.read_text())
    except Exception:  # noqa: BLE001 - a cache miss is always fine
        return model
    for candidate in (key, *fallback_keys):
        try:
            return model.restore(document[candidate])
        except Exception:  # noqa: BLE001 - try the next candidate
            continue
    return model


def save_cost_model(key: str, model: CostModel) -> None:
    """Record ``model``'s observations under ``key`` in the on-disk cache.

    Shorthand for :func:`save_cost_models` with a single record; see there
    for the concurrency contract.  Never raises.
    """
    save_cost_models({key: model})


def save_cost_models(records: Mapping[str, CostModel]) -> None:
    """Merge several models' observations into the on-disk cache at once.

    A no-op when ``REPRO_COST_CACHE`` is unset or no record observed
    anything.  Writers sharing one cache — concurrent studies, coordinators,
    the schedule daemon — are safe against each other twice over:

    * the replacement is atomic (temp file in the same directory +
      ``os.replace``), so a concurrent *reader* can only ever see a
      complete document, never a torn write;
    * the read-merge-write cycle runs under an exclusive ``flock`` on a
      ``<cache>.lock`` sidecar, so a concurrent *writer* cannot interleave
      its own cycle inside ours and revert keys it never touched (the
      lost-update race the old single-key rewrite had).  Where ``fcntl``
      is unavailable the merge still happens against a fresh read, which
      shrinks the race window without eliminating it.

    Only the keys in ``records`` are updated; every other key in the
    document is preserved.  All failures are swallowed — the cache is an
    accelerator, never a dependency.
    """
    path = _cost_cache_path()
    if path is None:
        return
    payload = {
        key: model.snapshot() for key, model in records.items() if model.observed
    }
    if not payload:
        return
    try:
        _merge_into_cost_cache(path, payload)
    except Exception:  # noqa: BLE001 - performance device, never fails a study
        pass


def _merge_into_cost_cache(
    path: Path, payload: dict[str, dict[str, float]]
) -> None:
    """Locked read-merge-replace of ``payload`` into the cache document."""
    lock_handle = open(path.with_name(path.name + ".lock"), "a")
    try:
        if fcntl is not None:
            fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
        try:
            document = json.loads(path.read_text())
            if not isinstance(document, dict):
                document = {}
        except Exception:  # noqa: BLE001 - first write or corrupt cache
            document = {}
        document.update(payload)
        handle, temp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(document, stream)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
    finally:
        # Closing the handle releases the flock with it.
        lock_handle.close()


def aggregate_unit_costs(
    units: Sequence[tuple[int, int]], task_costs: Sequence[float]
) -> list[float]:
    """Total cost of each chain-atomic unit, from per-task costs.

    ``units`` are the half-open ``[start, end)`` task ranges produced by
    ``repro.simulator.batch._chain_units``.  Every dispatch path (pipelined,
    process, thread) aggregates through this one helper before calling
    :func:`partition_by_cost`, so unit pricing can never diverge between
    drivers.
    """
    return [
        float(sum(task_costs[index] for index in range(start, end)))
        for start, end in units
    ]


def partition_by_cost(
    units: Sequence[tuple[int, int]],
    unit_costs: Sequence[float],
    num_chunks: int,
    weights: Sequence[float] | None = None,
) -> list[tuple[int, int]]:
    """Merge contiguous atomic units into at most ``num_chunks`` chunks of
    roughly equal (or weighted) total cost.

    ``units`` are half-open ``[start, end)`` task ranges that must stay
    together (warm chains; single tasks otherwise — see
    ``repro.simulator.batch._chain_units``) and ``unit_costs`` their total
    costs.  The greedy sweep targets the ideal per-chunk share of the
    *remaining* cost and closes the open chunk **before** adding a unit
    whenever stopping short lands closer to that share than overshooting
    would — so an oversized unit gets its own chunk wherever it sits in the
    sequence (a ~20x all-to-all at the *tail* of a batch must not absorb
    every cheap unit before it).

    ``weights`` makes the split *throughput-proportional*: chunk ``i``
    targets the share ``weights[i] / sum(weights[i:])`` of the remaining
    cost instead of an equal share, which is how a heterogeneous remote
    fleet receives chunks sized to each agent's observed units-per-second
    (:meth:`repro.runtime.remote.RemoteStudyPool.partition_weights`).  With
    fewer units than weights, the leading weights are used — callers pass
    them fastest-first so the capable slots keep their chunks.  Every chunk
    lands within one unit's cost of its weighted target (chains are atomic,
    so no split can do better).  Partitioning never affects results — only
    which worker executes which tasks.
    """
    if len(units) != len(unit_costs):
        raise ValueError(
            f"got {len(units)} units but {len(unit_costs)} costs"
        )
    if not units:
        return []
    if weights is not None:
        num_chunks = min(int(num_chunks), len(weights))
    num_chunks = max(1, min(int(num_chunks), len(units)))
    if weights is None:
        shares = [1.0] * num_chunks
    else:
        shares = [float(weight) for weight in weights[:num_chunks]]
        if any(share <= 0.0 for share in shares):
            raise ValueError(f"chunk weights must be positive, got {weights!r}")
        # Normalise by the largest share so equal weights become exactly 1.0
        # and the weighted targets round bit-identically to the uniform
        # path's (w/(w*k) and 1/k differ in the last ulp for some w, which
        # is enough to flip a near-tie boundary decision).
        top = max(shares)
        shares = [share / top for share in shares]
    # Suffix sums: share_left[i] is the total weight of chunks i onwards,
    # so the open chunk's target is remaining * shares[i] / share_left[i].
    share_left = list(shares)
    for index in range(num_chunks - 2, -1, -1):
        share_left[index] += share_left[index + 1]
    chunks: list[tuple[int, int]] = []
    remaining = float(sum(unit_costs))
    start = units[0][0]
    accumulated = 0.0
    for unit_index, (unit_start, unit_end) in enumerate(units):
        cost = float(unit_costs[unit_index])
        open_chunk = len(chunks)
        chunks_left = num_chunks - open_chunk
        target = remaining * shares[open_chunk] / share_left[open_chunk]
        # Close before adding when the open chunk is non-empty and
        # overshooting the fair share by `cost` is worse than undershooting
        # by what is already accumulated.  (num_chunks is a ceiling, not a
        # quota — a run that uses fewer chunks is fine, and the unit just
        # added always populates the freshly opened chunk.)
        if (
            chunks_left > 1
            and accumulated > 0.0
            and (accumulated + cost) - target > target - accumulated
        ):
            chunks.append((start, unit_start))
            start = unit_start
            remaining -= accumulated
            accumulated = 0.0
        accumulated += cost
    chunks.append((start, units[-1][1]))
    return chunks
