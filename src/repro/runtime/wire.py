"""The length-prefixed wire protocol of the distributed executor lane.

The remote lane (:mod:`repro.runtime.remote`) moves exactly the payloads the
process lane already ships through shared memory: compiled program arrays,
stacked ``(K, n, n)`` cost matrices, chunk jobs and their results.  This
module is the byte-level encoding of those payloads over a socket — stdlib
only (:mod:`socket`, :mod:`struct`, :mod:`pickle`, :mod:`zlib`), no msgpack,
no serialisation dependency.

**Frame layout.**  Every message travels as one frame::

    +-------+---------+-------+----------+------------------+
    | magic | version | flags | reserved | payload length Q |  header (16 B)
    +-------+---------+-------+----------+------------------+
    | payload (optionally zlib-compressed, see FLAG_ZLIB)    |
    +--------------------------------------------------------+

and the (uncompressed) payload is a body/buffer section::

    body length I | body | buffer count I | (buffer length Q | raw bytes)*

The *body* is a pickle (protocol 5) of the message structure with every
NumPy array hoisted **out of band**: arrays leave the pickle stream as raw
buffers (the bytes :meth:`numpy.ndarray.tobytes` would produce, taken
zero-copy from the array's memory) and are framed after the body, so bulk
data is never re-encoded byte-by-byte by the pickler.  On receive the
buffers are handed back to :func:`pickle.loads` as read-only views into the
received frame — arrays deserialise without a copy, exactly like a
shared-memory :class:`~repro.runtime.transport.ArrayShipment` maps in place.

**Shipments.**  An :class:`~repro.runtime.transport.ArrayShipment` pickles
as a shared-memory segment *name* — meaningless on another machine.  The
encoder therefore rewrites any shipment in the message into a
:class:`WireShipment`: a wire-native bundle carrying the same arrays (read
through :meth:`~repro.runtime.transport.ArrayShipment.load`, so the shm and
pickle transports both encode identically) and serving the same
``load()``/``close()``/``unlink()`` consumer surface on the far side.  The
receiving agent re-packs a ``WireShipment`` into a *local*
``ArrayShipment`` before fanning the job out to its own worker processes —
the wire protocol bridges machines, the shared-memory transport still does
the last hop inside each one.

Frames at least :data:`COMPRESS_MIN_BYTES` long are zlib-compressed when
that actually shrinks them (cost stacks compress well; already-dense noise
arrays are sent as-is).  Compression, like everything else in the runtime,
never changes results — the determinism suite round-trips both paths.

**Control and timing frames.**  Besides job frames (``{"job": id, "fn":
name, "args": ...}``) and result frames (``{"job": id, "result": ...}``)
the protocol carries two lightweight message families:

* **heartbeats** — the coordinator sends :data:`OP_PING` control frames on
  an interval and the agent answers each with an :data:`OP_PONG` echoing
  the sequence number, *outside* the job path, so a wedged or frozen agent
  is detected even while its socket stays open;
* **timing reports** — every result frame carries the job's worker-side
  wall time under ``"elapsed"``, which is what feeds the coordinator's
  per-agent :class:`~repro.runtime.chunking.CostModel` and makes routing
  throughput-proportional;
* **admission rejects** — an agent at its connection or queue limit answers
  with an :data:`OP_BUSY` frame instead of silently queueing: a busy
  *hello* (``{"op": "busy", "reason": ...}``) bounces a whole connection,
  a busy *job* frame (``{"job": id, "op": "busy"}``) bounces one frame,
  and the coordinator treats both as backoff-and-retry rather than
  failure.

Heartbeats and timing reports were added in wire version 2, admission
rejects in version 3; peers refuse to talk across versions at the
handshake (failing loudly beats a coordinator pinging an agent that will
drop the connection).
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
import zlib

import numpy as np

from repro.runtime.transport import ArrayShipment

#: First bytes of every frame; a connection that opens with anything else is
#: not speaking this protocol and is dropped immediately.
MAGIC = b"RBWP"

#: Protocol version; bumped on any frame-layout or message-contract change.
#: Agents and coordinators refuse to talk across versions (failing loudly
#: beats deserialising garbage).  v2 added heartbeat control frames and the
#: ``"elapsed"`` timing report in result frames; v3 added :data:`OP_BUSY`
#: admission rejects.
WIRE_VERSION = 3

#: Control-frame operations (the ``"op"`` key of a control message).
#: ``OP_PING``/``OP_PONG`` are the heartbeat pair — answered by the agent's
#: serve loop directly, never queued behind jobs; ``OP_SHUTDOWN`` asks the
#: agent to drop the connection gracefully; ``OP_BUSY`` is the admission
#: reject — as a hello it bounces the connection, with a ``"job"`` key it
#: bounces one frame (the coordinator backs off and retries either way).
OP_PING = "ping"
OP_PONG = "pong"
OP_SHUTDOWN = "shutdown"
OP_BUSY = "busy"

#: Flag bit: the payload section is zlib-compressed.
FLAG_ZLIB = 0x01

#: Payloads at least this long are candidates for zlib compression (smaller
#: ones cannot win back the deflate overhead).  Purely a performance knob.
COMPRESS_MIN_BYTES = 64 * 1024

#: Hard ceiling on a single frame's payload, as a corrupted-length guard —
#: far above any real study chunk (the full Table 3 sweep ships kilobytes).
MAX_FRAME_BYTES = 1 << 33

_HEADER = struct.Struct("!4sBBxxQ")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")


class WireError(ConnectionError):
    """A malformed, truncated or protocol-incompatible frame."""


def control_message(op: str, **fields: object) -> dict[str, object]:
    """A control frame body (``{"op": op, **fields}``).

    Control frames ride the same frame layout as job frames; the ``"op"``
    key is what distinguishes them.  Heartbeats pass their sequence number
    as ``seq=``.
    """
    message: dict[str, object] = {"op": op}
    message.update(fields)
    return message


class WireShipment:
    """The wire-native twin of :class:`~repro.runtime.transport.ArrayShipment`.

    Carries a named bundle of arrays *by value* through the frame encoder
    (the arrays ride out-of-band as raw buffers) and serves the same
    consumer surface — :meth:`load`, :meth:`close`, :meth:`unlink` — so the
    worker bodies that execute against a shipment run unchanged on the far
    side of a socket.  ``unlink`` is a no-op: a wire shipment owns no shared
    segment, its backing memory is the received frame.
    """

    __slots__ = ("_arrays",)

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        self._arrays: dict[str, np.ndarray] | None = dict(arrays)

    def load(self) -> dict[str, np.ndarray]:
        """The carried arrays, keyed by name."""
        if self._arrays is None:
            raise RuntimeError("WireShipment is closed")
        return self._arrays

    def close(self) -> None:
        """Drop the local references (idempotent)."""
        self._arrays = None

    def unlink(self) -> None:
        """No-op: wire shipments own no shared-memory segment."""

    def __enter__(self) -> "WireShipment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _MessagePickler(pickle.Pickler):
    """Protocol-5 pickler that rewrites shipments into wire shipments.

    Everything else — tuples of seeds, config scalars, result dataclasses —
    pickles normally; NumPy arrays leave the stream out-of-band through the
    ``buffer_callback`` the encoder installs.
    """

    def reducer_override(self, obj: object) -> object:
        if isinstance(obj, ArrayShipment):
            # dict-copy the mapping, not the arrays: the loaded views stay
            # valid until the frame is assembled inside encode_message.
            return (WireShipment, (dict(obj.load()),))
        return NotImplemented


def encode_message(message: object) -> bytes:
    """Encode one message into a complete frame (header included)."""
    buffers: list[pickle.PickleBuffer] = []
    body_io = io.BytesIO()
    pickler = _MessagePickler(
        body_io, protocol=5, buffer_callback=buffers.append
    )
    pickler.dump(message)
    body = body_io.getvalue()
    parts: list[bytes] = [_U32.pack(len(body)), body, _U32.pack(len(buffers))]
    for buffer in buffers:
        raw = buffer.raw()
        parts.append(_U64.pack(raw.nbytes))
        parts.append(raw)
    payload = b"".join(parts)
    flags = 0
    if len(payload) >= COMPRESS_MIN_BYTES:
        compressed = zlib.compress(payload, 1)
        if len(compressed) < len(payload):
            payload = compressed
            flags |= FLAG_ZLIB
    return _HEADER.pack(MAGIC, WIRE_VERSION, flags, len(payload)) + payload


def decode_payload(payload: bytes | memoryview, flags: int) -> object:
    """Decode a frame payload (the part after the header) into the message."""
    if flags & FLAG_ZLIB:
        payload = zlib.decompress(payload)
    view = memoryview(payload)
    try:
        (body_len,) = _U32.unpack_from(view, 0)
        offset = _U32.size
        body = view[offset : offset + body_len]
        if len(body) != body_len:
            raise WireError("frame body truncated")
        offset += body_len
        (buffer_count,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        buffers: list[memoryview] = []
        for _ in range(buffer_count):
            (length,) = _U64.unpack_from(view, offset)
            offset += _U64.size
            chunk = view[offset : offset + length]
            if len(chunk) != length:
                raise WireError("frame buffer truncated")
            buffers.append(chunk)
            offset += length
    except struct.error as exc:
        raise WireError(f"malformed frame section: {exc}") from exc
    return pickle.loads(body, buffers=buffers)


def send_message(sock: socket.socket, message: object) -> None:
    """Encode ``message`` and write the frame to ``sock`` (blocking)."""
    sock.sendall(encode_message(message))


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise WireError(
                f"connection closed mid-frame ({count - remaining} of {count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> object | None:
    """Read one frame from ``sock`` and decode it.

    Returns ``None`` on a clean end-of-stream (the peer closed between
    frames); raises :class:`WireError` on truncation, bad magic or a
    protocol-version mismatch.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    magic, version, flags, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireError(
            f"wire protocol version mismatch: peer speaks {version}, "
            f"this side speaks {WIRE_VERSION}"
        )
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame of {length} bytes exceeds MAX_FRAME_BYTES")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise WireError("connection closed before frame payload")
    return decode_payload(payload, flags)
