"""The persistent study worker pools (process lane and thread lane).

Before the runtime layer every study call spawned (and tore down) its own
:class:`multiprocessing.Pool`; on the Table 3 practical sweep the spawn alone
cost more than the whole measured execution.  :class:`StudyPool` wraps one
pool that is created once per process and reused by every study and CLI
invocation (:func:`get_pool`).  Reuse is free correctness-wise: every task
ships its own derived seed, so results are bit-identical for any pool
lifetime, submission order or worker count — the determinism suite asserts
exactly that across back-to-back studies on one pool.

:class:`ThreadStudyPool` is the **thread lane**: the same submit/collect
contract served by threads in the parent process.  Its win is that threads
share the parent's address space, so the lane skips
:class:`~repro.runtime.transport.ArrayShipment` entirely: workers read the
parent's compiled arrays and cost stacks **in place** — no pickling, no
shared-memory segment, no per-chunk decode, no cross-process result
round-trip.  The measured-execution hot loop is largely Python and holds
the GIL on today's CPython, so the lane buys *saved shipping*, not parallel
compute — which is exactly why ``executor="auto"`` (see
:mod:`repro.runtime.chunking`) routes only small batches here: on a batch
too small to amortise shipping, zero shipping wins outright (a
free-threaded build would move that crossover sharply upward).  Both lanes
are bit-identical because the per-task seed-derivation contract is
lane-independent.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool

#: ``kind`` values a study pool can report (``executor="auto"`` resolves to
#: one of these per fan-out; see :func:`repro.runtime.chunking.choose_executor`).
POOL_KINDS = ("process", "thread")


class StudyPool:
    """A reusable multiprocessing pool with an async submission surface.

    Tasks submitted here are pickled to worker *processes*; bulk arrays
    should travel through :class:`~repro.runtime.transport.ArrayShipment`
    rather than the task pickle.  See :class:`ThreadStudyPool` for the
    shipping-free thread lane with the same contract.

    Parameters
    ----------
    workers:
        Number of worker processes (at least 2 — a one-worker pool is always
        slower than running in-process, so the studies never build one).
    """

    #: Which lane this pool serves; dispatch code routes shipping-free
    #: submissions to ``"thread"`` pools and shipped ones to ``"process"``.
    kind = "process"

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError(f"a StudyPool needs at least 2 workers, got {workers}")
        self._workers = int(workers)
        self._pool: multiprocessing.pool.Pool | None = self._make_pool()

    def _make_pool(self) -> multiprocessing.pool.Pool:
        # Start the shared-memory resource tracker *before* forking the
        # workers: children then inherit the parent's tracker, so a worker's
        # attach-registration and the parent's unlink-unregistration meet in
        # the same bookkeeping and segments are never reported as leaked.
        try:  # pragma: no cover - depends on platform support
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        return multiprocessing.Pool(processes=self._workers)

    @property
    def workers(self) -> int:
        """Number of worker processes."""
        return self._workers

    @property
    def alive(self) -> bool:
        """Whether the pool can still accept work."""
        return self._pool is not None

    def _require(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            raise RuntimeError("StudyPool is closed")
        return self._pool

    def submit(self, fn, args) -> multiprocessing.pool.AsyncResult:
        """Submit ``fn(args)`` and return the :class:`AsyncResult` handle.

        This is the pipelining primitive: the caller keeps constructing the
        next batch while the workers chew on this one.
        """
        return self._require().apply_async(fn, (args,))

    def imap_unordered(self, fn, iterable):
        """Unordered streaming map over the pool (completion order)."""
        return self._require().imap_unordered(fn, iterable)

    def close(self) -> None:
        """Terminate the workers and release the pool."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "StudyPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadStudyPool(StudyPool):
    """The thread-lane twin of :class:`StudyPool`: same contract, no shipping.

    Workers are threads of the parent process, so submitted jobs receive
    their arguments **by reference** — compiled programs, cost stacks and
    result lists cross no process boundary and are never pickled.  On
    CPython the measured hot loop holds the GIL, so the lane's value is the
    shipping it *doesn't* do, not parallel compute; for small batches that
    saved shipping dwarfs the lost overlap, which is exactly when
    ``executor="auto"`` selects this lane.  The per-task seed-derivation
    contract is untouched, so results are bit-identical to the process lane
    and the inline path.
    """

    kind = "thread"

    def _make_pool(self) -> multiprocessing.pool.Pool:
        return multiprocessing.pool.ThreadPool(processes=self._workers)


_global_pools: dict[str, StudyPool | None] = {kind: None for kind in POOL_KINDS}


def get_pool(workers: int, kind: str = "process") -> StudyPool:
    """The process-wide persistent pool of one lane, created on first use.

    One pool per ``kind`` (``"process"`` — the default — or ``"thread"``) is
    kept alive for the life of the process.  An alive pool with at least
    ``workers`` workers is reused as-is (chunking decisions use the
    *requested* count, so results never depend on the pool that happens to
    serve them); asking for more workers than the current pool has replaces
    it.
    """
    if kind not in POOL_KINDS:
        raise ValueError(f"pool kind must be one of {POOL_KINDS}, got {kind!r}")
    pool = _global_pools[kind]
    if pool is None or not pool.alive or pool.workers < workers:
        if pool is not None:
            pool.close()
        pool_class = ThreadStudyPool if kind == "thread" else StudyPool
        pool = pool_class(workers)
        _global_pools[kind] = pool
    return pool


def shutdown_pool() -> None:
    """Tear every persistent pool down (no-op when none exists)."""
    for kind, pool in _global_pools.items():
        if pool is not None:
            pool.close()
            _global_pools[kind] = None


# Pool workers are daemonic, so they die with the process either way; the
# explicit shutdown just silences "leaked pool" ResourceWarnings on exit.
atexit.register(shutdown_pool)
