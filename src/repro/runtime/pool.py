"""The persistent study worker pools (process lane and thread lane).

Before the runtime layer every study call spawned (and tore down) its own
:class:`multiprocessing.Pool`; on the Table 3 practical sweep the spawn alone
cost more than the whole measured execution.  :class:`StudyPool` wraps one
pool that is created once per process and reused by every study and CLI
invocation (:func:`get_pool`).  Reuse is free correctness-wise: every task
ships its own derived seed, so results are bit-identical for any pool
lifetime, submission order or worker count — the determinism suite asserts
exactly that across back-to-back studies on one pool.

:class:`ThreadStudyPool` is the **thread lane**: the same submit/collect
contract served by threads in the parent process.  Its win is that threads
share the parent's address space, so the lane skips
:class:`~repro.runtime.transport.ArrayShipment` entirely: workers read the
parent's compiled arrays and cost stacks **in place** — no pickling, no
shared-memory segment, no per-chunk decode, no cross-process result
round-trip.  The measured-execution hot loop is largely Python and holds
the GIL on today's CPython, so the lane buys *saved shipping*, not parallel
compute — which is exactly why ``executor="auto"`` (see
:mod:`repro.runtime.chunking`) routes only small batches here: on a batch
too small to amortise shipping, zero shipping wins outright (a
free-threaded build would move that crossover sharply upward).  Both lanes
are bit-identical because the per-task seed-derivation contract is
lane-independent.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool
import threading
from typing import Any, Callable, Iterable, Iterator

#: ``kind`` values a study pool can report (``executor="auto"`` resolves to
#: ``"process"`` or ``"thread"`` per fan-out — see
#: :func:`repro.runtime.chunking.choose_executor`; ``"remote"`` is only ever
#: an explicit choice, see :mod:`repro.runtime.remote`).
POOL_KINDS = ("process", "thread", "remote")


class StudyPool:
    """A reusable multiprocessing pool with an async submission surface.

    Tasks submitted here are pickled to worker *processes*; bulk arrays
    should travel through :class:`~repro.runtime.transport.ArrayShipment`
    rather than the task pickle.  See :class:`ThreadStudyPool` for the
    shipping-free thread lane with the same contract.

    Parameters
    ----------
    workers:
        Number of worker processes (at least 2 — a one-worker pool is always
        slower than running in-process, so the studies never build one).
    """

    #: Which lane this pool serves; dispatch code routes shipping-free
    #: submissions to ``"thread"`` pools and shipped ones to ``"process"``.
    kind = "process"

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError(f"a StudyPool needs at least 2 workers, got {workers}")
        self._workers = int(workers)
        self._pool: multiprocessing.pool.Pool | None = self._make_pool()

    def _make_pool(self) -> multiprocessing.pool.Pool:
        # Start the shared-memory resource tracker *before* forking the
        # workers: children then inherit the parent's tracker, so a worker's
        # attach-registration and the parent's unlink-unregistration meet in
        # the same bookkeeping and segments are never reported as leaked.
        try:  # pragma: no cover - depends on platform support
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        return multiprocessing.Pool(processes=self._workers)

    @property
    def workers(self) -> int:
        """Number of worker processes."""
        return self._workers

    @property
    def alive(self) -> bool:
        """Whether the pool can still accept work."""
        return self._pool is not None

    def _require(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            raise RuntimeError("StudyPool is closed")
        return self._pool

    def submit(
        self,
        fn: Callable[[Any], Any],
        args: Any,
        units: float | None = None,
        callback: Callable[[Any], object] | None = None,
        error_callback: Callable[[BaseException], object] | None = None,
    ) -> Any:
        """Submit ``fn(args)`` and return the :class:`AsyncResult` handle.

        This is the pipelining primitive: the caller keeps constructing the
        next batch while the workers chew on this one.  ``units`` is the
        job's estimated cost in the shared cost-unit scale — local lanes
        ignore it (their workers are identical by construction); the remote
        lane uses it for throughput-proportional routing, so drivers pass
        it on every lane and stay lane-agnostic.  ``callback`` /
        ``error_callback`` pass straight through to
        :meth:`~multiprocessing.pool.Pool.apply_async` — the remote lane's
        degradation path drains chunks here and still needs completion
        notifications without blocking a thread per job.
        """
        return self._require().apply_async(
            fn, (args,), callback=callback, error_callback=error_callback
        )

    def imap_unordered(
        self, fn: Callable[[Any], Any], iterable: Iterable[Any]
    ) -> Iterator[Any]:
        """Unordered streaming map over the pool (completion order)."""
        return self._require().imap_unordered(fn, iterable)

    def close(self) -> None:
        """Terminate the workers and release the pool."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "StudyPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ThreadStudyPool(StudyPool):
    """The thread-lane twin of :class:`StudyPool`: same contract, no shipping.

    Workers are threads of the parent process, so submitted jobs receive
    their arguments **by reference** — compiled programs, cost stacks and
    result lists cross no process boundary and are never pickled.  On
    CPython the measured hot loop holds the GIL, so the lane's value is the
    shipping it *doesn't* do, not parallel compute; for small batches that
    saved shipping dwarfs the lost overlap, which is exactly when
    ``executor="auto"`` selects this lane.  The per-task seed-derivation
    contract is untouched, so results are bit-identical to the process lane
    and the inline path.
    """

    kind = "thread"

    def _make_pool(self) -> multiprocessing.pool.Pool:
        return multiprocessing.pool.ThreadPool(processes=self._workers)


#: Serialises pool creation/replacement: two threads racing get_pool() must
#: not each build (and half-leak) a pool for the same lane.
_pools_lock = threading.Lock()
_global_pools: dict[str, StudyPool | None] = {  # guarded-by: _pools_lock
    kind: None for kind in POOL_KINDS
}


def get_pool(
    workers: int,
    kind: str = "process",
    hosts: str | Iterable[tuple[str, int]] | None = None,
) -> StudyPool:
    """The process-wide persistent pool of one lane, created on first use.

    One pool per ``kind`` (``"process"`` — the default — ``"thread"`` or
    ``"remote"``) is kept alive for the life of the process.  An alive pool
    with at least ``workers`` workers is reused as-is (chunking decisions
    use the *requested* count, so results never depend on the pool that
    happens to serve them); asking for more workers than the current pool
    has replaces it.

    ``hosts`` only applies to the remote lane: a ``"host:port,host:port"``
    agent list (default: the ``REPRO_HOSTS`` environment variable, then
    loopback mode — agents auto-spawned as local subprocesses).  A cached
    remote pool is replaced whenever the requested hosts differ from the
    ones it is connected to.  When ``hosts`` names real agents, the pool's
    capacity is whatever those agents advertise — the ``workers`` argument
    is a loopback-mode sizing hint only.
    """
    if kind not in POOL_KINDS:
        raise ValueError(f"pool kind must be one of {POOL_KINDS}, got {kind!r}")
    with _pools_lock:
        pool = _global_pools[kind]
        if kind == "remote":
            from repro.runtime.remote import RemoteStudyPool, resolve_hosts

            spec = resolve_hosts(hosts)
            if (
                pool is None
                or not pool.alive
                or getattr(pool, "hosts_spec", None) != spec
                or (spec is None and pool.workers < workers)
            ):
                if pool is not None:
                    pool.close()
                pool = RemoteStudyPool(workers, hosts=spec)
                _global_pools[kind] = pool
            return pool
        if pool is None or not pool.alive or pool.workers < workers:
            if pool is not None:
                pool.close()
            pool_class = ThreadStudyPool if kind == "thread" else StudyPool
            pool = pool_class(workers)
            _global_pools[kind] = pool
        return pool


def engage_remote_lane(
    pool: Any,
    executor: str | None,
    workers: int | None,
    worker_count: int,
    hosts: str | Iterable[tuple[str, int]] | None,
    transport: str | None = None,
) -> tuple[Any, int]:
    """Resolve the fan-out preamble of one study call (shared by every driver).

    Returns a possibly-updated ``(pool, worker_count)``, subsuming the two
    steps every driver needs in the same order:

    * an explicit ``pool=`` with no ``workers=`` is an explicit request for
      fan-out, so the worker count lifts to the pool's;
    * when ``executor`` resolves to ``"remote"`` (argument or
      ``REPRO_EXECUTOR``) and no explicit pool was passed, the persistent
      remote pool is engaged — and, because remote capacity lives on the
      agents rather than in a local ``workers=`` knob, a worker count that
      would otherwise mean "in-process" lifts to the agents' advertised
      total.  An *explicit* ``workers=0``/``1`` (the ``workers`` argument,
      as opposed to the resolved ``worker_count``) still means in-process:
      naming a lane never overrides an explicit request not to fan out.
      ``transport="legacy"`` — the fresh-process benchmark baseline — never
      engages the remote lane.

    Every other combination passes through untouched.
    """
    from repro.runtime.chunking import resolve_executor

    if workers is None and worker_count == 0 and pool is not None:
        worker_count = pool.workers
    if pool is not None or transport == "legacy":
        return pool, worker_count
    if resolve_executor(executor) != "remote":
        return pool, worker_count
    if workers is not None and worker_count < 2:
        return pool, worker_count
    pool = get_pool(max(worker_count, 2), kind="remote", hosts=hosts)
    if worker_count < 2:
        worker_count = pool.workers
    return pool, worker_count


def shutdown_pool() -> None:
    """Tear every persistent pool down (no-op when none exists)."""
    with _pools_lock:
        for kind, pool in _global_pools.items():
            if pool is not None:
                pool.close()
                _global_pools[kind] = None


# Pool workers are daemonic, so they die with the process either way; the
# explicit shutdown just silences "leaked pool" ResourceWarnings on exit.
atexit.register(shutdown_pool)
