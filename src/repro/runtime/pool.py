"""The persistent study worker pool.

Before the runtime layer every study call spawned (and tore down) its own
:class:`multiprocessing.Pool`; on the Table 3 practical sweep the spawn alone
cost more than the whole measured execution.  :class:`StudyPool` wraps one
pool that is created once per process and reused by every study and CLI
invocation (:func:`get_pool`).  Reuse is free correctness-wise: every task
ships its own derived seed, so results are bit-identical for any pool
lifetime, submission order or worker count — the determinism suite asserts
exactly that across back-to-back studies on one pool.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool


class StudyPool:
    """A reusable multiprocessing pool with an async submission surface.

    Parameters
    ----------
    workers:
        Number of worker processes (at least 2 — a one-worker pool is always
        slower than running in-process, so the studies never build one).
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError(f"a StudyPool needs at least 2 workers, got {workers}")
        self._workers = int(workers)
        # Start the shared-memory resource tracker *before* forking the
        # workers: children then inherit the parent's tracker, so a worker's
        # attach-registration and the parent's unlink-unregistration meet in
        # the same bookkeeping and segments are never reported as leaked.
        try:  # pragma: no cover - depends on platform support
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        self._pool: multiprocessing.pool.Pool | None = multiprocessing.Pool(
            processes=self._workers
        )

    @property
    def workers(self) -> int:
        """Number of worker processes."""
        return self._workers

    @property
    def alive(self) -> bool:
        """Whether the pool can still accept work."""
        return self._pool is not None

    def _require(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            raise RuntimeError("StudyPool is closed")
        return self._pool

    def submit(self, fn, args) -> multiprocessing.pool.AsyncResult:
        """Submit ``fn(args)`` and return the :class:`AsyncResult` handle.

        This is the pipelining primitive: the caller keeps constructing the
        next batch while the workers chew on this one.
        """
        return self._require().apply_async(fn, (args,))

    def imap_unordered(self, fn, iterable):
        """Unordered streaming map over the pool (completion order)."""
        return self._require().imap_unordered(fn, iterable)

    def close(self) -> None:
        """Terminate the workers and release the pool."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "StudyPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_global_pool: StudyPool | None = None


def get_pool(workers: int) -> StudyPool:
    """The process-wide persistent pool, created on first use.

    An alive pool with at least ``workers`` workers is reused as-is (chunking
    decisions use the *requested* count, so results never depend on the pool
    that happens to serve them); asking for more workers than the current
    pool has replaces it.
    """
    global _global_pool
    if (
        _global_pool is None
        or not _global_pool.alive
        or _global_pool.workers < workers
    ):
        if _global_pool is not None:
            _global_pool.close()
        _global_pool = StudyPool(workers)
    return _global_pool


def shutdown_pool() -> None:
    """Tear the persistent pool down (no-op when none exists)."""
    global _global_pool
    if _global_pool is not None:
        _global_pool.close()
        _global_pool = None


# Pool workers are daemonic, so they die with the process either way; the
# explicit shutdown just silences "leaked pool" ResourceWarnings on exit.
atexit.register(shutdown_pool)
