"""Shared socket-serving scaffolding for the runtime's daemons.

Two long-running servers speak the length-prefixed wire protocol
(:mod:`repro.runtime.wire`): the study **agent**
(:class:`repro.runtime.remote.AgentServer`, the ``worker serve`` CLI) and
the **schedule service** (:class:`repro.runtime.service.ScheduleService`,
the ``service serve`` CLI).  Both need the same serving skeleton — a bound
listener, a thread-per-connection accept loop, connection admission with a
clean ``BUSY`` bounce instead of silent TCP-backlog queueing, per-frame
in-flight accounting, and the graceful SIGTERM drain contract — so that
skeleton lives here once, as :class:`FrameServer`.

A subclass provides the protocol on top of the skeleton:

* :meth:`FrameServer._hello_message` — the first frame of every admitted
  connection (protocol version plus capability fields);
* :meth:`FrameServer._handle_frame` — one decoded, non-control frame
  (``PING`` and ``SHUTDOWN`` are answered by the skeleton itself, so a
  busy server still proves it is alive);
* :meth:`FrameServer._error_reply` — the degraded reply sent when a
  subclass reply fails to serialise (replies must echo the protocol's
  correlation key, which only the subclass knows);
* :meth:`FrameServer._on_close` — extra teardown (worker pools, caches).

The drain contract is the one PR 8 established for agents and is shared
verbatim: :meth:`FrameServer.begin_drain` is async-signal-safe (an Event
set plus a listener close, no locks, callable from a SIGTERM handler),
after which new connections and new frames bounce ``BUSY`` while admitted
frames finish and flush; :meth:`FrameServer.drain` then waits for the last
pending frame.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable

from repro.runtime import wire

__all__ = ["FrameServer"]


class FrameServer:
    """A length-prefixed-frame server: accept loop, admission, drain.

    Parameters
    ----------
    host, port:
        Listen address; port ``0`` lets the OS pick (the bound address is
        available as :attr:`address` after :meth:`bind`).
    max_clients:
        Concurrent client connections served before new connections are
        bounced with a :data:`~repro.runtime.wire.OP_BUSY` hello.
    queue:
        Bound on frames accepted but not yet answered, across all
        clients; ``0`` is unbounded (the historical agent behaviour).
    """

    #: Thread name for per-connection threads (subclasses override).
    thread_name = "repro-serve-conn"
    #: Reason string carried by the ``BUSY`` hello bounce.
    busy_reason = "server at max clients or draining"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_clients: int,
        queue: int = 0,
    ) -> None:
        if max_clients < 1:
            raise ValueError(
                f"a server serves at least 1 client, got {max_clients}"
            )
        if queue < 0:
            raise ValueError(f"--queue is a bound >= 0 (0: unbounded), got {queue}")
        self._host = host
        self._port = port
        self.max_clients = int(max_clients)
        self._queue_bound = int(queue)
        self._listener: socket.socket | None = None
        self._stopped = threading.Event()
        #: Set by :meth:`begin_drain` (SIGTERM): finish what is in flight,
        #: refuse everything new.  An Event, not a lock-guarded flag — the
        #: drain request comes from a signal handler, which must not take
        #: locks the interrupted main thread may hold.
        self._drain = threading.Event()
        #: Admission state; the Condition doubles as its lock and signals
        #: :meth:`drain` when the last pending frame flushes.
        self._idle = threading.Condition()
        self._active = 0  # guarded-by: _idle
        self._pending = 0  # guarded-by: _idle
        self._connections: set[socket.socket] = set()  # guarded-by: _idle
        self.address: tuple[str, int] | None = None

    # -- subclass protocol surface --------------------------------------------

    def _hello_message(self) -> dict[str, Any]:
        """The first frame of every admitted connection."""
        raise NotImplementedError

    def _handle_frame(
        self, message: dict[str, Any], reply: Callable[[dict[str, Any]], None]
    ) -> bool:
        """Serve one non-control frame; return ``False`` to drop the connection.

        ``reply`` is safe to call from any thread (sends are serialised per
        connection) and may be called zero or many times per frame.  The
        subclass is responsible for :meth:`_admit_job` /
        :meth:`_job_finished` accounting around any work it starts.
        """
        raise NotImplementedError

    def _error_reply(
        self, message: dict[str, Any], exc: Exception
    ) -> dict[str, Any]:
        """The degraded frame sent when a reply cannot be serialised."""
        return {"error": RuntimeError(f"server could not serialise the reply: {exc}")}

    def _on_connection(self) -> None:
        """Hook run once per admitted connection, after the hello."""

    def _on_close(self) -> None:
        """Hook run by :meth:`close` after the sockets are torn down."""

    # -- serving skeleton ------------------------------------------------------

    def bind(self) -> tuple[str, int]:
        """Bind the listen socket and return the concrete ``(host, port)``."""
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            listener.listen(8)
            self._listener = listener
            self.address = listener.getsockname()[:2]
        assert self.address is not None
        return self.address

    def serve_forever(self) -> None:
        """Accept client connections until :meth:`close` is called."""
        self.bind()
        listener = self._listener
        while listener is not None and not self._stopped.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                break
            with self._idle:
                admitted = (
                    not self._drain.is_set() and self._active < self.max_clients
                )
                if admitted:
                    self._active += 1
                    self._connections.add(conn)
            if not admitted:
                self._reject_connection(conn)
                continue
            threading.Thread(
                target=self._connection_thread,
                args=(conn,),
                name=self.thread_name,
                daemon=True,
            ).start()

    def _reject_connection(self, conn: socket.socket) -> None:
        """Bounce a connection with a ``BUSY`` hello and close it."""
        try:
            wire.send_message(
                conn, wire.control_message(wire.OP_BUSY, reason=self.busy_reason)
            )
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _connection_thread(self, conn: socket.socket) -> None:
        try:
            self._serve_connection(conn)
        finally:
            with self._idle:
                self._active -= 1
                self._connections.discard(conn)
                self._idle.notify_all()
            try:
                conn.close()
            except OSError:
                pass

    def _admit_job(self) -> bool:
        """Account one more in-flight frame, unless draining or over bound."""
        if self._drain.is_set():
            return False
        with self._idle:
            if self._queue_bound > 0 and self._pending >= self._queue_bound:
                return False
            self._pending += 1
        return True

    def _job_finished(self) -> None:
        with self._idle:
            self._pending -= 1
            self._idle.notify_all()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_lock = threading.Lock()

        def reply(message: dict[str, Any]) -> None:
            # Unserialisable replies degrade to a descriptive error frame
            # (echoing the subclass's correlation key); an unreachable
            # client is simply gone, so send failures are swallowed.
            try:
                frame = wire.encode_message(message)
            except Exception as exc:  # noqa: BLE001 - degrade, don't die
                frame = wire.encode_message(self._error_reply(message, exc))
            try:
                with send_lock:
                    conn.sendall(frame)
            except OSError:
                pass

        wire.send_message(conn, self._hello_message())
        self._on_connection()
        while not self._stopped.is_set():
            try:
                message = wire.recv_message(conn)
            except Exception:  # noqa: BLE001 - a frame that cannot be
                # decoded (truncation, version skew, a class this server's
                # build cannot import) poisons the stream: drop the
                # connection — the client reconnects or requeues — and go
                # back to accepting instead of crashing the whole server.
                break
            if message is None or not isinstance(message, dict):
                break
            op = message.get("op")
            if op == wire.OP_PING:
                # Answered here, from the serve loop, not through any work
                # path: pings must come back even while the server is busy.
                reply(wire.control_message(wire.OP_PONG, seq=message.get("seq")))
                continue
            if op == wire.OP_SHUTDOWN:
                break
            if not self._handle_frame(message, reply):
                break

    # -- drain / teardown ------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether a graceful shutdown has been requested."""
        return self._drain.is_set()

    def begin_drain(self) -> None:
        """Request a graceful shutdown (async-signal-safe: takes no locks).

        New connections and new frames are refused ``BUSY`` from this point
        on; frames already admitted keep executing and their results still
        flush.  Closing the listener kicks :meth:`serve_forever` out of its
        blocking accept, so the serving thread can proceed to :meth:`drain`
        and exit cleanly — the foreground-daemon SIGTERM path.
        """
        self._drain.set()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait for every admitted frame to finish and its result to flush.

        Returns whether the server fully drained within ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._pending > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self) -> None:
        """Stop accepting, drop connections, run subclass teardown (idempotent)."""
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._idle:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass
        self._on_close()
