"""The distributed executor lane: shard studies across machines.

The runtime's other two lanes place work inside one process tree — threads
(:class:`~repro.runtime.pool.ThreadStudyPool`) and local processes
(:class:`~repro.runtime.pool.StudyPool`).  This module adds the third
``kind``: a :class:`RemoteStudyPool` (``executor="remote"``) that serves the
exact submit/collect contract of :class:`~repro.runtime.pool.StudyPool`, but
sends each chunk over a socket to a standalone **worker agent** —
``repro-bcast worker serve --bind HOST:PORT --workers N`` — where the agent
fans it out over its own local process pool.  Because every task derives its
own seed, sharding a study over any number of agents, in any join order,
with any mid-run agent loss, is bit-identical to the inline path — the same
invariant the thread and process lanes already carry, extended across
machines.

**Topology.**  One coordinator (the study process), N agents.  Agents are
named by ``hosts=`` / ``--hosts a:port,b:port`` / the ``REPRO_HOSTS``
environment variable; when none are named the pool runs in **loopback
mode**: it spawns :data:`LOOPBACK_AGENTS` agents as local subprocesses of
this machine, so tests, benchmarks and a first try need no second box.

**Dispatch.**  Chunk jobs are routed to the least-loaded alive agent
(outstanding jobs weighted by the agent's worker count).  The chunks
themselves are cut by the callers through the shared cost-balanced
partitioner (:func:`repro.runtime.chunking.partition_by_cost`), which never
splits a warm chain — so a chain executes whole on one agent, exactly as it
executes whole on one local worker.

**Failure semantics.**  Every in-flight job keeps its encoded frame.  When
an agent's connection drops mid-run (process killed, network cut), the
coordinator marks it dead and re-sends that agent's outstanding frames to
the surviving agents; only when *no* agent survives does the study fail.  A
result that arrives twice for one job — an agent raced its own loss — is
counted and discarded (first delivery wins; both deliveries carry bitwise
the same numbers, so which one wins is unobservable).

**Trust model.**  An agent executes functions its coordinator names (by
``module:qualname``), so it must only be exposed to coordinators you trust
— bind agents to loopback or a private interconnect, exactly like any
``multiprocessing`` worker endpoint.
"""

from __future__ import annotations

import itertools
import os
import queue
import re
import socket
import subprocess
import sys
import threading
import time
from importlib import import_module
from pathlib import Path

import multiprocessing
import multiprocessing.pool

from repro.runtime import wire
from repro.runtime.transport import ArrayShipment

#: Environment variable naming the agents (``host:port,host:port``) consulted
#: when no ``hosts=`` argument is given; unset means loopback mode.
HOSTS_ENV_VAR = "REPRO_HOSTS"

#: Port an agent listens on when a host is named without one.
DEFAULT_AGENT_PORT = 7029

#: Number of agents a loopback pool spawns (each fronting an equal share of
#: the requested workers).  Two agents is the smallest topology that
#: exercises cross-agent routing, requeueing and join order.
LOOPBACK_AGENTS = 2

#: Seconds to wait for an agent connection / hello / loopback announce.
CONNECT_TIMEOUT = 30.0

_ANNOUNCE = re.compile(r"listening on ([^\s:]+):(\d+)")


def parse_hosts(spec: str) -> tuple[tuple[str, int], ...]:
    """Parse ``"a:7029,b"`` into ``(("a", 7029), ("b", DEFAULT_AGENT_PORT))``.

    IPv6 literals use the bracket convention (``[::1]:7029``); a bare
    multi-colon address (``::1``) is taken as a host with the default port
    rather than misreading its last hextet as one.
    """
    entries: list[tuple[str, int]] = []
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        port_text = ""
        if raw.startswith("["):
            host, bracket, rest = raw[1:].partition("]")
            if not bracket or (rest and not rest.startswith(":")):
                raise ValueError(
                    f"bad agent address {raw!r}: IPv6 literals are "
                    "[address] or [address]:port"
                )
            port_text = rest[1:]
        elif raw.count(":") == 1:
            host, _, port_text = raw.partition(":")
        else:  # hostname/IPv4, or a bare (port-less) IPv6 literal
            host = raw
        if not host:
            raise ValueError(f"bad agent address {raw!r}: empty host")
        if port_text:
            try:
                port = int(port_text)
            except ValueError as exc:
                raise ValueError(
                    f"bad agent address {raw!r}: port must be an integer"
                ) from exc
        else:
            port = DEFAULT_AGENT_PORT
        entries.append((host, port))
    if not entries:
        raise ValueError(f"no agent addresses in hosts spec {spec!r}")
    return tuple(entries)


def resolve_hosts(hosts) -> tuple[tuple[str, int], ...] | None:
    """Normalise a ``hosts=`` argument to an address tuple (or loopback).

    ``None`` consults the ``REPRO_HOSTS`` environment variable; an unset
    variable resolves to ``None`` — loopback mode.  Strings are parsed with
    :func:`parse_hosts`; pre-parsed address sequences pass through.
    """
    if hosts is None:
        hosts = os.environ.get(HOSTS_ENV_VAR, "").strip() or None
        if hosts is None:
            return None
    if isinstance(hosts, str):
        return parse_hosts(hosts)
    return tuple((str(host), int(port)) for host, port in hosts)


def _function_name(fn) -> str:
    """The importable ``module:qualname`` of a worker body."""
    name = f"{fn.__module__}:{fn.__qualname__}"
    if "<" in name:
        raise ValueError(
            f"remote jobs need an importable module-level function, got {name}"
        )
    return name


def _resolve_function(name: str):
    """Import the worker body an incoming job names (agent side)."""
    module_name, _, qualname = name.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed remote function name {name!r}")
    target = import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


def _localise(obj, repacked: list):
    """Replace wire shipments with freshly packed local shipments.

    The agent fans jobs out over its own process pool, so the arrays that
    crossed the wire take their last hop through the local shared-memory
    transport (pickle fallback included) instead of being re-pickled per
    worker.  ``repacked`` collects the shipments so the agent can unlink
    them once the job completes.
    """
    if isinstance(obj, wire.WireShipment):
        shipment = ArrayShipment.pack(obj.load(), transport="auto")
        repacked.append(shipment)
        return shipment
    if isinstance(obj, tuple):
        return tuple(_localise(item, repacked) for item in obj)
    if isinstance(obj, list):
        return [_localise(item, repacked) for item in obj]
    if isinstance(obj, dict):
        return {key: _localise(value, repacked) for key, value in obj.items()}
    return obj


def _picklable_error(exc: BaseException) -> BaseException:
    """The exception itself when it pickles, a faithful stand-in otherwise."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


# -- the agent (server side) ----------------------------------------------------------


class AgentServer:
    """One study agent: a socket front on a local worker pool.

    Serves one coordinator connection at a time (reconnects are accepted —
    the local pool persists across connections, like every runtime pool).
    Each incoming job frame is dispatched to the local pool immediately, so
    an agent keeps all its workers busy while more chunks stream in; results
    are framed back in completion order.

    Parameters
    ----------
    host, port:
        Listen address; port ``0`` lets the OS pick (the bound address is
        available as :attr:`address` after :meth:`bind`).
    workers:
        Local worker processes this agent fronts.  With one worker, jobs
        execute in-process (no pool spawn) — the loopback default.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, workers: int = 1):
        if workers < 1:
            raise ValueError(f"an agent needs at least 1 worker, got {workers}")
        self._host = host
        self._port = port
        self.workers = int(workers)
        self._listener: socket.socket | None = None
        self._pool = None
        self._stopped = threading.Event()
        self.address: tuple[str, int] | None = None

    def bind(self) -> tuple[str, int]:
        """Bind the listen socket and return the concrete ``(host, port)``."""
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            listener.listen(8)
            self._listener = listener
            self.address = listener.getsockname()[:2]
        return self.address

    def _ensure_pool(self):
        if self._pool is None:
            if self.workers >= 2:
                self._pool = multiprocessing.Pool(processes=self.workers)
            else:
                self._pool = multiprocessing.pool.ThreadPool(processes=1)
        return self._pool

    def serve_forever(self) -> None:
        """Accept coordinator connections until :meth:`close` is called."""
        self.bind()
        while not self._stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break
            try:
                self._serve_connection(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_lock = threading.Lock()

        def reply(message: dict) -> None:
            # Unpicklable results/errors degrade to a descriptive error
            # frame; an unreachable coordinator is simply gone (it will
            # requeue elsewhere), so send failures are swallowed.
            try:
                frame = wire.encode_message(message)
            except Exception as exc:  # noqa: BLE001 - degrade, don't die
                frame = wire.encode_message(
                    {
                        "job": message.get("job"),
                        "error": RuntimeError(
                            f"agent could not serialise the reply: {exc}"
                        ),
                    }
                )
            try:
                with send_lock:
                    conn.sendall(frame)
            except OSError:
                pass

        wire.send_message(
            conn, {"hello": wire.WIRE_VERSION, "workers": self.workers}
        )
        pool = self._ensure_pool()
        repack_locally = self.workers >= 2
        while not self._stopped.is_set():
            try:
                message = wire.recv_message(conn)
            except Exception:  # noqa: BLE001 - a frame that cannot be
                # decoded (truncation, version skew, a class this agent's
                # build cannot import) poisons the stream: drop the
                # connection — the coordinator requeues elsewhere — and go
                # back to accepting instead of crashing the whole agent.
                break
            if (
                message is None
                or not isinstance(message, dict)
                or message.get("op") == "shutdown"
                or "job" not in message
            ):
                break
            job_id = message["job"]
            try:
                fn = _resolve_function(message["fn"])
                args = message["args"]
                repacked: list[ArrayShipment] = []
                if repack_locally:
                    args = _localise(args, repacked)
            except Exception as exc:  # noqa: BLE001 - reported to coordinator
                reply({"job": job_id, "error": _picklable_error(exc)})
                continue

            def _done(value, job_id=job_id, repacked=repacked):
                reply({"job": job_id, "result": value})
                for shipment in repacked:
                    shipment.unlink()

            def _failed(exc, job_id=job_id, repacked=repacked):
                reply({"job": job_id, "error": _picklable_error(exc)})
                for shipment in repacked:
                    shipment.unlink()

            pool.apply_async(
                fn, (args,), callback=_done, error_callback=_failed
            )

    def close(self) -> None:
        """Stop accepting, tear the local pool down (idempotent)."""
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def serve_agent(
    bind: str = "127.0.0.1:0",
    workers: int = 1,
    *,
    exit_with_parent: bool = False,
) -> None:
    """Run one agent in the foreground (the ``worker serve`` CLI body).

    Announces the concrete listen address on stdout (``listening on
    host:port``) so loopback spawners — and humans — can read the
    OS-assigned port back.  ``exit_with_parent`` arms a watchdog that exits
    the agent when the spawning process dies, which is how loopback agents
    avoid outliving a killed coordinator.
    """
    import signal

    host, _, port_text = bind.rpartition(":")
    if not host or not port_text:
        raise ValueError(f"--bind must be HOST:PORT, got {bind!r}")
    server = AgentServer(host, int(port_text), workers)
    # Turn SIGTERM (coordinator close(), `kill`) into a clean interpreter
    # exit so atexit hooks — notably the shared-memory shipment sweep —
    # still run.  SIGKILL remains uncatchable; those segments fall to the
    # multiprocessing resource tracker.
    try:
        signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    bound_host, bound_port = server.bind()
    print(
        f"repro-agent listening on {bound_host}:{bound_port} "
        f"(workers={workers}, wire v{wire.WIRE_VERSION})",
        flush=True,
    )
    if exit_with_parent:
        parent = os.getppid()

        def _watchdog() -> None:
            while True:
                time.sleep(1.0)
                if os.getppid() != parent:
                    os._exit(0)

        threading.Thread(target=_watchdog, daemon=True).start()
    try:
        server.serve_forever()
    finally:
        server.close()


# -- loopback spawning ----------------------------------------------------------------


def _split_workers(total: int, agents: int) -> list[int]:
    """Split ``total`` workers across ``agents`` agents, largest share first."""
    agents = max(1, min(agents, total))
    base, extra = divmod(total, agents)
    return [base + (1 if index < extra else 0) for index in range(agents)]


def _spawn_loopback_agent(workers: int) -> tuple[subprocess.Popen, tuple[str, int]]:
    """Start one agent subprocess on this machine and read its address back."""
    import repro

    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "worker",
        "serve",
        "--bind",
        "127.0.0.1:0",
        "--workers",
        str(workers),
        "--exit-with-parent",
    ]
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, text=True, env=env
    )
    # Read the announce line through a helper thread instead of select():
    # select on a pipe is Unix-only, and a plain readline could block past
    # the deadline if the agent wedges during start-up.
    announced: queue.SimpleQueue = queue.SimpleQueue()
    threading.Thread(
        target=lambda: announced.put(process.stdout.readline()),
        daemon=True,
    ).start()
    deadline = time.monotonic() + CONNECT_TIMEOUT
    line = ""
    while time.monotonic() < deadline:
        try:
            line = announced.get(timeout=0.2)
            break
        except queue.Empty:
            if process.poll() is not None:
                raise RuntimeError(
                    f"loopback agent exited with code {process.returncode} "
                    "before announcing its address"
                )
    match = _ANNOUNCE.search(line)
    if not match:
        process.terminate()
        raise RuntimeError(
            f"loopback agent announced {line!r} instead of its address"
        )
    return process, (match.group(1), int(match.group(2)))


# -- the coordinator (client side) ----------------------------------------------------


class RemoteAsyncResult:
    """The remote twin of :class:`multiprocessing.pool.AsyncResult`."""

    __slots__ = ("_event", "_value", "_error", "_callbacks", "_lock", "job_id")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None
        self._callbacks: list = []
        self._lock = threading.Lock()
        #: The wire-level job id this handle tracks (set by ``submit``).
        self.job_id: int | None = None

    def ready(self) -> bool:
        """Whether the job's result (or failure) has arrived."""
        return self._event.is_set()

    def get(self, timeout: float | None = None):
        """Block until the result arrives; re-raise the job's failure."""
        if not self._event.wait(timeout):
            raise multiprocessing.TimeoutError("remote job still running")
        if self._error is not None:
            raise self._error
        return self._value

    def _settle(self, value, error: BaseException | None) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._value = value
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _on_done(self, callback) -> None:
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)


class _Job:
    """One submitted chunk: its frame is kept until the result lands, so a
    lost agent's in-flight work can be re-sent verbatim elsewhere."""

    __slots__ = ("job_id", "frame", "handle")

    def __init__(self, job_id: int, frame: bytes, handle: RemoteAsyncResult):
        self.job_id = job_id
        self.frame = frame
        self.handle = handle


class _AgentLink:
    """Coordinator-side connection to one agent."""

    def __init__(
        self,
        pool: "RemoteStudyPool",
        host: str,
        port: int,
        process: subprocess.Popen | None = None,
    ) -> None:
        self.pool = pool
        self.host = host
        self.port = port
        self.process = process
        self.sock: socket.socket | None = None
        self.workers = 0
        self.alive = False
        self.inflight: dict[int, _Job] = {}
        self._send_lock = threading.Lock()
        self._receiver: threading.Thread | None = None

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"

    def connect(self, timeout: float = CONNECT_TIMEOUT) -> None:
        sock = socket.create_connection((self.host, self.port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock = sock
        hello = wire.recv_message(sock)
        if not isinstance(hello, dict) or "workers" not in hello:
            sock.close()
            raise wire.WireError(
                f"agent {self.name} opened with {hello!r} instead of a hello"
            )
        sock.settimeout(None)
        self.workers = max(1, int(hello["workers"]))
        self.alive = True
        self._receiver = threading.Thread(
            target=self._receive_loop, name=f"repro-agent-rx-{self.name}",
            daemon=True,
        )
        self._receiver.start()

    def _receive_loop(self) -> None:
        try:
            while True:
                message = wire.recv_message(self.sock)
                if message is None:
                    break
                if isinstance(message, dict) and "job" in message:
                    self.pool._deliver(self, message)
        except Exception:  # noqa: BLE001 - any decode failure (WireError,
            # OSError, a pickle/zlib error from a corrupt or version-skewed
            # frame) means the stream can no longer be trusted.
            pass
        finally:
            # Unconditional: however this loop ends, the link's in-flight
            # jobs must be requeued (or failed) — never left to hang their
            # waiters forever.
            self.pool._agent_lost(self)

    def send(self, frame: bytes) -> None:
        with self._send_lock:
            self.sock.sendall(frame)

    def close(self, graceful: bool = True) -> None:
        self.alive = False
        if self.sock is not None:
            if graceful:
                try:
                    self.send(wire.encode_message({"op": "shutdown"}))
                except OSError:
                    pass
            try:
                self.sock.close()
            except OSError:
                pass
        if self.process is not None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck agent
                self.process.kill()
                self.process.wait()
            if self.process.stdout is not None:
                self.process.stdout.close()


class RemoteStudyPool:
    """The remote lane: :class:`~repro.runtime.pool.StudyPool`'s contract,
    served by worker agents over sockets.

    Parameters
    ----------
    workers:
        Total worker target in loopback mode (split across
        :data:`LOOPBACK_AGENTS` auto-spawned local agents); ignored when
        ``hosts`` names real agents, whose advertised worker counts add up
        to the pool's capacity instead.
    hosts:
        Agent addresses — a ``"host:port,host:port"`` string or a parsed
        address sequence.  ``None`` consults ``REPRO_HOSTS`` and falls back
        to loopback mode.

    The pool is used through the same three members as every other lane:
    :meth:`submit`, :meth:`imap_unordered`, :meth:`close` — which is what
    lets every study driver run remotely unchanged.
    """

    kind = "remote"

    def __init__(self, workers: int | None = None, *, hosts=None) -> None:
        self.hosts_spec = resolve_hosts(hosts)
        self._lock = threading.RLock()
        self._jobs: dict[int, _Job] = {}
        self._job_ids = itertools.count(1)
        self._closed = False
        #: Results that arrived for already-settled jobs (an agent racing its
        #: own loss); discarded, counted for observability and tests.
        self.duplicates_ignored = 0
        self._agents: list[_AgentLink] = []
        try:
            if self.hosts_spec is not None:
                for host, port in self.hosts_spec:
                    link = _AgentLink(self, host, port)
                    link.connect()
                    self._agents.append(link)
            else:
                total = max(2, int(workers or 0))
                for share in _split_workers(total, LOOPBACK_AGENTS):
                    process, (host, port) = _spawn_loopback_agent(share)
                    link = _AgentLink(self, host, port, process=process)
                    link.connect()
                    self._agents.append(link)
        except BaseException:
            for link in self._agents:
                link.close(graceful=False)
            raise

    # -- the StudyPool contract ---------------------------------------------------

    @property
    def workers(self) -> int:
        """Total advertised workers across the currently alive agents."""
        return sum(link.workers for link in self._agents if link.alive)

    @property
    def alive(self) -> bool:
        """Whether the pool can still accept work."""
        return not self._closed and any(link.alive for link in self._agents)

    def submit(self, fn, args) -> RemoteAsyncResult:
        """Frame ``fn(args)`` and send it to the least-loaded agent."""
        with self._lock:
            if self._closed:
                raise RuntimeError("RemoteStudyPool is closed")
            job_id = next(self._job_ids)
        frame = wire.encode_message(
            {"job": job_id, "fn": _function_name(fn), "args": args}
        )
        handle = RemoteAsyncResult()
        handle.job_id = job_id
        job = _Job(job_id, frame, handle)
        with self._lock:
            agent = self._pick_agent()  # before registering: a raise here
            self._jobs[job_id] = job    # must not strand the job record
            agent.inflight[job_id] = job
        try:
            agent.send(frame)
        except OSError:
            self._agent_lost(agent)
        return handle

    def imap_unordered(self, fn, iterable):
        """Submit every job now; yield results in completion order."""
        handles = [self.submit(fn, args) for args in iterable]
        done: queue.SimpleQueue = queue.SimpleQueue()
        for handle in handles:
            handle._on_done(done.put)

        def _results():
            for _ in range(len(handles)):
                yield done.get().get()

        return _results()

    def close(self) -> None:
        """Disconnect every agent, stop loopback subprocesses (idempotent).

        Jobs still pending fail with a descriptive error rather than
        hanging their waiters forever.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            orphaned = list(self._jobs.values())
            self._jobs.clear()
            agents = list(self._agents)
        for job in orphaned:
            job.handle._settle(
                None, RuntimeError("RemoteStudyPool closed with jobs pending")
            )
        for link in agents:
            link.close()

    def __enter__(self) -> "RemoteStudyPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ----------------------------------------------------------------

    def _pick_agent(self) -> _AgentLink:
        """The alive agent with the lowest load per advertised worker."""
        alive = [link for link in self._agents if link.alive]
        if not alive:
            raise RuntimeError("no remote agents available")
        return min(
            alive, key=lambda link: len(link.inflight) / link.workers
        )

    def _deliver(self, agent: _AgentLink, message: dict) -> None:
        """Settle one job from a result frame (first delivery wins)."""
        job_id = message["job"]
        with self._lock:
            job = self._jobs.pop(job_id, None)
            if job is None:
                self.duplicates_ignored += 1
                return
            for link in self._agents:
                link.inflight.pop(job_id, None)
        error = message.get("error")
        if error is not None and not isinstance(error, BaseException):
            error = RuntimeError(str(error))
        job.handle._settle(message.get("result"), error)

    def _agent_lost(self, agent: _AgentLink) -> None:
        """Mark ``agent`` dead and re-send its in-flight frames elsewhere."""
        with self._lock:
            if not agent.alive:
                return
            agent.alive = False
            orphaned = [
                job
                for job in agent.inflight.values()
                if job.job_id in self._jobs
            ]
            agent.inflight.clear()
        try:
            agent.sock.close()
        except OSError:
            pass
        if self._closed:
            return
        for job in orphaned:
            with self._lock:
                if job.job_id not in self._jobs:
                    continue  # delivered while we were requeueing
                try:
                    target = self._pick_agent()
                except RuntimeError:
                    self._jobs.pop(job.job_id, None)
                    job.handle._settle(
                        None,
                        RuntimeError(
                            f"agent {agent.name} was lost with no surviving "
                            "agents to requeue onto"
                        ),
                    )
                    continue
                target.inflight[job.job_id] = job
            try:
                target.send(job.frame)
            except OSError:
                self._agent_lost(target)
