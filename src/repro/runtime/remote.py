"""The distributed executor lane: shard studies across machines.

The runtime's other two lanes place work inside one process tree — threads
(:class:`~repro.runtime.pool.ThreadStudyPool`) and local processes
(:class:`~repro.runtime.pool.StudyPool`).  This module adds the third
``kind``: a :class:`RemoteStudyPool` (``executor="remote"``) that serves the
exact submit/collect contract of :class:`~repro.runtime.pool.StudyPool`, but
sends each chunk over a socket to a standalone **worker agent** —
``repro-bcast worker serve --bind HOST:PORT --workers N`` — where the agent
fans it out over its own local process pool.  Because every task derives its
own seed, sharding a study over any number of agents, in any join order,
with any mid-run agent loss, is bit-identical to the inline path — the same
invariant the thread and process lanes already carry, extended across
machines.

**Topology.**  One coordinator (the study process), N agents.  Agents are
named by ``hosts=`` / ``--hosts a:port,b:port`` / the ``REPRO_HOSTS``
environment variable; when none are named the pool runs in **loopback
mode**: it spawns :data:`LOOPBACK_AGENTS` agents as local subprocesses of
this machine, so tests, benchmarks and a first try need no second box.
Membership is **elastic**: agents may join a running pool mid-study through
:meth:`RemoteStudyPool.add_host` or a :meth:`RemoteStudyPool.rescan_hosts`
of ``REPRO_HOSTS``, and immediately receive work stolen from the backlogs
of the incumbents.

**Dispatch.**  The source paper's lesson — heterogeneous speeds must drive
the schedule — applies to the runtime itself.  Every link keeps a per-agent
:class:`~repro.runtime.chunking.CostModel` (seeded from the
``REPRO_COST_CACHE`` snapshot, refined from the worker-side wall time every
result frame reports), and under the default ``balancing="cost"`` each job
is routed to the agent with the lowest *estimated completion time* —
backlog units over estimated throughput — rather than the lowest job count.
Only up to :data:`PREFETCH_PER_WORKER` frames per worker are actually on
the wire per agent; the rest wait in coordinator-side queues where they can
still be **stolen**: an agent that drains early takes queued (never
in-flight) jobs from the most backlogged peer, so one slow box degrades the
sweep by its share of throughput instead of stalling it.  Chunks themselves
are cut by the callers through the shared cost-balanced partitioner
(:func:`repro.runtime.chunking.partition_by_cost`) — sized to the fleet's
throughput skew via :meth:`RemoteStudyPool.partition_weights` — and a warm
chain is never split: it executes whole on one agent, exactly as it
executes whole on one local worker.  ``balancing="count"`` keeps the
historical workers-only routing (eager send, no queues, no stealing) as the
benchmark baseline.

**Failure semantics.**  Every in-flight job keeps its encoded frame.  The
coordinator pings each agent every :data:`HEARTBEAT_INTERVAL` seconds
(``REPRO_HEARTBEAT``) and the agent answers from its serve loop, outside
the job path — so when an agent's connection drops *or* its host freezes
while the socket stays open, the coordinator marks it dead (after
:data:`HEARTBEAT_MISS_FACTOR` silent intervals) and re-routes that agent's
outstanding frames to the survivors.  A result that arrives twice for one
job — an agent raced its own loss, or executed a frame that had also been
stolen — is counted and discarded (first delivery wins; both deliveries
carry bitwise the same numbers, so which one wins is unobservable).

Four further recovery layers make the lane chaos-hardened:

* **automatic reconnect** — a lost agent enters a probation list and its
  address is re-probed with exponential backoff and jitter; a probe that
  answers re-admits the agent through the :meth:`RemoteStudyPool.add_host`
  path, so it immediately steals queued work (``reconnect=False`` restores
  the stay-dead behaviour);
* **per-frame deadlines** — with ``frame_timeout=`` /
  ``REPRO_FRAME_TIMEOUT`` set, a frame on the wire longer than the floor
  plus :data:`FRAME_DEADLINE_FACTOR` times the agent's own cost-model
  estimate is re-routed to another agent exactly like a lost agent's
  frames; a late original result is discarded through the stolen-twin
  duplicate path (off by default — deadlines cost one monotonic read per
  frame);
* **admission backoff** — an agent that answers a frame (or a whole
  connection) with :data:`~repro.runtime.wire.OP_BUSY` is backed off
  exponentially and the frame retried there or elsewhere, degrading to the
  local lane after repeated rejects rather than spinning;
* **graceful degradation** — when *no* agent is alive or accepting (and
  ``fallback="local"``, the default), outstanding and newly submitted
  chunks drain through the persistent local process lane instead of
  failing the study; because every task carries its own derived seed, the
  drained results are bit-identical to the all-remote ones.
  ``fallback="fail"`` restores the historical hard failure.

All of these paths are exercised continuously by the deterministic fault
harness in :mod:`repro.runtime.faults` (``faults=`` / ``REPRO_FAULT_PLAN``):
a seeded :class:`~repro.runtime.faults.FaultPlan` is consulted at the wire
layer's injection points — connect, send, receive, and after each delivered
result — and injects connect refusals, frame drops/delays/corruption, agent
crashes and heartbeat black holes on a replayable schedule.

**Trust model.**  An agent executes functions its coordinator names (by
``module:qualname``), so it must only be exposed to coordinators you trust
— bind agents to loopback or a private interconnect, exactly like any
``multiprocessing`` worker endpoint.
"""

from __future__ import annotations

import itertools
import os
import queue
import random
import re
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from importlib import import_module
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

import multiprocessing
import multiprocessing.pool

from repro.runtime import wire
from repro.runtime.chunking import load_cost_model, save_cost_models
from repro.runtime.serving import FrameServer
from repro.runtime.faults import (
    FAULT_CRASH,
    SEND_CORRUPT,
    SEND_DELAY,
    SEND_DROP,
    FaultPlan,
    corrupt_frame,
    resolve_fault_plan,
)
from repro.runtime.transport import ArrayShipment

#: Environment variable naming the agents (``host:port,host:port``) consulted
#: when no ``hosts=`` argument is given; unset means loopback mode.
HOSTS_ENV_VAR = "REPRO_HOSTS"

#: Port an agent listens on when a host is named without one.
DEFAULT_AGENT_PORT = 7029

#: Number of agents a loopback pool spawns (each fronting an equal share of
#: the requested workers).  Two agents is the smallest topology that
#: exercises cross-agent routing, requeueing and join order.
LOOPBACK_AGENTS = 2

#: Seconds to wait for an agent connection / hello / loopback announce.
CONNECT_TIMEOUT = 30.0

#: Environment variable overriding :data:`CONNECT_TIMEOUT` when no explicit
#: ``connect_timeout=`` is given (fleets behind slow links raise it without
#: touching call sites).
CONNECT_TIMEOUT_ENV_VAR = "REPRO_CONNECT_TIMEOUT"

#: First and largest pause between connect retries (exponential backoff,
#: jittered, capped) while an agent is still starting up.  Retrying inside
#: :meth:`_AgentLink.connect` means a ``--hosts`` fleet can be launched in
#: any order without the coordinator failing on first contact.
CONNECT_RETRY_BASE = 0.1
CONNECT_RETRY_CAP = 2.0

#: Frames kept on the wire per agent worker under ``balancing="cost"``:
#: enough that an agent never starves between results, few enough that the
#: coordinator's queues — where jobs are still stealable — hold the rest.
PREFETCH_PER_WORKER = 2

#: Default seconds between coordinator pings (override: ``REPRO_HEARTBEAT``;
#: zero or negative disables heartbeats).
HEARTBEAT_INTERVAL = 5.0

#: Environment variable overriding :data:`HEARTBEAT_INTERVAL`.
HEARTBEAT_ENV_VAR = "REPRO_HEARTBEAT"

#: An agent silent for this many heartbeat intervals is declared dead and
#: its outstanding frames re-routed.  Three intervals tolerates one lost
#: ping and ordinary scheduling jitter without false positives.
HEARTBEAT_MISS_FACTOR = 3.0

#: Environment variable enabling per-frame deadlines: the floor, in
#: seconds, of how long a frame may stay on the wire before it is re-routed
#: (the full deadline adds :data:`FRAME_DEADLINE_FACTOR` times the agent's
#: own cost-model estimate, so slow-but-honest agents are not starved).
#: Unset or ``<= 0`` — the default — disables deadlines entirely.
FRAME_TIMEOUT_ENV_VAR = "REPRO_FRAME_TIMEOUT"

#: Multiple of the link's cost-model estimate added to the frame-timeout
#: floor when arming a frame's deadline.  Four estimated durations absorbs
#: model error and queueing inside the agent without false expiries.
FRAME_DEADLINE_FACTOR = 4.0

#: Probation re-probe backoff: first pause after an agent is lost, and the
#: cap the exponential backoff saturates at (both jittered).
RECONNECT_BASE = 0.25
RECONNECT_CAP = 15.0

#: Connect/handshake budget of one probation probe.  Deliberately short:
#: a probe is speculative, and a frozen host can accept a TCP connection
#: through its kernel backlog and then never speak.
PROBE_TIMEOUT = 2.0

#: Admission-reject backoff: pause after an agent answers ``BUSY``, doubled
#: per consecutive reject up to the cap (both jittered).
BUSY_BACKOFF_BASE = 0.05
BUSY_BACKOFF_CAP = 1.0

#: A job bounced ``BUSY`` this many times *per alive agent* stops retrying
#: and degrades to the local lane (``fallback="local"``) — a fleet that is
#: busy forever is indistinguishable from a fleet that is gone.
BUSY_FALLBACK_REJECTS = 8

#: Default cap on concurrently served coordinators per agent (the
#: ``worker serve --max-coordinators`` default).  Two leaves headroom for a
#: coordinator reconnecting before the agent notices the old socket died.
DEFAULT_MAX_COORDINATORS = 2

#: Valid ``fallback=`` values of :class:`RemoteStudyPool`: ``"local"`` —
#: drain chunks through the local process lane when no agent is alive or
#: accepting, the default — and ``"fail"`` — the historical hard failure.
FALLBACKS = ("local", "fail")

#: Valid ``balancing=`` values of :class:`RemoteStudyPool`: ``"cost"`` —
#: throughput-proportional routing with queues and stealing, the default —
#: and ``"count"`` — the historical workers-only routing, kept as the
#: benchmark baseline (see ``benchmarks/bench_runtime.py``, section
#: ``remote_skewed``).
BALANCINGS = ("cost", "count")

#: Cost-cache key a fresh agent link seeds its model from when no
#: per-agent record exists yet (``"pipeline"`` is the legacy shared record
#: and the same per-worker units-per-second scale the pipelined driver
#: observes — see :func:`repro.runtime.chunking.cost_model_key`).
_LEGACY_COST_KEY = "pipeline"

_ANNOUNCE = re.compile(r"listening on ([^\s:]+):(\d+)")


def parse_hosts(spec: str) -> tuple[tuple[str, int], ...]:
    """Parse ``"a:7029,b"`` into ``(("a", 7029), ("b", DEFAULT_AGENT_PORT))``.

    IPv6 literals use the bracket convention (``[::1]:7029``); a bare
    multi-colon address (``::1``) is taken as a host with the default port
    rather than misreading its last hextet as one.
    """
    entries: list[tuple[str, int]] = []
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        port_text = ""
        if raw.startswith("["):
            host, bracket, rest = raw[1:].partition("]")
            if not bracket or (rest and not rest.startswith(":")):
                raise ValueError(
                    f"bad agent address {raw!r}: IPv6 literals are "
                    "[address] or [address]:port"
                )
            port_text = rest[1:]
        elif raw.count(":") == 1:
            host, _, port_text = raw.partition(":")
        else:  # hostname/IPv4, or a bare (port-less) IPv6 literal
            host = raw
        if not host:
            raise ValueError(f"bad agent address {raw!r}: empty host")
        if port_text:
            try:
                port = int(port_text)
            except ValueError as exc:
                raise ValueError(
                    f"bad agent address {raw!r}: port must be an integer"
                ) from exc
        else:
            port = DEFAULT_AGENT_PORT
        entries.append((host, port))
    if not entries:
        raise ValueError(f"no agent addresses in hosts spec {spec!r}")
    return tuple(entries)


def resolve_hosts(
    hosts: str | Iterable[tuple[str, int]] | None,
) -> tuple[tuple[str, int], ...] | None:
    """Normalise a ``hosts=`` argument to an address tuple (or loopback).

    ``None`` consults the ``REPRO_HOSTS`` environment variable; an unset
    variable resolves to ``None`` — loopback mode.  Strings are parsed with
    :func:`parse_hosts`; pre-parsed address sequences pass through.
    """
    if hosts is None:
        hosts = os.environ.get(HOSTS_ENV_VAR, "").strip() or None
        if hosts is None:
            return None
    if isinstance(hosts, str):
        return parse_hosts(hosts)
    return tuple((str(host), int(port)) for host, port in hosts)


def _resolve_heartbeat(heartbeat: float | None) -> float:
    """Normalise a ``heartbeat=`` argument (``None`` consults the env var)."""
    if heartbeat is None:
        raw = os.environ.get(HEARTBEAT_ENV_VAR, "").strip()
        if raw:
            try:
                return float(raw)
            except ValueError:
                return HEARTBEAT_INTERVAL
        return HEARTBEAT_INTERVAL
    return float(heartbeat)


def _resolve_connect_timeout(timeout: float | None) -> float:
    """Normalise a ``connect_timeout=`` argument.

    ``None`` consults ``REPRO_CONNECT_TIMEOUT`` and falls back to
    :data:`CONNECT_TIMEOUT`; an unparsable variable falls back too (a bad
    knob should degrade to the default, not kill the study).
    """
    if timeout is None:
        raw = os.environ.get(CONNECT_TIMEOUT_ENV_VAR, "").strip()
        if raw:
            try:
                return max(0.05, float(raw))
            except ValueError:
                return CONNECT_TIMEOUT
        return CONNECT_TIMEOUT
    return float(timeout)


def _resolve_frame_timeout(frame_timeout: float | None) -> float:
    """Normalise a ``frame_timeout=`` argument (``0.0`` — disabled).

    ``None`` consults ``REPRO_FRAME_TIMEOUT``; unset, unparsable or
    non-positive values all resolve to ``0.0`` — deadlines off.
    """
    if frame_timeout is None:
        raw = os.environ.get(FRAME_TIMEOUT_ENV_VAR, "").strip()
        if raw:
            try:
                return max(0.0, float(raw))
            except ValueError:
                return 0.0
        return 0.0
    return max(0.0, float(frame_timeout))


def _function_name(fn: Callable[..., Any]) -> str:
    """The importable ``module:qualname`` of a worker body."""
    name = f"{fn.__module__}:{fn.__qualname__}"
    if "<" in name:
        raise ValueError(
            f"remote jobs need an importable module-level function, got {name}"
        )
    return name


def _resolve_function(name: str) -> Callable[..., Any]:
    """Import the worker body an incoming job names (agent side)."""
    module_name, _, qualname = name.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed remote function name {name!r}")
    target = import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


def _localise(obj: Any, repacked: list[ArrayShipment]) -> Any:
    """Replace wire shipments with freshly packed local shipments.

    The agent fans jobs out over its own process pool, so the arrays that
    crossed the wire take their last hop through the local shared-memory
    transport (pickle fallback included) instead of being re-pickled per
    worker.  ``repacked`` collects the shipments so the agent can unlink
    them once the job completes.
    """
    if isinstance(obj, wire.WireShipment):
        shipment = ArrayShipment.pack(obj.load(), transport="auto")
        repacked.append(shipment)
        return shipment
    if isinstance(obj, tuple):
        return tuple(_localise(item, repacked) for item in obj)
    if isinstance(obj, list):
        return [_localise(item, repacked) for item in obj]
    if isinstance(obj, dict):
        return {key: _localise(value, repacked) for key, value in obj.items()}
    return obj


def _picklable_error(exc: BaseException) -> BaseException:
    """The exception itself when it pickles, a faithful stand-in otherwise."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _timed_execute(
    fn: Callable[[Any], Any], args: Any, slowdown: float = 1.0
) -> tuple[Any, float]:
    """Run one job on an agent worker and time it: ``(value, elapsed)``.

    The elapsed wall time rides back in the result frame and feeds the
    coordinator's per-agent cost model.  ``slowdown`` emulates a
    proportionally slower box (the job's own work is stretched by the
    factor, so finer chunks stay proportionally cheaper — unlike a fixed
    per-job sleep, which would mis-price small chunks); it exists for the
    skewed-fleet benchmark and tests, the production default is ``1.0``.
    """
    started = time.perf_counter()
    value = fn(args)
    elapsed = time.perf_counter() - started
    if slowdown > 1.0:
        time.sleep((slowdown - 1.0) * elapsed)
        elapsed = time.perf_counter() - started
    return value, elapsed


def _diagnostic_sleep(args: tuple[float, Any]) -> Any:
    """``(seconds, value)`` → sleep, then return ``value``.

    An importable stand-in job with a controllable duration, used by tests
    and the skewed-fleet benchmark to occupy agents for a known time.
    """
    seconds, value = args
    time.sleep(float(seconds))
    return value


# -- the agent (server side) ----------------------------------------------------------


class AgentServer(FrameServer):
    """One study agent: a socket front on a local worker pool.

    Serves up to ``max_coordinators`` concurrent coordinator connections,
    each on its own thread over the one shared local pool (reconnects are
    accepted — the pool persists across connections, like every runtime
    pool); further connections are bounced with a clean
    :data:`~repro.runtime.wire.OP_BUSY` hello instead of queueing silently
    in the TCP backlog.  Each admitted job frame is dispatched to the local
    pool immediately, so an agent keeps all its workers busy while more
    chunks stream in; results are framed back in completion order, each
    carrying the job's worker-side wall time.  With ``queue > 0`` the agent
    also bounds its in-flight frames: a frame beyond the bound is answered
    with a per-job ``BUSY`` reject the coordinator treats as
    backoff-and-retry.  Heartbeat pings are answered inline from the serve
    loop — never queued behind jobs — so a busy agent still proves it is
    alive.

    The accept loop, admission control and SIGTERM drain live in
    :class:`~repro.runtime.serving.FrameServer` (shared with the schedule
    service daemon); this class supplies the job protocol on top.

    Parameters
    ----------
    host, port:
        Listen address; port ``0`` lets the OS pick (the bound address is
        available as :attr:`address` after :meth:`bind`).
    workers:
        Local worker processes this agent fronts.  With one worker, jobs
        execute in-process (no pool spawn) — the loopback default.
    slowdown:
        Stretch every job's execution by this factor (``1.0`` — the default
        — is full speed).  A benchmarking/testing device for emulating a
        heterogeneous fleet on one machine; see :func:`_timed_execute`.
    max_coordinators:
        Concurrent coordinator connections served before new connections
        are bounced ``BUSY`` (default :data:`DEFAULT_MAX_COORDINATORS`).
    queue:
        Bound on frames accepted but not yet answered, across all
        coordinators; ``0`` — the default — is unbounded (the historical
        behaviour).
    """

    thread_name = "repro-agent-conn"
    busy_reason = "agent at max coordinators or draining"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        slowdown: float = 1.0,
        max_coordinators: int = DEFAULT_MAX_COORDINATORS,
        queue: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"an agent needs at least 1 worker, got {workers}")
        if slowdown < 1.0:
            raise ValueError(
                f"--slowdown is a throttle factor >= 1.0, got {slowdown}"
            )
        if max_coordinators < 1:
            raise ValueError(
                f"an agent serves at least 1 coordinator, got {max_coordinators}"
            )
        super().__init__(host, port, max_clients=max_coordinators, queue=queue)
        self.workers = int(workers)
        self.slowdown = float(slowdown)
        self._pool: multiprocessing.pool.Pool | None = None

    @property
    def max_coordinators(self) -> int:
        """The connection cap, under its historical agent-side name."""
        return self.max_clients

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        with self._idle:  # connection threads race the lazy spawn
            if self._pool is None:
                if self.workers >= 2:
                    self._pool = multiprocessing.Pool(processes=self.workers)
                else:
                    self._pool = multiprocessing.pool.ThreadPool(processes=1)
            return self._pool

    def _hello_message(self) -> dict[str, Any]:
        return {"hello": wire.WIRE_VERSION, "workers": self.workers}

    def _error_reply(
        self, message: dict[str, Any], exc: Exception
    ) -> dict[str, Any]:
        # Unpicklable results/errors degrade to a descriptive error frame
        # that still echoes the job id the coordinator is waiting on.
        return {
            "job": message.get("job"),
            "error": RuntimeError(f"agent could not serialise the reply: {exc}"),
        }

    def _handle_frame(
        self, message: dict[str, Any], reply: Callable[[dict[str, Any]], None]
    ) -> bool:
        if "job" not in message:
            return False
        job_id = message["job"]
        if not self._admit_job():
            # Draining, or the in-flight bound is hit: a clean per-job
            # reject the coordinator retries (here or elsewhere) after
            # a backoff, instead of silently queueing without bound.
            reply({"job": job_id, "op": wire.OP_BUSY})
            return True
        pool = self._ensure_pool()
        try:
            fn = _resolve_function(message["fn"])
            args = message["args"]
            repacked: list[ArrayShipment] = []
            if self.workers >= 2:
                args = _localise(args, repacked)
        except Exception as exc:  # noqa: BLE001 - reported to coordinator
            reply({"job": job_id, "error": _picklable_error(exc)})
            self._job_finished()
            return True

        def _done(
            timed: tuple[Any, float],
            job_id: int = job_id,
            repacked: list[ArrayShipment] = repacked,
        ) -> None:
            value, elapsed = timed
            reply({"job": job_id, "result": value, "elapsed": elapsed})
            for shipment in repacked:
                shipment.unlink()
            self._job_finished()

        def _failed(
            exc: BaseException,
            job_id: int = job_id,
            repacked: list[ArrayShipment] = repacked,
        ) -> None:
            reply({"job": job_id, "error": _picklable_error(exc)})
            for shipment in repacked:
                shipment.unlink()
            self._job_finished()

        pool.apply_async(
            _timed_execute,
            (fn, args, self.slowdown),
            callback=_done,
            error_callback=_failed,
        )
        return True

    def _on_close(self) -> None:
        """Tear the local pool down after the sockets are gone."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def serve_agent(
    bind: str = "127.0.0.1:0",
    workers: int = 1,
    *,
    slowdown: float = 1.0,
    exit_with_parent: bool = False,
    max_coordinators: int = DEFAULT_MAX_COORDINATORS,
    queue: int = 0,
    drain_timeout: float = 30.0,
) -> None:
    """Run one agent in the foreground (the ``worker serve`` CLI body).

    Announces the concrete listen address on stdout (``listening on
    host:port``) so loopback spawners — and humans — can read the
    OS-assigned port back.  ``exit_with_parent`` arms a watchdog that exits
    the agent when the spawning process dies, which is how loopback agents
    avoid outliving a killed coordinator.

    SIGTERM (coordinator close(), ``kill``, an orchestrator descheduling
    the box) triggers a **graceful drain**: in-flight frames finish and
    their results flush, new frames and connections are refused ``BUSY``,
    and the agent exits 0 — so a politely stopped agent never loses work
    the coordinator would have to detect and re-dispatch.  SIGKILL remains
    uncatchable; that path is what heartbeats and requeueing are for.
    """
    import signal

    host, _, port_text = bind.rpartition(":")
    if not host or not port_text:
        raise ValueError(f"--bind must be HOST:PORT, got {bind!r}")
    server = AgentServer(
        host,
        int(port_text),
        workers,
        slowdown=slowdown,
        max_coordinators=max_coordinators,
        queue=queue,
    )
    # begin_drain is async-signal-safe (an Event set plus a socket close,
    # no locks) and kicks serve_forever out of accept; the drain itself
    # runs below, in the normal flow, so atexit hooks — notably the
    # shared-memory shipment sweep — still run on the way out.
    try:
        signal.signal(signal.SIGTERM, lambda *_: server.begin_drain())
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    bound_host, bound_port = server.bind()
    print(
        f"repro-agent listening on {bound_host}:{bound_port} "
        f"(workers={workers}, wire v{wire.WIRE_VERSION})",
        flush=True,
    )
    if exit_with_parent:
        parent = os.getppid()

        def _watchdog() -> None:
            while True:
                time.sleep(1.0)
                if os.getppid() != parent:
                    os._exit(0)

        threading.Thread(target=_watchdog, daemon=True).start()
    try:
        server.serve_forever()
    finally:
        if server.draining:
            server.drain(drain_timeout)
        server.close()


# -- loopback spawning ----------------------------------------------------------------


def _split_workers(total: int, agents: int) -> list[int]:
    """Split ``total`` workers across ``agents`` agents, largest share first."""
    agents = max(1, min(agents, total))
    base, extra = divmod(total, agents)
    return [base + (1 if index < extra else 0) for index in range(agents)]


def _spawn_loopback_agent(
    workers: int,
    slowdown: float = 1.0,
    queue_bound: int = 0,
    max_coordinators: int | None = None,
) -> tuple[subprocess.Popen, tuple[str, int]]:
    """Start one agent subprocess on this machine and read its address back."""
    import repro

    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "worker",
        "serve",
        "--bind",
        "127.0.0.1:0",
        "--workers",
        str(workers),
        "--exit-with-parent",
    ]
    if slowdown != 1.0:
        command += ["--slowdown", str(slowdown)]
    if queue_bound:
        command += ["--queue", str(queue_bound)]
    if max_coordinators is not None:
        command += ["--max-coordinators", str(max_coordinators)]
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, text=True, env=env
    )
    # Read the announce line through a helper thread instead of select():
    # select on a pipe is Unix-only, and a plain readline could block past
    # the deadline if the agent wedges during start-up.
    announced: queue.SimpleQueue = queue.SimpleQueue()
    threading.Thread(
        target=lambda: announced.put(process.stdout.readline()),
        daemon=True,
    ).start()
    deadline = time.monotonic() + _resolve_connect_timeout(None)
    line = ""
    while time.monotonic() < deadline:
        try:
            line = announced.get(timeout=0.2)
            break
        except queue.Empty:
            if process.poll() is not None:
                raise RuntimeError(
                    f"loopback agent exited with code {process.returncode} "
                    "before announcing its address"
                )
    match = _ANNOUNCE.search(line)
    if not match:
        process.terminate()
        raise RuntimeError(
            f"loopback agent announced {line!r} instead of its address"
        )
    return process, (match.group(1), int(match.group(2)))


# -- the coordinator (client side) ----------------------------------------------------


class RemoteAsyncResult:
    """The remote twin of :class:`multiprocessing.pool.AsyncResult`."""

    __slots__ = ("_event", "_value", "_error", "_callbacks", "_lock", "job_id")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None
        self._callbacks: list[Callable[["RemoteAsyncResult"], object]] = []
        self._lock = threading.Lock()
        #: The wire-level job id this handle tracks (set by ``submit``).
        self.job_id: int | None = None

    def ready(self) -> bool:
        """Whether the job's result (or failure) has arrived."""
        return self._event.is_set()

    def get(self, timeout: float | None = None) -> Any:
        """Block until the result arrives; re-raise the job's failure."""
        if not self._event.wait(timeout):
            raise multiprocessing.TimeoutError("remote job still running")
        if self._error is not None:
            raise self._error
        return self._value

    def _settle(self, value: Any, error: BaseException | None) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._value = value
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _on_done(self, callback: Callable[["RemoteAsyncResult"], object]) -> None:
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)


class _Job:
    """One submitted chunk: its frame is kept until the result lands, so a
    lost agent's outstanding work can be re-sent verbatim elsewhere, and its
    estimated cost in units prices it for routing and model feedback.  The
    original callable and arguments ride along too, so the job can execute
    through the local process lane when the whole fleet degrades."""

    __slots__ = (
        "job_id",
        "frame",
        "handle",
        "units",
        "fn",
        "args",
        "deadline",
        "rejects",
    )

    def __init__(
        self,
        job_id: int,
        frame: bytes,
        handle: RemoteAsyncResult,
        units: float,
        fn: Callable[[Any], Any] | None = None,
        args: Any = None,
    ) -> None:
        self.job_id = job_id
        self.frame = frame
        self.handle = handle
        self.units = units
        self.fn = fn
        self.args = args
        #: Monotonic time this frame goes overdue while in flight
        #: (``None``: unarmed — deadlines off, or the job is queued).
        self.deadline: float | None = None
        #: ``BUSY`` rejects this job has absorbed, across agents — the
        #: escalation counter for degrading to the local lane.
        self.rejects = 0


class _Probe:
    """One probation entry: a lost agent's address and its re-probe state."""

    __slots__ = ("host", "port", "attempt", "next_probe", "probing")

    def __init__(self, host: str, port: int, next_probe: float) -> None:
        self.host = host
        self.port = port
        self.attempt = 0
        self.next_probe = next_probe
        #: A probe thread is currently dialling this address (keeps the
        #: monitor from stacking concurrent probes on a slow handshake).
        self.probing = False


class _AgentLink:
    """Coordinator-side connection to one agent.

    Besides the socket, the link owns the agent's share of the dispatch
    state: ``inflight`` (frames on the wire, keyed by job id), ``queued``
    (jobs routed here but not yet sent — the stealable backlog) and a
    per-agent :class:`~repro.runtime.chunking.CostModel` observed from the
    wall times the agent reports.
    """

    def __init__(
        self,
        pool: "RemoteStudyPool",
        host: str,
        port: int,
        process: subprocess.Popen | None = None,
    ) -> None:
        self.pool = pool
        self.host = host
        self.port = port
        self.process = process
        self.sock: socket.socket | None = None
        self.workers = 0
        self.alive = False
        self.inflight: dict[int, _Job] = {}  # guarded-by: pool._lock
        self.queued: deque[_Job] = deque()  # guarded-by: pool._lock
        #: Jobs this link delivered results for (observability and tests).
        self.completed = 0  # guarded-by: pool._lock
        #: Monotonic time of the last frame received from this agent; the
        #: heartbeat loop declares the agent dead when it goes stale.
        self.last_heard = 0.0
        #: Observed per-worker throughput of this agent, seeded from the
        #: cost cache (a named agent's own record first, then the legacy
        #: shared record).
        self.cost_model = load_cost_model(
            f"agent/{host}:{port}", fallback_keys=(_LEGACY_COST_KEY,)
        )
        #: Monotonic time before which pumping skips this agent after an
        #: admission reject (0.0: not backing off), and the consecutive
        #: reject count driving the exponential backoff.
        self.busy_until = 0.0  # guarded-by: pool._lock
        self.busy_streak = 0  # guarded-by: pool._lock
        self._send_lock = threading.Lock()
        self._receiver: threading.Thread | None = None
        if pool.faults is not None:
            # Registration order is the plan's "#N" join index.
            pool.faults.register(self.name)

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def capacity(self) -> int | None:
        """Max frames on the wire (``None``: unbounded — count balancing)."""
        if self.pool.balancing == "count":
            return None
        return max(1, self.workers) * PREFETCH_PER_WORKER

    @property
    def throughput(self) -> float:
        """Estimated units per second across this agent's workers."""
        return max(1, self.workers) * self.cost_model.units_per_second

    def backlog_units(self) -> float:  # holds: pool._lock
        """Estimated units outstanding on this link (queued + in-flight)."""
        return sum(job.units for job in self.inflight.values()) + sum(
            job.units for job in self.queued
        )

    def eta(self, extra_units: float = 0.0) -> float:  # holds: pool._lock
        """Estimated seconds to drain the backlog plus ``extra_units``."""
        return (self.backlog_units() + extra_units) / self.throughput

    def connect(self, timeout: float | None = None) -> None:
        if timeout is None:
            timeout = self.pool.connect_timeout
        plan = self.pool.faults
        deadline = time.monotonic() + timeout
        attempt = 0
        last_error: Exception = OSError(
            f"could not connect to agent {self.name}"
        )
        while True:
            hello: dict | None = None
            sock: socket.socket | None = None
            if plan is not None and plan.refuse_connect(self.name):
                last_error = ConnectionRefusedError(
                    f"fault plan refused a connect to agent {self.name}"
                )
            else:
                remaining = deadline - time.monotonic()
                try:
                    sock = socket.create_connection(
                        (self.host, self.port), timeout=max(0.05, remaining)
                    )
                except OSError as exc:
                    # The agent may simply not be up yet (fleets launch in
                    # any order): back off exponentially with jitter and
                    # retry until the deadline.
                    last_error = exc
            if sock is not None:
                try:
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    raw = wire.recv_message(sock)
                except BaseException:
                    # A handshake that dies half-way (recv error or
                    # timeout) must not leak the connected socket.
                    sock.close()
                    raise
                if isinstance(raw, dict) and raw.get("op") == wire.OP_BUSY:
                    # Admission reject: the agent is alive but at its
                    # coordinator cap (or draining) — backoff-and-retry,
                    # not a failure.
                    sock.close()
                    last_error = ConnectionRefusedError(
                        f"agent {self.name} rejected the connection as busy"
                    )
                elif not isinstance(raw, dict) or "workers" not in raw:
                    sock.close()
                    raise wire.WireError(
                        f"agent {self.name} opened with {raw!r} "
                        "instead of a hello"
                    )
                else:
                    hello = raw
            if hello is not None:
                sock.settimeout(None)
                break
            attempt += 1
            delay = min(
                CONNECT_RETRY_CAP, CONNECT_RETRY_BASE * 2 ** (attempt - 1)
            )
            delay *= 0.5 + random.random()
            if time.monotonic() + delay >= deadline:
                raise last_error
            time.sleep(delay)
        self.sock = sock
        self.workers = max(1, int(hello["workers"]))
        self.alive = True
        self.last_heard = time.monotonic()
        self._receiver = threading.Thread(
            target=self._receive_loop, name=f"repro-agent-rx-{self.name}",
            daemon=True,
        )
        self._receiver.start()

    def _receive_loop(self) -> None:
        try:
            while True:
                message = wire.recv_message(self.sock)
                if message is None:
                    break
                plan = self.pool.faults
                if plan is not None and plan.absorb_receive(self.name):
                    # The agent is black-holed: the frame vanishes before
                    # it can refresh liveness — a frozen host from the
                    # coordinator's point of view.
                    continue
                self.last_heard = time.monotonic()
                if isinstance(message, dict) and "job" in message:
                    self.pool._deliver(self, message)
                # Pongs need no further handling: receiving *any* frame
                # refreshed last_heard, which is all a heartbeat proves.
        except Exception:  # noqa: BLE001 - any decode failure (WireError,
            # OSError, a pickle/zlib error from a corrupt or version-skewed
            # frame) means the stream can no longer be trusted.
            pass
        finally:
            # Unconditional: however this loop ends, the link's outstanding
            # jobs must be requeued (or failed) — never left to hang their
            # waiters forever.
            self.pool._agent_lost(self)

    def send(self, frame: bytes) -> None:
        plan = self.pool.faults
        if plan is not None:
            verdict, delay = plan.on_send(self.name)
            if verdict == SEND_DROP:
                return
            if verdict == SEND_CORRUPT:
                frame = corrupt_frame(frame)
            elif verdict == SEND_DELAY:
                time.sleep(delay)
        with self._send_lock:
            self.sock.sendall(frame)

    def close(self, graceful: bool = True) -> None:
        self.alive = False
        if self.sock is not None:
            if graceful:
                try:
                    self.send(wire.encode_message({"op": wire.OP_SHUTDOWN}))
                except OSError:
                    pass
            try:
                self.sock.close()
            except OSError:
                pass
        if self.process is not None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck agent
                self.process.kill()
                self.process.wait()
            if self.process.stdout is not None:
                self.process.stdout.close()


class RemoteStudyPool:
    """The remote lane: :class:`~repro.runtime.pool.StudyPool`'s contract,
    served by worker agents over sockets.

    Parameters
    ----------
    workers:
        Total worker target in loopback mode (split across
        :data:`LOOPBACK_AGENTS` auto-spawned local agents); ignored when
        ``hosts`` names real agents, whose advertised worker counts add up
        to the pool's capacity instead.
    hosts:
        Agent addresses — a ``"host:port,host:port"`` string or a parsed
        address sequence.  ``None`` consults ``REPRO_HOSTS`` and falls back
        to loopback mode.
    balancing:
        ``"cost"`` (default) — throughput-proportional routing against
        per-agent cost models, with bounded prefetch and work stealing;
        ``"count"`` — the historical workers-only routing, kept as the
        benchmark baseline.
    heartbeat:
        Seconds between liveness pings (``None`` consults
        ``REPRO_HEARTBEAT`` and falls back to
        :data:`HEARTBEAT_INTERVAL`; zero or negative disables the
        heartbeat loop — agent loss is then detected on socket errors
        only).
    faults:
        Fault-injection schedule for the chaos harness: a
        :class:`~repro.runtime.faults.FaultPlan`, a spec mapping, or a
        path to a JSON spec (``None`` consults ``REPRO_FAULT_PLAN``;
        unset — the production default — injects nothing at all).
    frame_timeout:
        Per-frame deadline floor in seconds (``None`` consults
        ``REPRO_FRAME_TIMEOUT``; zero — the default — disables
        deadlines).  See :data:`FRAME_DEADLINE_FACTOR`.
    reconnect:
        Whether lost agents enter probation and are re-probed with
        exponential backoff until they answer again (default ``True``).
    fallback:
        ``"local"`` (default) — when no agent is alive or accepting,
        drain chunks through the local process lane bit-identically;
        ``"fail"`` — the historical hard failure.
    connect_timeout:
        Connect/handshake budget in seconds (``None`` consults
        ``REPRO_CONNECT_TIMEOUT`` and falls back to
        :data:`CONNECT_TIMEOUT`).

    The pool is used through the same three members as every other lane:
    :meth:`submit`, :meth:`imap_unordered`, :meth:`close` — which is what
    lets every study driver run remotely unchanged.  Balancing, stealing,
    heartbeats, membership changes and every recovery path never affect
    study results — every task carries its own derived seed — only where
    and when chunks run.
    """

    kind = "remote"

    def __init__(
        self,
        workers: int | None = None,
        *,
        hosts: str | Iterable[tuple[str, int]] | None = None,
        balancing: str = "cost",
        heartbeat: float | None = None,
        faults: "FaultPlan | dict | str | Path | None" = None,
        frame_timeout: float | None = None,
        reconnect: bool = True,
        fallback: str = "local",
        connect_timeout: float | None = None,
    ) -> None:
        if balancing not in BALANCINGS:
            raise ValueError(
                f"balancing must be one of {BALANCINGS}, got {balancing!r}"
            )
        if fallback not in FALLBACKS:
            raise ValueError(
                f"fallback must be one of {FALLBACKS}, got {fallback!r}"
            )
        self.hosts_spec = resolve_hosts(hosts)
        self.balancing = balancing
        self._heartbeat = _resolve_heartbeat(heartbeat)
        #: The active fault-injection plan (``None``: injection off, and
        #: every consult site is a single ``is not None`` check).
        self.faults = resolve_fault_plan(faults)
        self.connect_timeout = _resolve_connect_timeout(connect_timeout)
        self._frame_timeout = _resolve_frame_timeout(frame_timeout)
        self._reconnect = bool(reconnect)
        self._fallback = fallback
        self._lock = threading.RLock()
        self._jobs: dict[int, _Job] = {}  # guarded-by: _lock
        self._job_ids = itertools.count(1)
        self._closed = False  # guarded-by: _lock
        #: Results that arrived for already-settled jobs (an agent racing
        #: its own loss, or a stolen frame's first execution); discarded,
        #: counted for observability and tests.
        self.duplicates_ignored = 0  # guarded-by: _lock
        #: Queued jobs re-routed to an agent that drained early.
        self.steals = 0  # guarded-by: _lock
        #: Lost agents re-admitted by the probation prober.
        self.reconnects = 0  # guarded-by: _lock
        #: Frames bounced by agent admission control (``BUSY`` rejects).
        self.busy_rejects = 0  # guarded-by: _lock
        #: In-flight frames re-routed because their deadline expired.
        self.deadline_expired = 0  # guarded-by: _lock
        #: Chunks drained through the local lane (``fallback="local"``).
        self.degraded_jobs = 0  # guarded-by: _lock
        self._agents: list[_AgentLink] = []  # guarded-by: _lock
        self._probation: dict[str, _Probe] = {}  # guarded-by: _lock
        self._monitor_stop = threading.Event()
        self._monitor_thread: threading.Thread | None = None
        try:
            if self.hosts_spec is not None:
                for host, port in self.hosts_spec:
                    link = _AgentLink(self, host, port)
                    link.connect()
                    self._agents.append(link)
            else:
                total = max(2, int(workers or 0))
                for share in _split_workers(total, LOOPBACK_AGENTS):
                    process, (host, port) = _spawn_loopback_agent(share)
                    link = _AgentLink(self, host, port, process=process)
                    link.connect()
                    self._agents.append(link)
        except BaseException:
            for link in self._agents:
                link.close(graceful=False)
            raise
        # One maintenance thread for everything periodic — heartbeats,
        # frame deadlines, probation probes, post-backoff re-pumps —
        # always running (backoff re-pumps are needed even with heartbeats
        # and deadlines off).
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop,
            name="repro-remote-monitor",
            daemon=True,
        )
        self._monitor_thread.start()

    # -- the StudyPool contract ---------------------------------------------------

    @property
    def workers(self) -> int:
        """Total advertised workers across the currently alive agents."""
        with self._lock:
            return sum(link.workers for link in self._agents if link.alive)

    @property
    def alive(self) -> bool:
        """Whether the pool can still accept work.

        Under ``fallback="local"`` an open pool always can — a fleet with
        no live agent degrades to the local lane instead of refusing work.
        """
        with self._lock:
            if self._closed:
                return False
            if self._fallback == "local":
                return True
            return any(link.alive for link in self._agents)

    def submit(
        self,
        fn: Callable[[Any], Any],
        args: Any,
        units: float | None = None,
        callback: Callable[[Any], object] | None = None,
        error_callback: Callable[[BaseException], object] | None = None,
    ) -> RemoteAsyncResult:
        """Frame ``fn(args)`` and route it to the best agent.

        ``units`` is the job's estimated cost in the shared cost-unit scale
        (messages / stacked-matrix cells — see
        :mod:`repro.runtime.chunking`); it prices the job for routing and
        for the delivering agent's model feedback.  ``None`` prices every
        job equally.  Like all balancing state it can never change results.

        ``callback`` / ``error_callback`` mirror
        :meth:`multiprocessing.pool.Pool.apply_async` (and the local
        lanes' submit): called with the result value or the failure once
        the job settles, whichever lane — remote or degraded-local — ends
        up executing it.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("RemoteStudyPool is closed")
            job_id = next(self._job_ids)
        frame = wire.encode_message(
            {"job": job_id, "fn": _function_name(fn), "args": args}
        )
        handle = RemoteAsyncResult()
        handle.job_id = job_id
        if callback is not None or error_callback is not None:

            def _notify(done: RemoteAsyncResult) -> None:
                if done._error is not None:
                    if error_callback is not None:
                        error_callback(done._error)
                elif callback is not None:
                    callback(done._value)

            handle._on_done(_notify)
        job = _Job(
            job_id,
            frame,
            handle,
            units=float(units or 0) or 1.0,
            fn=fn,
            args=args,
        )
        agent: _AgentLink | None = None
        with self._lock:
            try:
                agent = self._route(job)  # before registering: a raise
            except RuntimeError:  # here must not strand the job record
                if self._fallback != "local":
                    raise
                self.degraded_jobs += 1
            else:
                self._jobs[job_id] = job
                agent.queued.append(job)
        if agent is None:
            self._fallback_submit(job)
        else:
            self._pump(agent)
        return handle

    def imap_unordered(
        self, fn: Callable[[Any], Any], iterable: Iterable[Any]
    ) -> Iterator[Any]:
        """Submit every job now; yield results in completion order."""
        handles = [self.submit(fn, args) for args in iterable]
        done: queue.SimpleQueue = queue.SimpleQueue()
        for handle in handles:
            handle._on_done(done.put)

        def _results() -> Iterator[Any]:
            for _ in range(len(handles)):
                yield done.get().get()

        return _results()

    def close(self) -> None:
        """Disconnect every agent, stop loopback subprocesses (idempotent).

        Jobs still pending fail with a descriptive error rather than
        hanging their waiters forever.  Named agents' observed cost models
        are persisted to the cost cache (when enabled) so the next study
        routes its *first* chunks against measured throughput.
        """
        self._monitor_stop.set()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            orphaned = list(self._jobs.values())
            self._jobs.clear()
            agents = list(self._agents)
        for job in orphaned:
            job.handle._settle(
                None, RuntimeError("RemoteStudyPool closed with jobs pending")
            )
        # Loopback agents get fresh OS-assigned ports every run, so a
        # per-agent record would never be read back — only named agents
        # persist their models.  One batched save merges the whole fleet's
        # records under a single writer lock instead of N racing rewrites.
        save_cost_models(
            {
                f"agent/{link.name}": link.cost_model
                for link in agents
                if link.process is None
            }
        )
        for link in agents:
            link.close()

    def __enter__(self) -> "RemoteStudyPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- elastic membership -------------------------------------------------------

    def add_host(
        self,
        host: str,
        port: int | None = None,
        *,
        timeout: float | None = None,
    ) -> _AgentLink:
        """Connect one more agent mid-study; it immediately steals work.

        ``host`` may be a bare hostname (``port`` applying, default
        :data:`DEFAULT_AGENT_PORT`) or a ``"host:port"`` string.  Adding an
        address that is already connected and alive is a no-op returning
        the existing link.  ``timeout`` bounds the connect/handshake
        (``None``: the pool's :attr:`connect_timeout`); the reconnect
        prober passes :data:`PROBE_TIMEOUT` here.
        """
        if port is None:
            ((host, port),) = parse_hosts(host)
        address = (str(host), int(port))
        with self._lock:
            if self._closed:
                raise RuntimeError("RemoteStudyPool is closed")
            for link in self._agents:
                if link.alive and (link.host, link.port) == address:
                    return link
        link = _AgentLink(self, *address)
        link.connect(timeout)
        with self._lock:
            if self._closed:
                link.close(graceful=False)
                raise RuntimeError("RemoteStudyPool is closed")
            self._agents.append(link)
        self._replenish(link)
        return link

    def rescan_hosts(self) -> list[_AgentLink]:
        """Re-read ``REPRO_HOSTS`` and connect any newly named agents.

        Returns the links added.  Unreachable new hosts are skipped (they
        can be rescanned again later); already-connected hosts are left
        untouched.  A pool in loopback mode joins named agents too — the
        variable simply names more capacity.
        """
        spec = resolve_hosts(None)
        if spec is None:
            return []
        added: list[_AgentLink] = []
        for host, port in spec:
            try:
                with self._lock:
                    known = any(
                        link.alive and (link.host, link.port) == (host, port)
                        for link in self._agents
                    )
                if not known:
                    added.append(self.add_host(host, port))
            except (OSError, wire.WireError):
                continue
        if self.hosts_spec is not None:
            self.hosts_spec = spec
        return added

    def partition_weights(self) -> list[float] | None:
        """Per-chunk-slot throughput weights of the current fleet.

        One entry per worker of each alive agent — the agent's estimated
        per-worker units-per-second — sorted fastest first, ready to pass
        to :func:`repro.runtime.chunking.partition_by_cost` so chunk sizes
        track the fleet's skew.  ``None`` under ``balancing="count"`` (the
        baseline must keep the historical uniform split) or when no agent
        is alive.
        """
        if self.balancing != "cost":
            return None
        weights: list[float] = []
        with self._lock:
            for link in self._agents:
                if not link.alive:
                    continue
                rate = link.cost_model.units_per_second
                weights.extend([rate] * max(1, link.workers))
        if not weights:
            return None
        weights.sort(reverse=True)
        return weights

    # -- internals ----------------------------------------------------------------

    def _route(self, job: _Job) -> _AgentLink:  # holds: _lock
        """The alive agent this job should wait on (call holding the lock).

        Cost balancing picks the lowest estimated completion time —
        current backlog plus this job, over estimated throughput — so a
        fast agent absorbs proportionally more work; count balancing keeps
        the historical lowest-load-per-worker rule.
        """
        alive = [link for link in self._agents if link.alive]
        if not alive:
            raise RuntimeError("no remote agents available")
        if self.balancing == "count":
            return min(
                alive,
                key=lambda link: (len(link.inflight) + len(link.queued))
                / link.workers,
            )
        return min(alive, key=lambda link: link.eta(job.units))

    def _pump(self, agent: _AgentLink) -> None:
        """Move sendable jobs from ``agent``'s queue onto the wire."""
        batch: list[_Job] = []
        with self._lock:
            if not agent.alive:
                return
            if agent.busy_until > time.monotonic():
                return  # backing off a BUSY; the monitor re-pumps later
            capacity = agent.capacity
            while agent.queued and (
                capacity is None or len(agent.inflight) < capacity
            ):
                job = agent.queued.popleft()
                if job.job_id not in self._jobs:
                    continue  # settled while queued (a stolen twin won)
                if self._frame_timeout > 0:
                    job.deadline = time.monotonic() + self._deadline_seconds(
                        agent, job
                    )
                agent.inflight[job.job_id] = job
                batch.append(job)
        for job in batch:
            try:
                agent.send(job.frame)
            except OSError:
                self._agent_lost(agent)
                return

    def _replenish(self, agent: _AgentLink) -> None:
        """Refill a draining agent: its own queue first, then stealing.

        Steals take the *most recently routed* job (queue tail) from the
        peer with the largest estimated backlog, and only while that peer
        is worse off than the thief — so work moves strictly from slower
        to faster agents.  In-flight frames are never stolen, and a job is
        a whole chain-atomic chunk, so stealing can never split a chain.
        """
        if self.balancing == "cost":
            with self._lock:
                if not agent.alive:
                    return
                capacity = agent.capacity
                while len(agent.inflight) + len(agent.queued) < capacity:
                    victims = [
                        link
                        for link in self._agents
                        if link.alive and link is not agent and link.queued
                    ]
                    if not victims:
                        break
                    victim = max(victims, key=lambda link: link.eta())
                    if victim.eta() <= agent.eta():
                        break
                    job = victim.queued.pop()
                    if job.job_id not in self._jobs:
                        continue
                    agent.queued.append(job)
                    self.steals += 1
        self._pump(agent)

    def _monitor_tick_seconds(self) -> float:
        """The maintenance cadence: fine enough for the sharpest deadline."""
        tick = 0.25
        if self._heartbeat > 0:
            tick = min(tick, self._heartbeat / 2)
        if self._frame_timeout > 0:
            tick = min(tick, self._frame_timeout / 4)
        return max(0.02, tick)

    def _monitor_loop(self) -> None:
        """All periodic maintenance, on one thread: heartbeats, frame
        deadlines, probation probes and post-backoff re-pumps."""
        sequence = itertools.count(1)
        next_ping = (
            time.monotonic() + self._heartbeat if self._heartbeat > 0 else None
        )
        while not self._monitor_stop.wait(self._monitor_tick_seconds()):
            now = time.monotonic()
            if next_ping is not None and now >= next_ping:
                next_ping = now + self._heartbeat
                self._heartbeat_round(sequence, now)
            if self._frame_timeout > 0:
                self._expire_overdue(now)
            if self._reconnect:
                self._launch_probes(now)
            self._pump_backoff(now)

    def _heartbeat_round(self, sequence: Iterator[int], now: float) -> None:
        """Ping every alive agent; declare the silent ones dead."""
        stale = self._heartbeat * HEARTBEAT_MISS_FACTOR
        with self._lock:
            links = list(self._agents)
        for link in links:
            if not link.alive:
                continue
            if now - link.last_heard > stale:
                # The socket may still look healthy (a frozen host's
                # kernel keeps ACKing) — silence is the only signal.
                self._agent_lost(link)
                continue
            frame = wire.encode_message(
                wire.control_message(wire.OP_PING, seq=next(sequence))
            )
            try:
                link.send(frame)
            except OSError:
                self._agent_lost(link)

    def _deadline_seconds(self, link: _AgentLink, job: _Job) -> float:
        """A frame's deadline: the configured floor plus a multiple of the
        link's *own* cost estimate, so a slow-but-honest agent is priced by
        its throughput rather than starved by a global constant."""
        return self._frame_timeout + FRAME_DEADLINE_FACTOR * (
            link.cost_model.seconds_for(job.units)
        )

    def _expire_overdue(self, now: float) -> None:
        """Re-route in-flight frames whose deadline has passed.

        The original agent may still answer later; that late result is
        discarded through the stolen-twin duplicate path (both executions
        carry bitwise the same numbers).
        """
        repump: list[_AgentLink] = []
        with self._lock:
            for link in list(self._agents):
                if not link.alive:
                    continue
                overdue = [
                    job
                    for job in link.inflight.values()
                    if job.deadline is not None and now > job.deadline
                ]
                for job in overdue:
                    others = [
                        peer
                        for peer in self._agents
                        if peer.alive and peer is not link
                    ]
                    if not others:
                        # Nowhere to re-route: re-arm instead of counting
                        # the same frame expired every tick.
                        job.deadline = now + self._deadline_seconds(link, job)
                        continue
                    link.inflight.pop(job.job_id, None)
                    job.deadline = None
                    self.deadline_expired += 1
                    target = min(
                        others,
                        key=lambda peer, units=job.units: peer.eta(units),
                    )
                    target.queued.append(job)
                    if target not in repump:
                        repump.append(target)
        for target in repump:
            self._pump(target)

    def _launch_probes(self, now: float) -> None:
        """Dial due probation entries, each probe on its own thread (a
        probe against a frozen host blocks for :data:`PROBE_TIMEOUT`, and
        the monitor must keep ticking meanwhile)."""
        with self._lock:
            due = [
                probe
                for probe in self._probation.values()
                if not probe.probing and now >= probe.next_probe
            ]
            for probe in due:
                probe.probing = True
        for probe in due:
            threading.Thread(
                target=self._probe_agent,
                args=(probe,),
                name=f"repro-remote-probe-{probe.host}:{probe.port}",
                daemon=True,
            ).start()

    def _probe_agent(self, probe: _Probe) -> None:
        """One reconnect attempt against a probation address."""
        name = f"{probe.host}:{probe.port}"
        try:
            self.add_host(probe.host, probe.port, timeout=PROBE_TIMEOUT)
        except Exception:  # noqa: BLE001 - still dead: back off, retry
            with self._lock:
                probe.attempt += 1
                delay = min(RECONNECT_CAP, RECONNECT_BASE * 2**probe.attempt)
                probe.next_probe = time.monotonic() + delay * (
                    0.5 + random.random()
                )
                probe.probing = False
            return
        with self._lock:
            self._probation.pop(name, None)
            self.reconnects += 1

    def _pump_backoff(self, now: float) -> None:
        """Re-pump agents whose admission backoff has expired."""
        with self._lock:
            ready = [
                link
                for link in self._agents
                if link.alive
                and link.queued
                and link.busy_until
                and link.busy_until <= now
            ]
            for link in ready:
                link.busy_until = 0.0
        for link in ready:
            self._pump(link)

    def _deliver(self, agent: _AgentLink, message: dict) -> None:
        """Settle one job from a result frame (first delivery wins)."""
        if message.get("op") == wire.OP_BUSY:
            self._job_rejected(agent, message["job"])
            return
        job_id = message["job"]
        with self._lock:
            job = self._jobs.pop(job_id, None)
            if job is None:
                self.duplicates_ignored += 1
                return
            for link in self._agents:
                link.inflight.pop(job_id, None)
            agent.completed += 1
            agent.busy_streak = 0
            elapsed = message.get("elapsed")
            if isinstance(elapsed, (int, float)) and elapsed > 0:
                agent.cost_model.observe(job.units, float(elapsed))
        error = message.get("error")
        if error is not None and not isinstance(error, BaseException):
            error = RuntimeError(str(error))
        job.handle._settle(message.get("result"), error)
        plan = self.faults
        if plan is not None and plan.after_result(agent.name) == FAULT_CRASH:
            self._inject_crash(agent)
            return
        self._replenish(agent)

    def _job_rejected(self, agent: _AgentLink, job_id: int) -> None:
        """Handle a per-job ``BUSY``: back the agent off, retry the frame.

        The frame goes back to the best *other* agent when one exists
        (otherwise it re-queues here, re-sent once the backoff expires);
        after :data:`BUSY_FALLBACK_REJECTS` bounces per alive agent the
        job stops retrying and degrades to the local lane instead — a
        fleet that is busy forever is a fleet that is gone.
        """
        fallback_job: _Job | None = None
        retarget: _AgentLink | None = None
        with self._lock:
            job = agent.inflight.pop(job_id, None)
            if job is None or job.job_id not in self._jobs:
                return  # already re-routed or settled elsewhere
            self.busy_rejects += 1
            job.rejects += 1
            job.deadline = None
            agent.busy_streak += 1
            backoff = min(
                BUSY_BACKOFF_CAP,
                BUSY_BACKOFF_BASE * 2 ** (agent.busy_streak - 1),
            )
            agent.busy_until = time.monotonic() + backoff * (
                0.5 + random.random()
            )
            alive = [link for link in self._agents if link.alive]
            if (
                self._fallback == "local"
                and job.rejects >= BUSY_FALLBACK_REJECTS * max(1, len(alive))
            ):
                self._jobs.pop(job_id, None)
                self.degraded_jobs += 1
                fallback_job = job
            else:
                others = [link for link in alive if link is not agent]
                retarget = (
                    min(
                        others,
                        key=lambda link, units=job.units: link.eta(units),
                    )
                    if others
                    else agent
                )
                retarget.queued.append(job)
        if fallback_job is not None:
            self._fallback_submit(fallback_job)
        elif retarget is not None and retarget is not agent:
            self._pump(retarget)

    def _inject_crash(self, agent: _AgentLink) -> None:
        """Fault injection: make ``agent`` genuinely die, coordinator-side.

        An owned loopback process is killed outright (SIGKILL — no drain,
        no goodbye); either way the link is torn down through the normal
        lost-agent path, and the plan refuses every later reconnect, so
        detection and recovery run exactly as they would for a real crash.
        """
        process = agent.process
        if process is not None and process.poll() is None:
            process.kill()
        self._agent_lost(agent)

    def _fallback_submit(self, job: _Job) -> None:
        """Drain one chunk through the persistent local process lane.

        The chunk executes from its original callable and arguments with
        its own derived seed, so the degraded result is bit-identical to
        the remote one.  Any failure to degrade settles the handle with
        the error — a degraded job must never hang its waiter.
        """
        from repro.runtime.pool import get_pool

        handle = job.handle

        def _ok(value: Any) -> None:
            handle._settle(value, None)

        def _err(error: BaseException) -> None:
            handle._settle(None, error)

        if job.fn is None:
            handle._settle(
                None,
                RuntimeError(
                    "no remote agents available and the job carries no "
                    "local fallback callable"
                ),
            )
            return
        try:
            get_pool(2, kind="process").submit(
                job.fn,
                job.args,
                units=job.units,
                callback=_ok,
                error_callback=_err,
            )
        except Exception as exc:  # noqa: BLE001 - never hang the waiter
            handle._settle(None, _picklable_error(exc))

    def _agent_lost(self, agent: _AgentLink) -> None:
        """Mark ``agent`` dead, requeue its jobs, start its probation."""
        with self._lock:
            if not agent.alive:
                return
            agent.alive = False
            orphaned = [
                job
                for job in agent.inflight.values()
                if job.job_id in self._jobs
            ]
            orphaned += [
                job for job in agent.queued if job.job_id in self._jobs
            ]
            agent.inflight.clear()
            agent.queued.clear()
            closed = self._closed
            if (
                self._reconnect
                and not closed
                and agent.name not in self._probation
            ):
                self._probation[agent.name] = _Probe(
                    agent.host,
                    agent.port,
                    time.monotonic() + RECONNECT_BASE * (0.5 + random.random()),
                )
        if agent.sock is not None:
            try:
                agent.sock.close()
            except OSError:
                pass
        if closed:
            return
        targets: list[_AgentLink] = []
        degraded: list[_Job] = []
        failed: list[_Job] = []
        for job in orphaned:
            with self._lock:
                if job.job_id not in self._jobs:
                    continue  # delivered while we were requeueing
                try:
                    target = self._route(job)
                except RuntimeError:
                    self._jobs.pop(job.job_id, None)
                    if self._fallback == "local":
                        self.degraded_jobs += 1
                        degraded.append(job)
                    else:
                        failed.append(job)
                    continue
                job.deadline = None
                target.queued.append(job)
                if target not in targets:
                    targets.append(target)
        for job in degraded:
            self._fallback_submit(job)
        for job in failed:
            job.handle._settle(
                None,
                RuntimeError(
                    f"agent {agent.name} was lost with no surviving "
                    "agents to requeue onto"
                ),
            )
        for target in targets:
            self._pump(target)
