"""The distributed executor lane: shard studies across machines.

The runtime's other two lanes place work inside one process tree — threads
(:class:`~repro.runtime.pool.ThreadStudyPool`) and local processes
(:class:`~repro.runtime.pool.StudyPool`).  This module adds the third
``kind``: a :class:`RemoteStudyPool` (``executor="remote"``) that serves the
exact submit/collect contract of :class:`~repro.runtime.pool.StudyPool`, but
sends each chunk over a socket to a standalone **worker agent** —
``repro-bcast worker serve --bind HOST:PORT --workers N`` — where the agent
fans it out over its own local process pool.  Because every task derives its
own seed, sharding a study over any number of agents, in any join order,
with any mid-run agent loss, is bit-identical to the inline path — the same
invariant the thread and process lanes already carry, extended across
machines.

**Topology.**  One coordinator (the study process), N agents.  Agents are
named by ``hosts=`` / ``--hosts a:port,b:port`` / the ``REPRO_HOSTS``
environment variable; when none are named the pool runs in **loopback
mode**: it spawns :data:`LOOPBACK_AGENTS` agents as local subprocesses of
this machine, so tests, benchmarks and a first try need no second box.
Membership is **elastic**: agents may join a running pool mid-study through
:meth:`RemoteStudyPool.add_host` or a :meth:`RemoteStudyPool.rescan_hosts`
of ``REPRO_HOSTS``, and immediately receive work stolen from the backlogs
of the incumbents.

**Dispatch.**  The source paper's lesson — heterogeneous speeds must drive
the schedule — applies to the runtime itself.  Every link keeps a per-agent
:class:`~repro.runtime.chunking.CostModel` (seeded from the
``REPRO_COST_CACHE`` snapshot, refined from the worker-side wall time every
result frame reports), and under the default ``balancing="cost"`` each job
is routed to the agent with the lowest *estimated completion time* —
backlog units over estimated throughput — rather than the lowest job count.
Only up to :data:`PREFETCH_PER_WORKER` frames per worker are actually on
the wire per agent; the rest wait in coordinator-side queues where they can
still be **stolen**: an agent that drains early takes queued (never
in-flight) jobs from the most backlogged peer, so one slow box degrades the
sweep by its share of throughput instead of stalling it.  Chunks themselves
are cut by the callers through the shared cost-balanced partitioner
(:func:`repro.runtime.chunking.partition_by_cost`) — sized to the fleet's
throughput skew via :meth:`RemoteStudyPool.partition_weights` — and a warm
chain is never split: it executes whole on one agent, exactly as it
executes whole on one local worker.  ``balancing="count"`` keeps the
historical workers-only routing (eager send, no queues, no stealing) as the
benchmark baseline.

**Failure semantics.**  Every in-flight job keeps its encoded frame.  The
coordinator pings each agent every :data:`HEARTBEAT_INTERVAL` seconds
(``REPRO_HEARTBEAT``) and the agent answers from its serve loop, outside
the job path — so when an agent's connection drops *or* its host freezes
while the socket stays open, the coordinator marks it dead (after
:data:`HEARTBEAT_MISS_FACTOR` silent intervals) and re-routes that agent's
outstanding frames to the survivors; only when *no* agent survives does the
study fail.  A result that arrives twice for one job — an agent raced its
own loss, or executed a frame that had also been stolen — is counted and
discarded (first delivery wins; both deliveries carry bitwise the same
numbers, so which one wins is unobservable).

**Trust model.**  An agent executes functions its coordinator names (by
``module:qualname``), so it must only be exposed to coordinators you trust
— bind agents to loopback or a private interconnect, exactly like any
``multiprocessing`` worker endpoint.
"""

from __future__ import annotations

import itertools
import os
import queue
import random
import re
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from importlib import import_module
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

import multiprocessing
import multiprocessing.pool

from repro.runtime import wire
from repro.runtime.chunking import load_cost_model, save_cost_model
from repro.runtime.transport import ArrayShipment

#: Environment variable naming the agents (``host:port,host:port``) consulted
#: when no ``hosts=`` argument is given; unset means loopback mode.
HOSTS_ENV_VAR = "REPRO_HOSTS"

#: Port an agent listens on when a host is named without one.
DEFAULT_AGENT_PORT = 7029

#: Number of agents a loopback pool spawns (each fronting an equal share of
#: the requested workers).  Two agents is the smallest topology that
#: exercises cross-agent routing, requeueing and join order.
LOOPBACK_AGENTS = 2

#: Seconds to wait for an agent connection / hello / loopback announce.
CONNECT_TIMEOUT = 30.0

#: First and largest pause between connect retries (exponential backoff,
#: jittered, capped) while an agent is still starting up.  Retrying inside
#: :meth:`_AgentLink.connect` means a ``--hosts`` fleet can be launched in
#: any order without the coordinator failing on first contact.
CONNECT_RETRY_BASE = 0.1
CONNECT_RETRY_CAP = 2.0

#: Frames kept on the wire per agent worker under ``balancing="cost"``:
#: enough that an agent never starves between results, few enough that the
#: coordinator's queues — where jobs are still stealable — hold the rest.
PREFETCH_PER_WORKER = 2

#: Default seconds between coordinator pings (override: ``REPRO_HEARTBEAT``;
#: zero or negative disables heartbeats).
HEARTBEAT_INTERVAL = 5.0

#: Environment variable overriding :data:`HEARTBEAT_INTERVAL`.
HEARTBEAT_ENV_VAR = "REPRO_HEARTBEAT"

#: An agent silent for this many heartbeat intervals is declared dead and
#: its outstanding frames re-routed.  Three intervals tolerates one lost
#: ping and ordinary scheduling jitter without false positives.
HEARTBEAT_MISS_FACTOR = 3.0

#: Valid ``balancing=`` values of :class:`RemoteStudyPool`: ``"cost"`` —
#: throughput-proportional routing with queues and stealing, the default —
#: and ``"count"`` — the historical workers-only routing, kept as the
#: benchmark baseline (see ``benchmarks/bench_runtime.py``, section
#: ``remote_skewed``).
BALANCINGS = ("cost", "count")

#: Cost-cache key a fresh agent link seeds its model from when no
#: per-agent record exists yet (``"pipeline"`` is the legacy shared record
#: and the same per-worker units-per-second scale the pipelined driver
#: observes — see :func:`repro.runtime.chunking.cost_model_key`).
_LEGACY_COST_KEY = "pipeline"

_ANNOUNCE = re.compile(r"listening on ([^\s:]+):(\d+)")


def parse_hosts(spec: str) -> tuple[tuple[str, int], ...]:
    """Parse ``"a:7029,b"`` into ``(("a", 7029), ("b", DEFAULT_AGENT_PORT))``.

    IPv6 literals use the bracket convention (``[::1]:7029``); a bare
    multi-colon address (``::1``) is taken as a host with the default port
    rather than misreading its last hextet as one.
    """
    entries: list[tuple[str, int]] = []
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        port_text = ""
        if raw.startswith("["):
            host, bracket, rest = raw[1:].partition("]")
            if not bracket or (rest and not rest.startswith(":")):
                raise ValueError(
                    f"bad agent address {raw!r}: IPv6 literals are "
                    "[address] or [address]:port"
                )
            port_text = rest[1:]
        elif raw.count(":") == 1:
            host, _, port_text = raw.partition(":")
        else:  # hostname/IPv4, or a bare (port-less) IPv6 literal
            host = raw
        if not host:
            raise ValueError(f"bad agent address {raw!r}: empty host")
        if port_text:
            try:
                port = int(port_text)
            except ValueError as exc:
                raise ValueError(
                    f"bad agent address {raw!r}: port must be an integer"
                ) from exc
        else:
            port = DEFAULT_AGENT_PORT
        entries.append((host, port))
    if not entries:
        raise ValueError(f"no agent addresses in hosts spec {spec!r}")
    return tuple(entries)


def resolve_hosts(
    hosts: str | Iterable[tuple[str, int]] | None,
) -> tuple[tuple[str, int], ...] | None:
    """Normalise a ``hosts=`` argument to an address tuple (or loopback).

    ``None`` consults the ``REPRO_HOSTS`` environment variable; an unset
    variable resolves to ``None`` — loopback mode.  Strings are parsed with
    :func:`parse_hosts`; pre-parsed address sequences pass through.
    """
    if hosts is None:
        hosts = os.environ.get(HOSTS_ENV_VAR, "").strip() or None
        if hosts is None:
            return None
    if isinstance(hosts, str):
        return parse_hosts(hosts)
    return tuple((str(host), int(port)) for host, port in hosts)


def _resolve_heartbeat(heartbeat: float | None) -> float:
    """Normalise a ``heartbeat=`` argument (``None`` consults the env var)."""
    if heartbeat is None:
        raw = os.environ.get(HEARTBEAT_ENV_VAR, "").strip()
        if raw:
            try:
                return float(raw)
            except ValueError:
                return HEARTBEAT_INTERVAL
        return HEARTBEAT_INTERVAL
    return float(heartbeat)


def _function_name(fn: Callable[..., Any]) -> str:
    """The importable ``module:qualname`` of a worker body."""
    name = f"{fn.__module__}:{fn.__qualname__}"
    if "<" in name:
        raise ValueError(
            f"remote jobs need an importable module-level function, got {name}"
        )
    return name


def _resolve_function(name: str) -> Callable[..., Any]:
    """Import the worker body an incoming job names (agent side)."""
    module_name, _, qualname = name.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed remote function name {name!r}")
    target = import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


def _localise(obj: Any, repacked: list[ArrayShipment]) -> Any:
    """Replace wire shipments with freshly packed local shipments.

    The agent fans jobs out over its own process pool, so the arrays that
    crossed the wire take their last hop through the local shared-memory
    transport (pickle fallback included) instead of being re-pickled per
    worker.  ``repacked`` collects the shipments so the agent can unlink
    them once the job completes.
    """
    if isinstance(obj, wire.WireShipment):
        shipment = ArrayShipment.pack(obj.load(), transport="auto")
        repacked.append(shipment)
        return shipment
    if isinstance(obj, tuple):
        return tuple(_localise(item, repacked) for item in obj)
    if isinstance(obj, list):
        return [_localise(item, repacked) for item in obj]
    if isinstance(obj, dict):
        return {key: _localise(value, repacked) for key, value in obj.items()}
    return obj


def _picklable_error(exc: BaseException) -> BaseException:
    """The exception itself when it pickles, a faithful stand-in otherwise."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _timed_execute(
    fn: Callable[[Any], Any], args: Any, slowdown: float = 1.0
) -> tuple[Any, float]:
    """Run one job on an agent worker and time it: ``(value, elapsed)``.

    The elapsed wall time rides back in the result frame and feeds the
    coordinator's per-agent cost model.  ``slowdown`` emulates a
    proportionally slower box (the job's own work is stretched by the
    factor, so finer chunks stay proportionally cheaper — unlike a fixed
    per-job sleep, which would mis-price small chunks); it exists for the
    skewed-fleet benchmark and tests, the production default is ``1.0``.
    """
    started = time.perf_counter()
    value = fn(args)
    elapsed = time.perf_counter() - started
    if slowdown > 1.0:
        time.sleep((slowdown - 1.0) * elapsed)
        elapsed = time.perf_counter() - started
    return value, elapsed


def _diagnostic_sleep(args: tuple[float, Any]) -> Any:
    """``(seconds, value)`` → sleep, then return ``value``.

    An importable stand-in job with a controllable duration, used by tests
    and the skewed-fleet benchmark to occupy agents for a known time.
    """
    seconds, value = args
    time.sleep(float(seconds))
    return value


# -- the agent (server side) ----------------------------------------------------------


class AgentServer:
    """One study agent: a socket front on a local worker pool.

    Serves one coordinator connection at a time (reconnects are accepted —
    the local pool persists across connections, like every runtime pool).
    Each incoming job frame is dispatched to the local pool immediately, so
    an agent keeps all its workers busy while more chunks stream in; results
    are framed back in completion order, each carrying the job's worker-side
    wall time.  Heartbeat pings are answered inline from the serve loop —
    never queued behind jobs — so a busy agent still proves it is alive.

    Parameters
    ----------
    host, port:
        Listen address; port ``0`` lets the OS pick (the bound address is
        available as :attr:`address` after :meth:`bind`).
    workers:
        Local worker processes this agent fronts.  With one worker, jobs
        execute in-process (no pool spawn) — the loopback default.
    slowdown:
        Stretch every job's execution by this factor (``1.0`` — the default
        — is full speed).  A benchmarking/testing device for emulating a
        heterogeneous fleet on one machine; see :func:`_timed_execute`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        slowdown: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"an agent needs at least 1 worker, got {workers}")
        if slowdown < 1.0:
            raise ValueError(
                f"--slowdown is a throttle factor >= 1.0, got {slowdown}"
            )
        self._host = host
        self._port = port
        self.workers = int(workers)
        self.slowdown = float(slowdown)
        self._listener: socket.socket | None = None
        self._pool: multiprocessing.pool.Pool | None = None
        self._stopped = threading.Event()
        self.address: tuple[str, int] | None = None

    def bind(self) -> tuple[str, int]:
        """Bind the listen socket and return the concrete ``(host, port)``."""
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            listener.listen(8)
            self._listener = listener
            self.address = listener.getsockname()[:2]
        return self.address

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            if self.workers >= 2:
                self._pool = multiprocessing.Pool(processes=self.workers)
            else:
                self._pool = multiprocessing.pool.ThreadPool(processes=1)
        return self._pool

    def serve_forever(self) -> None:
        """Accept coordinator connections until :meth:`close` is called."""
        self.bind()
        while not self._stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break
            try:
                self._serve_connection(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_lock = threading.Lock()

        def reply(message: dict) -> None:
            # Unpicklable results/errors degrade to a descriptive error
            # frame; an unreachable coordinator is simply gone (it will
            # requeue elsewhere), so send failures are swallowed.
            try:
                frame = wire.encode_message(message)
            except Exception as exc:  # noqa: BLE001 - degrade, don't die
                frame = wire.encode_message(
                    {
                        "job": message.get("job"),
                        "error": RuntimeError(
                            f"agent could not serialise the reply: {exc}"
                        ),
                    }
                )
            try:
                with send_lock:
                    conn.sendall(frame)
            except OSError:
                pass

        wire.send_message(
            conn, {"hello": wire.WIRE_VERSION, "workers": self.workers}
        )
        pool = self._ensure_pool()
        repack_locally = self.workers >= 2
        while not self._stopped.is_set():
            try:
                message = wire.recv_message(conn)
            except Exception:  # noqa: BLE001 - a frame that cannot be
                # decoded (truncation, version skew, a class this agent's
                # build cannot import) poisons the stream: drop the
                # connection — the coordinator requeues elsewhere — and go
                # back to accepting instead of crashing the whole agent.
                break
            if message is None or not isinstance(message, dict):
                break
            op = message.get("op")
            if op == wire.OP_PING:
                # Answered here, from the serve loop, not through the pool:
                # pings must come back even while every worker is busy.
                reply(wire.control_message(wire.OP_PONG, seq=message.get("seq")))
                continue
            if op == wire.OP_SHUTDOWN or "job" not in message:
                break
            job_id = message["job"]
            try:
                fn = _resolve_function(message["fn"])
                args = message["args"]
                repacked: list[ArrayShipment] = []
                if repack_locally:
                    args = _localise(args, repacked)
            except Exception as exc:  # noqa: BLE001 - reported to coordinator
                reply({"job": job_id, "error": _picklable_error(exc)})
                continue

            def _done(
                timed: tuple[Any, float],
                job_id: int = job_id,
                repacked: list[ArrayShipment] = repacked,
            ) -> None:
                value, elapsed = timed
                reply({"job": job_id, "result": value, "elapsed": elapsed})
                for shipment in repacked:
                    shipment.unlink()

            def _failed(
                exc: BaseException,
                job_id: int = job_id,
                repacked: list[ArrayShipment] = repacked,
            ) -> None:
                reply({"job": job_id, "error": _picklable_error(exc)})
                for shipment in repacked:
                    shipment.unlink()

            pool.apply_async(
                _timed_execute,
                (fn, args, self.slowdown),
                callback=_done,
                error_callback=_failed,
            )

    def close(self) -> None:
        """Stop accepting, tear the local pool down (idempotent)."""
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def serve_agent(
    bind: str = "127.0.0.1:0",
    workers: int = 1,
    *,
    slowdown: float = 1.0,
    exit_with_parent: bool = False,
) -> None:
    """Run one agent in the foreground (the ``worker serve`` CLI body).

    Announces the concrete listen address on stdout (``listening on
    host:port``) so loopback spawners — and humans — can read the
    OS-assigned port back.  ``exit_with_parent`` arms a watchdog that exits
    the agent when the spawning process dies, which is how loopback agents
    avoid outliving a killed coordinator.
    """
    import signal

    host, _, port_text = bind.rpartition(":")
    if not host or not port_text:
        raise ValueError(f"--bind must be HOST:PORT, got {bind!r}")
    server = AgentServer(host, int(port_text), workers, slowdown=slowdown)
    # Turn SIGTERM (coordinator close(), `kill`) into a clean interpreter
    # exit so atexit hooks — notably the shared-memory shipment sweep —
    # still run.  SIGKILL remains uncatchable; those segments fall to the
    # multiprocessing resource tracker.
    try:
        signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    bound_host, bound_port = server.bind()
    print(
        f"repro-agent listening on {bound_host}:{bound_port} "
        f"(workers={workers}, wire v{wire.WIRE_VERSION})",
        flush=True,
    )
    if exit_with_parent:
        parent = os.getppid()

        def _watchdog() -> None:
            while True:
                time.sleep(1.0)
                if os.getppid() != parent:
                    os._exit(0)

        threading.Thread(target=_watchdog, daemon=True).start()
    try:
        server.serve_forever()
    finally:
        server.close()


# -- loopback spawning ----------------------------------------------------------------


def _split_workers(total: int, agents: int) -> list[int]:
    """Split ``total`` workers across ``agents`` agents, largest share first."""
    agents = max(1, min(agents, total))
    base, extra = divmod(total, agents)
    return [base + (1 if index < extra else 0) for index in range(agents)]


def _spawn_loopback_agent(
    workers: int, slowdown: float = 1.0
) -> tuple[subprocess.Popen, tuple[str, int]]:
    """Start one agent subprocess on this machine and read its address back."""
    import repro

    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "worker",
        "serve",
        "--bind",
        "127.0.0.1:0",
        "--workers",
        str(workers),
        "--exit-with-parent",
    ]
    if slowdown != 1.0:
        command += ["--slowdown", str(slowdown)]
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, text=True, env=env
    )
    # Read the announce line through a helper thread instead of select():
    # select on a pipe is Unix-only, and a plain readline could block past
    # the deadline if the agent wedges during start-up.
    announced: queue.SimpleQueue = queue.SimpleQueue()
    threading.Thread(
        target=lambda: announced.put(process.stdout.readline()),
        daemon=True,
    ).start()
    deadline = time.monotonic() + CONNECT_TIMEOUT
    line = ""
    while time.monotonic() < deadline:
        try:
            line = announced.get(timeout=0.2)
            break
        except queue.Empty:
            if process.poll() is not None:
                raise RuntimeError(
                    f"loopback agent exited with code {process.returncode} "
                    "before announcing its address"
                )
    match = _ANNOUNCE.search(line)
    if not match:
        process.terminate()
        raise RuntimeError(
            f"loopback agent announced {line!r} instead of its address"
        )
    return process, (match.group(1), int(match.group(2)))


# -- the coordinator (client side) ----------------------------------------------------


class RemoteAsyncResult:
    """The remote twin of :class:`multiprocessing.pool.AsyncResult`."""

    __slots__ = ("_event", "_value", "_error", "_callbacks", "_lock", "job_id")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None
        self._callbacks: list[Callable[["RemoteAsyncResult"], object]] = []
        self._lock = threading.Lock()
        #: The wire-level job id this handle tracks (set by ``submit``).
        self.job_id: int | None = None

    def ready(self) -> bool:
        """Whether the job's result (or failure) has arrived."""
        return self._event.is_set()

    def get(self, timeout: float | None = None) -> Any:
        """Block until the result arrives; re-raise the job's failure."""
        if not self._event.wait(timeout):
            raise multiprocessing.TimeoutError("remote job still running")
        if self._error is not None:
            raise self._error
        return self._value

    def _settle(self, value: Any, error: BaseException | None) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._value = value
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _on_done(self, callback: Callable[["RemoteAsyncResult"], object]) -> None:
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)


class _Job:
    """One submitted chunk: its frame is kept until the result lands, so a
    lost agent's outstanding work can be re-sent verbatim elsewhere, and its
    estimated cost in units prices it for routing and model feedback."""

    __slots__ = ("job_id", "frame", "handle", "units")

    def __init__(
        self, job_id: int, frame: bytes, handle: RemoteAsyncResult, units: float
    ) -> None:
        self.job_id = job_id
        self.frame = frame
        self.handle = handle
        self.units = units


class _AgentLink:
    """Coordinator-side connection to one agent.

    Besides the socket, the link owns the agent's share of the dispatch
    state: ``inflight`` (frames on the wire, keyed by job id), ``queued``
    (jobs routed here but not yet sent — the stealable backlog) and a
    per-agent :class:`~repro.runtime.chunking.CostModel` observed from the
    wall times the agent reports.
    """

    def __init__(
        self,
        pool: "RemoteStudyPool",
        host: str,
        port: int,
        process: subprocess.Popen | None = None,
    ) -> None:
        self.pool = pool
        self.host = host
        self.port = port
        self.process = process
        self.sock: socket.socket | None = None
        self.workers = 0
        self.alive = False
        self.inflight: dict[int, _Job] = {}  # guarded-by: pool._lock
        self.queued: deque[_Job] = deque()  # guarded-by: pool._lock
        #: Jobs this link delivered results for (observability and tests).
        self.completed = 0  # guarded-by: pool._lock
        #: Monotonic time of the last frame received from this agent; the
        #: heartbeat loop declares the agent dead when it goes stale.
        self.last_heard = 0.0
        #: Observed per-worker throughput of this agent, seeded from the
        #: cost cache (a named agent's own record first, then the legacy
        #: shared record).
        self.cost_model = load_cost_model(
            f"agent/{host}:{port}", fallback_keys=(_LEGACY_COST_KEY,)
        )
        self._send_lock = threading.Lock()
        self._receiver: threading.Thread | None = None

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def capacity(self) -> int | None:
        """Max frames on the wire (``None``: unbounded — count balancing)."""
        if self.pool.balancing == "count":
            return None
        return max(1, self.workers) * PREFETCH_PER_WORKER

    @property
    def throughput(self) -> float:
        """Estimated units per second across this agent's workers."""
        return max(1, self.workers) * self.cost_model.units_per_second

    def backlog_units(self) -> float:  # holds: pool._lock
        """Estimated units outstanding on this link (queued + in-flight)."""
        return sum(job.units for job in self.inflight.values()) + sum(
            job.units for job in self.queued
        )

    def eta(self, extra_units: float = 0.0) -> float:  # holds: pool._lock
        """Estimated seconds to drain the backlog plus ``extra_units``."""
        return (self.backlog_units() + extra_units) / self.throughput

    def connect(self, timeout: float = CONNECT_TIMEOUT) -> None:
        deadline = time.monotonic() + timeout
        attempt = 0
        while True:
            remaining = deadline - time.monotonic()
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=max(0.05, remaining)
                )
                break
            except OSError:
                # The agent may simply not be up yet (fleets launch in any
                # order): back off exponentially with jitter and retry
                # until the deadline.
                attempt += 1
                delay = min(
                    CONNECT_RETRY_CAP, CONNECT_RETRY_BASE * 2 ** (attempt - 1)
                )
                delay *= 0.5 + random.random()
                if time.monotonic() + delay >= deadline:
                    raise
                time.sleep(delay)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = wire.recv_message(sock)
            if not isinstance(hello, dict) or "workers" not in hello:
                raise wire.WireError(
                    f"agent {self.name} opened with {hello!r} instead of a hello"
                )
            sock.settimeout(None)
        except BaseException:
            # A handshake that dies half-way (recv error, bad hello) must
            # not leak the connected socket.
            sock.close()
            raise
        self.sock = sock
        self.workers = max(1, int(hello["workers"]))
        self.alive = True
        self.last_heard = time.monotonic()
        self._receiver = threading.Thread(
            target=self._receive_loop, name=f"repro-agent-rx-{self.name}",
            daemon=True,
        )
        self._receiver.start()

    def _receive_loop(self) -> None:
        try:
            while True:
                message = wire.recv_message(self.sock)
                if message is None:
                    break
                self.last_heard = time.monotonic()
                if isinstance(message, dict) and "job" in message:
                    self.pool._deliver(self, message)
                # Pongs need no further handling: receiving *any* frame
                # refreshed last_heard, which is all a heartbeat proves.
        except Exception:  # noqa: BLE001 - any decode failure (WireError,
            # OSError, a pickle/zlib error from a corrupt or version-skewed
            # frame) means the stream can no longer be trusted.
            pass
        finally:
            # Unconditional: however this loop ends, the link's outstanding
            # jobs must be requeued (or failed) — never left to hang their
            # waiters forever.
            self.pool._agent_lost(self)

    def send(self, frame: bytes) -> None:
        with self._send_lock:
            self.sock.sendall(frame)

    def close(self, graceful: bool = True) -> None:
        self.alive = False
        if self.sock is not None:
            if graceful:
                try:
                    self.send(wire.encode_message({"op": wire.OP_SHUTDOWN}))
                except OSError:
                    pass
            try:
                self.sock.close()
            except OSError:
                pass
        if self.process is not None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck agent
                self.process.kill()
                self.process.wait()
            if self.process.stdout is not None:
                self.process.stdout.close()


class RemoteStudyPool:
    """The remote lane: :class:`~repro.runtime.pool.StudyPool`'s contract,
    served by worker agents over sockets.

    Parameters
    ----------
    workers:
        Total worker target in loopback mode (split across
        :data:`LOOPBACK_AGENTS` auto-spawned local agents); ignored when
        ``hosts`` names real agents, whose advertised worker counts add up
        to the pool's capacity instead.
    hosts:
        Agent addresses — a ``"host:port,host:port"`` string or a parsed
        address sequence.  ``None`` consults ``REPRO_HOSTS`` and falls back
        to loopback mode.
    balancing:
        ``"cost"`` (default) — throughput-proportional routing against
        per-agent cost models, with bounded prefetch and work stealing;
        ``"count"`` — the historical workers-only routing, kept as the
        benchmark baseline.
    heartbeat:
        Seconds between liveness pings (``None`` consults
        ``REPRO_HEARTBEAT`` and falls back to
        :data:`HEARTBEAT_INTERVAL`; zero or negative disables the
        heartbeat loop — agent loss is then detected on socket errors
        only).

    The pool is used through the same three members as every other lane:
    :meth:`submit`, :meth:`imap_unordered`, :meth:`close` — which is what
    lets every study driver run remotely unchanged.  Balancing, stealing,
    heartbeats and membership changes never affect study results — every
    task carries its own derived seed — only where and when chunks run.
    """

    kind = "remote"

    def __init__(
        self,
        workers: int | None = None,
        *,
        hosts: str | Iterable[tuple[str, int]] | None = None,
        balancing: str = "cost",
        heartbeat: float | None = None,
    ) -> None:
        if balancing not in BALANCINGS:
            raise ValueError(
                f"balancing must be one of {BALANCINGS}, got {balancing!r}"
            )
        self.hosts_spec = resolve_hosts(hosts)
        self.balancing = balancing
        self._heartbeat = _resolve_heartbeat(heartbeat)
        self._lock = threading.RLock()
        self._jobs: dict[int, _Job] = {}  # guarded-by: _lock
        self._job_ids = itertools.count(1)
        self._closed = False  # guarded-by: _lock
        #: Results that arrived for already-settled jobs (an agent racing
        #: its own loss, or a stolen frame's first execution); discarded,
        #: counted for observability and tests.
        self.duplicates_ignored = 0  # guarded-by: _lock
        #: Queued jobs re-routed to an agent that drained early.
        self.steals = 0  # guarded-by: _lock
        self._agents: list[_AgentLink] = []  # guarded-by: _lock
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None
        try:
            if self.hosts_spec is not None:
                for host, port in self.hosts_spec:
                    link = _AgentLink(self, host, port)
                    link.connect()
                    self._agents.append(link)
            else:
                total = max(2, int(workers or 0))
                for share in _split_workers(total, LOOPBACK_AGENTS):
                    process, (host, port) = _spawn_loopback_agent(share)
                    link = _AgentLink(self, host, port, process=process)
                    link.connect()
                    self._agents.append(link)
        except BaseException:
            for link in self._agents:
                link.close(graceful=False)
            raise
        if self._heartbeat > 0:
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-remote-heartbeat",
                daemon=True,
            )
            self._hb_thread.start()

    # -- the StudyPool contract ---------------------------------------------------

    @property
    def workers(self) -> int:
        """Total advertised workers across the currently alive agents."""
        with self._lock:
            return sum(link.workers for link in self._agents if link.alive)

    @property
    def alive(self) -> bool:
        """Whether the pool can still accept work."""
        with self._lock:
            return not self._closed and any(
                link.alive for link in self._agents
            )

    def submit(
        self, fn: Callable[[Any], Any], args: Any, units: float | None = None
    ) -> RemoteAsyncResult:
        """Frame ``fn(args)`` and route it to the best agent.

        ``units`` is the job's estimated cost in the shared cost-unit scale
        (messages / stacked-matrix cells — see
        :mod:`repro.runtime.chunking`); it prices the job for routing and
        for the delivering agent's model feedback.  ``None`` prices every
        job equally.  Like all balancing state it can never change results.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("RemoteStudyPool is closed")
            job_id = next(self._job_ids)
        frame = wire.encode_message(
            {"job": job_id, "fn": _function_name(fn), "args": args}
        )
        handle = RemoteAsyncResult()
        handle.job_id = job_id
        job = _Job(job_id, frame, handle, units=float(units or 0) or 1.0)
        with self._lock:
            agent = self._route(job)  # before registering: a raise here
            self._jobs[job_id] = job  # must not strand the job record
            agent.queued.append(job)
        self._pump(agent)
        return handle

    def imap_unordered(
        self, fn: Callable[[Any], Any], iterable: Iterable[Any]
    ) -> Iterator[Any]:
        """Submit every job now; yield results in completion order."""
        handles = [self.submit(fn, args) for args in iterable]
        done: queue.SimpleQueue = queue.SimpleQueue()
        for handle in handles:
            handle._on_done(done.put)

        def _results() -> Iterator[Any]:
            for _ in range(len(handles)):
                yield done.get().get()

        return _results()

    def close(self) -> None:
        """Disconnect every agent, stop loopback subprocesses (idempotent).

        Jobs still pending fail with a descriptive error rather than
        hanging their waiters forever.  Named agents' observed cost models
        are persisted to the cost cache (when enabled) so the next study
        routes its *first* chunks against measured throughput.
        """
        self._hb_stop.set()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            orphaned = list(self._jobs.values())
            self._jobs.clear()
            agents = list(self._agents)
        for job in orphaned:
            job.handle._settle(
                None, RuntimeError("RemoteStudyPool closed with jobs pending")
            )
        for link in agents:
            # Loopback agents get fresh OS-assigned ports every run, so a
            # per-agent record would never be read back — only named agents
            # persist their models.
            if link.process is None and link.cost_model.observed:
                save_cost_model(f"agent/{link.name}", link.cost_model)
            link.close()

    def __enter__(self) -> "RemoteStudyPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- elastic membership -------------------------------------------------------

    def add_host(self, host: str, port: int | None = None) -> _AgentLink:
        """Connect one more agent mid-study; it immediately steals work.

        ``host`` may be a bare hostname (``port`` applying, default
        :data:`DEFAULT_AGENT_PORT`) or a ``"host:port"`` string.  Adding an
        address that is already connected and alive is a no-op returning
        the existing link.
        """
        if port is None:
            ((host, port),) = parse_hosts(host)
        address = (str(host), int(port))
        with self._lock:
            if self._closed:
                raise RuntimeError("RemoteStudyPool is closed")
            for link in self._agents:
                if link.alive and (link.host, link.port) == address:
                    return link
        link = _AgentLink(self, *address)
        link.connect()
        with self._lock:
            if self._closed:
                link.close(graceful=False)
                raise RuntimeError("RemoteStudyPool is closed")
            self._agents.append(link)
        self._replenish(link)
        return link

    def rescan_hosts(self) -> list[_AgentLink]:
        """Re-read ``REPRO_HOSTS`` and connect any newly named agents.

        Returns the links added.  Unreachable new hosts are skipped (they
        can be rescanned again later); already-connected hosts are left
        untouched.  A pool in loopback mode joins named agents too — the
        variable simply names more capacity.
        """
        spec = resolve_hosts(None)
        if spec is None:
            return []
        added: list[_AgentLink] = []
        for host, port in spec:
            try:
                with self._lock:
                    known = any(
                        link.alive and (link.host, link.port) == (host, port)
                        for link in self._agents
                    )
                if not known:
                    added.append(self.add_host(host, port))
            except (OSError, wire.WireError):
                continue
        if self.hosts_spec is not None:
            self.hosts_spec = spec
        return added

    def partition_weights(self) -> list[float] | None:
        """Per-chunk-slot throughput weights of the current fleet.

        One entry per worker of each alive agent — the agent's estimated
        per-worker units-per-second — sorted fastest first, ready to pass
        to :func:`repro.runtime.chunking.partition_by_cost` so chunk sizes
        track the fleet's skew.  ``None`` under ``balancing="count"`` (the
        baseline must keep the historical uniform split) or when no agent
        is alive.
        """
        if self.balancing != "cost":
            return None
        weights: list[float] = []
        with self._lock:
            for link in self._agents:
                if not link.alive:
                    continue
                rate = link.cost_model.units_per_second
                weights.extend([rate] * max(1, link.workers))
        if not weights:
            return None
        weights.sort(reverse=True)
        return weights

    # -- internals ----------------------------------------------------------------

    def _route(self, job: _Job) -> _AgentLink:  # holds: _lock
        """The alive agent this job should wait on (call holding the lock).

        Cost balancing picks the lowest estimated completion time —
        current backlog plus this job, over estimated throughput — so a
        fast agent absorbs proportionally more work; count balancing keeps
        the historical lowest-load-per-worker rule.
        """
        alive = [link for link in self._agents if link.alive]
        if not alive:
            raise RuntimeError("no remote agents available")
        if self.balancing == "count":
            return min(
                alive,
                key=lambda link: (len(link.inflight) + len(link.queued))
                / link.workers,
            )
        return min(alive, key=lambda link: link.eta(job.units))

    def _pump(self, agent: _AgentLink) -> None:
        """Move sendable jobs from ``agent``'s queue onto the wire."""
        batch: list[_Job] = []
        with self._lock:
            if not agent.alive:
                return
            capacity = agent.capacity
            while agent.queued and (
                capacity is None or len(agent.inflight) < capacity
            ):
                job = agent.queued.popleft()
                if job.job_id not in self._jobs:
                    continue  # settled while queued (a stolen twin won)
                agent.inflight[job.job_id] = job
                batch.append(job)
        for job in batch:
            try:
                agent.send(job.frame)
            except OSError:
                self._agent_lost(agent)
                return

    def _replenish(self, agent: _AgentLink) -> None:
        """Refill a draining agent: its own queue first, then stealing.

        Steals take the *most recently routed* job (queue tail) from the
        peer with the largest estimated backlog, and only while that peer
        is worse off than the thief — so work moves strictly from slower
        to faster agents.  In-flight frames are never stolen, and a job is
        a whole chain-atomic chunk, so stealing can never split a chain.
        """
        if self.balancing == "cost":
            with self._lock:
                if not agent.alive:
                    return
                capacity = agent.capacity
                while len(agent.inflight) + len(agent.queued) < capacity:
                    victims = [
                        link
                        for link in self._agents
                        if link.alive and link is not agent and link.queued
                    ]
                    if not victims:
                        break
                    victim = max(victims, key=lambda link: link.eta())
                    if victim.eta() <= agent.eta():
                        break
                    job = victim.queued.pop()
                    if job.job_id not in self._jobs:
                        continue
                    agent.queued.append(job)
                    self.steals += 1
        self._pump(agent)

    def _heartbeat_loop(self) -> None:
        """Ping every alive agent; declare the silent ones dead."""
        sequence = itertools.count(1)
        while not self._hb_stop.wait(self._heartbeat):
            now = time.monotonic()
            stale = self._heartbeat * HEARTBEAT_MISS_FACTOR
            with self._lock:
                links = list(self._agents)
            for link in links:
                if not link.alive:
                    continue
                if now - link.last_heard > stale:
                    # The socket may still look healthy (a frozen host's
                    # kernel keeps ACKing) — silence is the only signal.
                    self._agent_lost(link)
                    continue
                frame = wire.encode_message(
                    wire.control_message(wire.OP_PING, seq=next(sequence))
                )
                try:
                    link.send(frame)
                except OSError:
                    self._agent_lost(link)

    def _deliver(self, agent: _AgentLink, message: dict) -> None:
        """Settle one job from a result frame (first delivery wins)."""
        job_id = message["job"]
        with self._lock:
            job = self._jobs.pop(job_id, None)
            if job is None:
                self.duplicates_ignored += 1
                return
            for link in self._agents:
                link.inflight.pop(job_id, None)
            agent.completed += 1
            elapsed = message.get("elapsed")
            if isinstance(elapsed, (int, float)) and elapsed > 0:
                agent.cost_model.observe(job.units, float(elapsed))
        error = message.get("error")
        if error is not None and not isinstance(error, BaseException):
            error = RuntimeError(str(error))
        job.handle._settle(message.get("result"), error)
        self._replenish(agent)

    def _agent_lost(self, agent: _AgentLink) -> None:
        """Mark ``agent`` dead and re-route its outstanding jobs elsewhere."""
        with self._lock:
            if not agent.alive:
                return
            agent.alive = False
            orphaned = [
                job
                for job in agent.inflight.values()
                if job.job_id in self._jobs
            ]
            orphaned += [
                job for job in agent.queued if job.job_id in self._jobs
            ]
            agent.inflight.clear()
            agent.queued.clear()
            closed = self._closed
        if agent.sock is not None:
            try:
                agent.sock.close()
            except OSError:
                pass
        if closed:
            return
        targets: list[_AgentLink] = []
        failed: list[_Job] = []
        for job in orphaned:
            with self._lock:
                if job.job_id not in self._jobs:
                    continue  # delivered while we were requeueing
                try:
                    target = self._route(job)
                except RuntimeError:
                    self._jobs.pop(job.job_id, None)
                    failed.append(job)
                    continue
                target.queued.append(job)
                if target not in targets:
                    targets.append(target)
        for job in failed:
            job.handle._settle(
                None,
                RuntimeError(
                    f"agent {agent.name} was lost with no surviving "
                    "agents to requeue onto"
                ),
            )
        for target in targets:
            self._pump(target)
