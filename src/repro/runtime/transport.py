"""Zero-copy shipping of NumPy array bundles to worker processes.

The studies move two kinds of bulk data to workers: stacked ``(K, n, n)``
cost matrices (Monte-Carlo scheduling) and compiled program arrays (measured
sweeps).  Pickling those per chunk re-serialises megabytes that every worker
then deserialises again.  An :class:`ArrayShipment` instead packs the arrays
into one :mod:`multiprocessing.shared_memory` block: the parent copies each
array in exactly once, the handle that travels through the task pickle is a
few bytes (segment name + dtype/shape/offset specs), and workers map the
block and read the arrays **in place** — no copy, no decode.

Shared memory is not available everywhere (some sandboxes mount no
``/dev/shm``), so ``transport="auto"`` probes once and silently falls back to
carrying the arrays inside the pickle itself; ``"shm"`` and ``"pickle"``
force either side.  Both transports deliver bit-identical arrays — the
determinism suite runs the same study over each and compares exactly.

Lifecycle: the parent calls :meth:`ArrayShipment.unlink` once every consumer
is done; workers call :meth:`ArrayShipment.close` (or use the shipment as a
context manager) when they finish reading.  Loaded arrays are read-only
views — executing a shipped batch never mutates shipped data.

Shipping is a **process-lane** concern: the thread lane
(:class:`~repro.runtime.pool.ThreadStudyPool`, ``executor="thread"``) shares
the parent's address space and bypasses this module entirely — thread
workers receive the parent's arrays by reference.  That is exactly why
``executor="auto"`` (:func:`repro.runtime.chunking.choose_executor`) routes
batches too small to amortise a shipment onto threads.
"""

from __future__ import annotations

import atexit
import os
import pickle
from dataclasses import dataclass, field
from typing import Any

import numpy as np

try:  # pragma: no cover - import failure only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Valid ``transport=`` values accepted by the runtime entry points.
TRANSPORTS = ("auto", "shm", "pickle")

#: Alignment of each array inside the shared block (cache-line friendly and
#: valid for every NumPy dtype the library ships).
_ALIGN = 64

_shm_probe_result: bool | None = None

#: Shared-memory segments packed by this process and not yet unlinked,
#: mapped to the pid that owns them.  The pid guards forked children (pool
#: workers inherit the dict but own none of the segments) from sweeping
#: their parent's segments.
_owned_segments: dict[str, int] = {}


def sweep_shipments() -> None:
    """Unlink every segment this process packed and never unlinked.

    The normal lifecycle (:meth:`ArrayShipment.unlink` in a ``finally``)
    leaves nothing for this sweep; it exists for *aborted* runs — a study
    process dying mid-pipeline on an exception, a remote agent terminated
    with chunks in flight (agents convert SIGTERM into a clean exit exactly
    so this sweep still runs) — where leaked segments would otherwise
    outlive the process and trigger resource-tracker warnings.  A SIGKILL
    skips every exit path by definition; those segments fall to the
    :mod:`multiprocessing` resource tracker.  Registered with
    :mod:`atexit`; safe to call any time, idempotent.
    """
    pid = os.getpid()
    for name in [n for n, owner in _owned_segments.items() if owner == pid]:
        _owned_segments.pop(name, None)
        try:
            segment = _attach(name)
            segment.unlink()
            segment.close()
        except Exception:  # noqa: BLE001 - already gone is the good case
            pass


atexit.register(sweep_shipments)


def shared_memory_available() -> bool:
    """Whether POSIX/Windows shared memory actually works here (probed once)."""
    global _shm_probe_result
    if _shm_probe_result is None:
        if _shared_memory is None:
            _shm_probe_result = False
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=16)
                try:
                    probe.close()
                finally:
                    probe.unlink()
                _shm_probe_result = True
            except Exception:
                _shm_probe_result = False
    return _shm_probe_result


def resolve_transport(transport: str | None) -> str:
    """Normalise a ``transport=`` argument to ``"shm"`` or ``"pickle"``."""
    if transport is None:
        transport = "auto"
    if transport not in TRANSPORTS:
        raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
    if transport == "auto":
        return "shm" if shared_memory_available() else "pickle"
    if transport == "shm" and not shared_memory_available():
        raise RuntimeError("shared memory is not available on this platform")
    return transport


def _attach(name: str) -> Any:
    """Map an existing segment without adopting cleanup responsibility.

    Python 3.13+ supports ``track=False`` directly.  Before that, attaching
    registers the segment with the process's resource tracker; under the
    default ``fork`` start method every process shares the creator's tracker,
    so the duplicate registration is an idempotent no-op and the creator's
    ``unlink`` cleans it up — no manual unregistering (which would race the
    creator's own bookkeeping).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        return _shared_memory.SharedMemory(name=name)


@dataclass
class ArrayShipment:
    """A named bundle of arrays travelling to workers by handle, not by value.

    Build with :meth:`pack`; read with :meth:`load`.  The object itself is
    picklable: for the ``"shm"`` transport the pickle carries only the
    segment name and the array specs, for ``"pickle"`` it carries the raw
    bytes (the fallback behaves exactly like shipping the arrays directly).
    """

    transport: str
    specs: list[tuple[str, str, tuple[int, ...], int]] = field(default_factory=list)
    shm_name: str | None = None
    payload: bytes | None = None
    _shm: object | None = field(default=None, repr=False, compare=False)
    _arrays: dict | None = field(default=None, repr=False, compare=False)

    # -- construction (parent side) ---------------------------------------------------

    @classmethod
    def pack(
        cls, arrays: dict[str, np.ndarray], *, transport: str | None = None
    ) -> "ArrayShipment":
        """Pack named arrays for shipping (one copy per array, total)."""
        resolved = resolve_transport(transport)
        contiguous = {
            name: np.ascontiguousarray(array) for name, array in arrays.items()
        }
        if resolved == "pickle":
            return cls(
                transport="pickle",
                specs=[
                    (name, array.dtype.str, array.shape, 0)
                    for name, array in contiguous.items()
                ],
                payload=pickle.dumps(contiguous, protocol=pickle.HIGHEST_PROTOCOL),
            )
        specs: list[tuple[str, str, tuple[int, ...], int]] = []
        offset = 0
        for name, array in contiguous.items():
            offset = -(-offset // _ALIGN) * _ALIGN  # round up
            specs.append((name, array.dtype.str, array.shape, offset))
            offset += array.nbytes
        shm = _shared_memory.SharedMemory(create=True, size=max(1, offset))
        try:
            for (name, dtype, shape, start), array in zip(specs, contiguous.values()):
                view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=start)
                view[...] = array
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        _owned_segments[shm.name] = os.getpid()
        return cls(transport="shm", specs=specs, shm_name=shm.name, _shm=shm)

    # -- pickling ---------------------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "transport": self.transport,
            "specs": self.specs,
            "shm_name": self.shm_name,
            "payload": self.payload,
        }

    def __setstate__(self, state: dict) -> None:
        self.transport = state["transport"]
        self.specs = state["specs"]
        self.shm_name = state["shm_name"]
        self.payload = state["payload"]
        self._shm = None
        self._arrays = None

    # -- consumption (worker or parent side) ------------------------------------------

    def load(self) -> dict[str, np.ndarray]:
        """The shipped arrays, keyed by name.

        ``"shm"`` returns read-only views straight into the shared block
        (valid until :meth:`close`); ``"pickle"`` decodes the payload once
        and caches it.
        """
        if self._arrays is not None:
            return self._arrays
        if self.transport == "pickle":
            self._arrays = pickle.loads(self.payload)
        else:
            if self._shm is None:
                self._shm = _attach(self.shm_name)
            arrays: dict[str, np.ndarray] = {}
            for name, dtype, shape, start in self.specs:
                view = np.ndarray(
                    shape, dtype=dtype, buffer=self._shm.buf, offset=start
                )
                view.flags.writeable = False
                arrays[name] = view
            self._arrays = arrays
        return self._arrays

    def close(self) -> None:
        """Drop the local mapping (views from :meth:`load` become invalid)."""
        self._arrays = None
        if self._shm is not None:
            shm, self._shm = self._shm, None
            try:
                shm.close()
            except BufferError:
                # A consumer still holds a view into the block.  The mapping
                # is released when the last view is garbage-collected; the
                # segment itself is destroyed by the owner's unlink().
                pass

    def unlink(self) -> None:
        """Destroy the shared block (idempotent — extra calls are no-ops).

        The owner calls this once every consumer is done; the atexit sweep
        (:func:`sweep_shipments`) covers shipments whose owner died first.
        """
        if self.transport != "shm" or self.shm_name is None:
            return
        _owned_segments.pop(self.shm_name, None)
        if self._shm is None:
            try:
                self._shm = _attach(self.shm_name)
            except FileNotFoundError:  # already unlinked elsewhere
                self.shm_name = None
                return
        shm = self._shm
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass
        self.shm_name = None
        self.close()

    def __enter__(self) -> "ArrayShipment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
