"""Discrete-event simulation of message passing on a grid.

This sub-package is the stand-in for the paper's 88-machine GRID5000 testbed
(see DESIGN.md §4).  It executes *per-node* communication programs — every
machine, not just cluster coordinators — under a pLogP-style cost model with
NIC occupancy and optional multiplicative noise, and reports per-node message
arrival times plus a full message trace.

Building blocks
---------------

* :class:`~repro.simulator.engine.SimulationEngine` — a classic event-queue
  simulator (time-ordered callbacks, deterministic tie-breaking).
* :class:`~repro.simulator.network.SimulatedNetwork` — the grid's node-level
  cost model: per-node NIC availability, per-message gap/latency derived from
  the topology, optional log-normal noise.
* :class:`~repro.simulator.program.CommunicationProgram` — a per-rank ordered
  send list ("once you hold the message, send it to these ranks in this
  order"), the common representation produced by the MPI layer for broadcast,
  scatter and all-to-all patterns.
* :func:`~repro.simulator.execution.execute_program` — runs a program on a
  network and returns an :class:`~repro.simulator.execution.ExecutionResult`
  (arrival times, makespan, trace).
* :func:`~repro.simulator.batch.execute_programs` — runs many independent
  programs in one pass (compiled programs, array-backed per-program state,
  per-program noise seeds), bit-identical to the scalar engine and the
  workhorse behind the measured sweeps of the practical study.
"""

from repro.simulator.engine import SimulationEngine
from repro.simulator.network import NetworkConfig, SimulatedNetwork
from repro.simulator.program import CommunicationProgram, SendInstruction
from repro.simulator.execution import ExecutionResult, MessageRecord, execute_program
from repro.simulator.batch import ExecutionTask, execute_programs

__all__ = [
    "SimulationEngine",
    "NetworkConfig",
    "SimulatedNetwork",
    "CommunicationProgram",
    "SendInstruction",
    "ExecutionResult",
    "MessageRecord",
    "execute_program",
    "ExecutionTask",
    "execute_programs",
]
