"""A minimal, deterministic discrete-event engine.

The engine keeps a priority queue of ``(time, sequence, callback)`` events.
The sequence number makes the ordering of simultaneous events deterministic
(FIFO in scheduling order), which keeps simulated "measurements" reproducible
across runs and platforms.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.utils.validation import check_non_negative

EventCallback = Callable[[], None]


class SimulationEngine:
    """Event-queue simulator with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, EventCallback]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Number of events executed since construction."""
        return self._processed

    def schedule_at(self, time: float, callback: EventCallback) -> None:
        """Schedule ``callback`` to run at absolute simulation time ``time``."""
        check_non_negative(time, "time")
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time} before the current time {self._now}"
            )
        if not callable(callback):
            raise TypeError("callback must be callable")
        heapq.heappush(self._queue, (time, self._sequence, callback))
        self._sequence += 1

    def schedule_after(self, delay: float, callback: EventCallback) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        check_non_negative(delay, "delay")
        self.schedule_at(self._now + delay, callback)

    def run(self, *, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue drains (or a limit is reached).

        Parameters
        ----------
        until:
            Optional horizon; events scheduled strictly after it stay queued.
            When the queue drains the clock advances to ``until`` even if the
            last event fired earlier, so back-to-back ``run(until=...)`` calls
            tile the timeline without gaps.
        max_events:
            Optional safety valve against runaway callback loops; when it
            trips, the clock stays at the last processed event (the horizon
            has not been reached).

        Returns
        -------
        float
            The simulation time after the last processed event.
        """
        if until is not None:
            check_non_negative(until, "until")
        executed = 0
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self._now = time
            callback()
            self._processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and not self._queue and self._now < until:
            self._now = until
        return self._now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._sequence = 0
        self._processed = 0
