"""Batched execution of many independent (or chained) communication programs.

The practical study (paper §7, Figures 5/6) measures one discrete-event
execution per (heuristic, message size) — plus the binomial baseline — on the
same grid.  Run through :func:`~repro.simulator.execution.execute_program`
each message pays for a topology lookup, a fresh
:class:`~repro.model.plogp.PLogPParameters` object, a piecewise gap-function
evaluation, a callback closure and a trace dataclass; the per-message Python
overhead dwarfs the arithmetic.  This module executes a whole batch of
programs in one pass instead:

* every program is **compiled** once — per-message gap/latency evaluated
  through a memo keyed by (cluster pair, size) shared across the batch,
  flattened into per-rank message arrays — so the hot loop touches only plain
  numbers;
* NIC occupancy, activation and completion state live in flat per-rank state
  rows keyed per program, advanced by a per-program delivery-event heap
  (programs are independent, so running them back to back is observationally
  identical to interleaving their events — and keeps each program's state row
  cache-hot);
* long send bursts (a flat scatter root, an all-to-all coordinator) are
  issued vectorised — noise included, via masked bulk log-normal draws — while
  short bursts take a scalar fast path; both reproduce the reference
  arithmetic operation-for-operation;
* each program owns its own noise stream (``noise_seed``), which is what
  makes batching, reordering and multiprocessing fan-out bit-preserving;
* a task may instead declare ``reset_network=False`` to **chain** onto the
  previous task's warm network — NIC backlog and the noise stream carry over,
  exactly like the scalar engine's ``execute_program(reset_network=False)`` —
  which is how back-to-back collective pipelines (scatter→all-to-all,
  repeated broadcasts) are measured as one workload.

Worker fan-out goes through the runtime layer and has two lanes.  On the
**process lane** the batch is compiled **once in the parent**, the compiled
arrays ship to the persistent :class:`~repro.runtime.pool.StudyPool` via
shared memory (:mod:`repro.runtime.transport`; pickle fallback), and each
worker executes a chain-respecting slice against zero-copy views.  On the
**thread lane** (:class:`~repro.runtime.pool.ThreadStudyPool`) workers are
threads of the parent and read the compiled arrays in place — no shipment,
no pickling, no result round-trip — which beats process fan-out whenever
the batch is too small to amortise shipping (the hot loop holds the GIL, so
the lane trades parallel compute for zero shipping); ``executor="auto"``
picks the lane per call from the batch's estimated cost
(:mod:`repro.runtime.chunking`).  Worker chunks are
sized **adaptively** from per-task cost (message counts) rather than task
counts, so a mixed scatter/all-to-all workload balances across workers;
``chunking="fixed"`` keeps the historical task-count split.
``transport="legacy"`` preserves the pre-runtime dispatch — a fresh pool per
call, the grid and tasks re-pickled per chunk — as the benchmark baseline.

The scalar :func:`~repro.simulator.execution.execute_program` remains the
reference engine: ``engine="scalar"`` runs it program by program on
identically-seeded fresh (or chained warm) networks, and the equivalence
suite (``tests/test_simulator_batch.py``, ``tests/test_runtime.py``) asserts
that both engines produce bit-identical makespans, activation/completion
vectors and traces for every collective shape, noise on and off, at any
worker count, over either transport.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.simulator.execution import ExecutionResult, MessageRecord, execute_program
from repro.simulator.network import NetworkConfig, SimulatedNetwork
from repro.simulator.program import CommunicationProgram
from repro.topology.grid import Grid
from repro.utils.rng import RandomStream

#: Send bursts at least this long are issued through the vectorised NumPy
#: path; shorter bursts (the common broadcast case of 1–6 sends per rank) are
#: cheaper through the scalar fast path.  Both paths are bit-identical, so the
#: threshold is purely a performance knob.
VECTOR_MIN_SENDS = 12

#: Valid ``engine=`` values of :func:`execute_programs` (and the study
#: drivers built on it): the batched engine and the scalar reference loop.
ENGINES = ("batched", "scalar")

#: Valid ``transport=`` values of :func:`execute_programs`: the runtime
#: transports plus ``"legacy"`` (fresh pool per call, grid and tasks pickled
#: per chunk — the pre-runtime dispatch kept as the benchmark baseline).
EXECUTE_TRANSPORTS = ("auto", "shm", "pickle", "legacy")


@dataclass(frozen=True)
class ExecutionTask:
    """One program to execute, with its per-program measurement context.

    Attributes
    ----------
    program:
        The communication program.
    initially_active:
        Extra ranks activated at time zero, merged with the program's own
        ``initially_active`` declaration (kept for callers that overlay a
        pattern on a plain program).
    noise_seed:
        Seed of this program's private noise stream.  ``None`` falls back to
        the network config's seed.  Spawning one child seed per task (see
        :meth:`repro.utils.rng.RandomStream.spawn_seed`) is what makes noisy
        batches independent of execution order and worker count.
    reset_network:
        ``True`` (default) executes on a fresh network.  ``False`` chains
        onto the immediately preceding task: NIC occupancy and the noise
        stream carry over, mirroring the scalar engine's
        ``execute_program(reset_network=False)``.  Chained tasks cannot carry
        their own ``noise_seed`` (the chain head's stream continues), and the
        executor never splits a chain across workers.
    """

    program: CommunicationProgram
    initially_active: tuple[int, ...] = ()
    noise_seed: int | None = None
    reset_network: bool = True


class _CompiledProgram:
    """One program flattened into per-rank message arrays.

    Messages are stored rank-major (``indptr[rank] : indptr[rank + 1]``), in
    program send order.  ``gap``/``latency`` hold the noise-free pLogP values
    evaluated once at compile time — bitwise the same numbers
    :meth:`~repro.simulator.network.SimulatedNetwork.transmit` would compute
    per message — both as NumPy arrays (vector path) and plain lists (scalar
    path).  A compiled program is read-only during execution, so one compile
    serves replicas, chains and every worker that receives it.
    """

    __slots__ = (
        "program",
        "name",
        "num_ranks",
        "roots",
        "indptr",
        "dest",
        "size",
        "tag",
        "gap",
        "latency",
        "gap_list",
        "latency_list",
        "max_draws",
    )

    def __init__(
        self,
        grid: Grid,
        task: ExecutionTask,
        params_memo: "_ParamsMemo",
        cluster_of: list[int],
        lean: bool = False,
    ) -> None:
        program = task.program
        if program.num_ranks > grid.num_nodes:
            raise ValueError(
                f"program spans {program.num_ranks} ranks but the network only has "
                f"{grid.num_nodes}"
            )
        self.program = program
        self.name = program.name
        self.num_ranks = program.num_ranks
        self.roots = program.start_ranks(task.initially_active)
        for rank in self.roots:
            if not 0 <= rank < program.num_ranks:
                raise ValueError(f"initially active rank {rank} out of range")

        dest: list[int] = []
        size: list[float] | None = None if lean else []
        tag: list[str] | None = None if lean else []
        gap: list[float] = []
        latency: list[float] = []
        indptr = [0]
        dest_append = dest.append
        gap_append = gap.append
        latency_append = latency.append
        sends_get = program.sends.get
        tables = params_memo.tables
        for rank in range(program.num_ranks):
            instructions = sends_get(rank)
            if instructions:
                source_cluster = cluster_of[rank]
                for instruction in instructions:
                    destination = instruction.destination
                    message_size = instruction.message_size
                    # Per-size (cluster, cluster) lookup tables: a plain 2-D
                    # list index per message instead of a tuple-keyed dict.
                    table = tables.get(message_size)
                    if table is None:
                        table = params_memo.add_size(message_size)
                    pair = table[source_cluster][cluster_of[destination]]
                    if pair is None:
                        pair = params_memo.resolve(
                            grid, rank, destination, message_size, cluster_of
                        )
                    dest_append(destination)
                    gap_append(pair[0])
                    latency_append(pair[1])
                    if not lean:
                        size.append(message_size)
                        tag.append(instruction.tag)
            indptr.append(len(dest))
        self.indptr = indptr
        self.dest = dest
        self.size = size
        self.tag = tag
        self.gap = np.asarray(gap, dtype=float)
        self.latency = np.asarray(latency, dtype=float)
        self.gap_list = gap
        self.latency_list = latency
        # Upper bound on noise draws: one per nonzero gap/latency value.  The
        # bound is only unreached when some sender never activates (its sends
        # never execute); pre-drawing extra values is harmless because every
        # executed message consumes the same stream positions either way.
        self.max_draws = int(
            np.count_nonzero(self.gap) + np.count_nonzero(self.latency)
        )


class _ParamsMemo:
    """Per-size ``(cluster, cluster)`` tables of evaluated pLogP pairs.

    ``tables[size][ci][cj]`` holds ``(gap(size), latency)`` for a message of
    ``size`` bytes between any node of cluster ``ci`` and any node of cluster
    ``cj`` (``None`` until first use) — the values
    :meth:`~repro.topology.grid.Grid.node_link_parameters` would produce,
    evaluated once and shared by every program of the batch.
    """

    __slots__ = ("num_clusters", "tables")

    def __init__(self, num_clusters: int) -> None:
        self.num_clusters = num_clusters
        self.tables: dict[float, list[list[tuple[float, float] | None]]] = {}

    def add_size(self, message_size: float) -> list:
        table = [[None] * self.num_clusters for _ in range(self.num_clusters)]
        self.tables[message_size] = table
        return table

    def resolve(
        self,
        grid: Grid,
        rank: int,
        destination: int,
        message_size: float,
        cluster_of: list[int],
    ) -> tuple[float, float]:
        params = grid.node_link_parameters(rank, destination)
        pair = (params.gap(message_size), params.latency)
        table = self.tables[message_size]
        table[cluster_of[rank]][cluster_of[destination]] = pair
        return pair


class _BatchCompiler:
    """Parent-side compile state reused across batches on one grid.

    Holds the pLogP parameter memo, the rank→cluster map and the compiled
    cache (a program appearing in several tasks — noise replicas, chained
    stages — compiles once; the compiled form is read-only during execution).
    The pipelined driver keeps one compiler alive across submissions, so
    later batches reuse every parameter evaluated by earlier ones.
    """

    __slots__ = ("grid", "lean", "params_memo", "cluster_of", "cache")

    def __init__(self, grid: Grid, collect_traces: bool) -> None:
        self.grid = grid
        self.lean = not collect_traces
        self.params_memo = _ParamsMemo(grid.num_clusters)
        self.cluster_of = [
            grid.cluster_of_rank(rank) for rank in range(grid.num_nodes)
        ]
        self.cache: dict[tuple[int, tuple[int, ...]], _CompiledProgram] = {}

    def compile(self, task: ExecutionTask) -> _CompiledProgram:
        key = (id(task.program), tuple(task.initially_active))
        prog = self.cache.get(key)
        if prog is None:
            prog = _CompiledProgram(
                self.grid, task, self.params_memo, self.cluster_of, lean=self.lean
            )
            self.cache[key] = prog
        return prog


def _run_compiled(
    prog: _CompiledProgram,
    noise: np.ndarray | None,
    overhead: float,
    collect_traces: bool,
    nic_free: list[float],
) -> tuple[ExecutionResult, int]:
    """Execute one compiled program against per-rank array state.

    ``nic_free`` is the (caller-owned) per-rank NIC availability row: all
    zeros for a fresh network, or the carried-over row of the previous task
    of a warm chain.  Activation and completion are per-execution either way,
    exactly like the scalar engine.  Returns the result plus the number of
    noise draws actually consumed, which a chain needs to keep its stream
    aligned with the scalar reference.

    The delivery heap is local to the program, so its (time, sequence)
    ordering is exactly the scalar engine's — interleaving with other
    programs of the batch never reorders a program's own ties.
    """
    n = prog.num_ranks
    indptr = prog.indptr
    dest = prog.dest
    gap_list = prog.gap_list
    latency_list = prog.latency_list
    active = bytearray(n)
    activation = [0.0] * n
    completion = [0.0] * n
    noisy = noise is not None
    draws = noise.tolist() if noisy else []
    position = 0
    trace: list[tuple] | None = [] if collect_traces else None
    heap: list[tuple[float, int, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    sequence = 0

    def issue_sends(rank: int, now: float) -> None:
        nonlocal sequence, position
        lo = indptr[rank]
        hi = indptr[rank + 1]
        count = hi - lo
        if count >= VECTOR_MIN_SENDS:
            gaps = prog.gap[lo:hi]
            lats = prog.latency[lo:hi]
            if noisy:
                # Interleave gap0, lat0, gap1, lat1, ... so the draws are
                # consumed in exactly the scalar transmit order (zero-valued
                # entries draw nothing, like _perturb).
                base = np.empty(2 * count)
                base[0::2] = gaps
                base[1::2] = lats
                mask = base != 0.0
                used = int(mask.sum())
                factors = np.ones(2 * count)
                factors[mask] = noise[position : position + used]
                position += used
                perturbed = base * factors
                gaps = perturbed[0::2]
                lats = perturbed[1::2]
                chain = gaps
            else:
                chain = gaps.copy()
            start0 = max(now, nic_free[rank])
            chain[0] += start0
            releases = np.cumsum(chain)
            deliveries = releases + lats + overhead
            release_list = releases.tolist()
            last_release = release_list[-1]
            nic_free[rank] = last_release
            completion[rank] = max(completion[rank], last_release)
            delivery_list = deliveries.tolist()
            for offset, delivery in enumerate(delivery_list):
                destination = dest[lo + offset]
                if active[destination]:
                    # Already-active receivers need no event: the delivery
                    # can only raise their completion, and max() is
                    # order-independent, so fold it in right away.
                    if delivery > completion[destination]:
                        completion[destination] = delivery
                else:
                    push(heap, (delivery, sequence, lo + offset))
                    sequence += 1
            if trace is not None:
                start_list = [start0] + release_list[:-1]
                for offset in range(count):
                    index = lo + offset
                    trace.append(
                        (
                            rank,
                            dest[index],
                            prog.size[index],
                            now,
                            start_list[offset],
                            delivery_list[offset],
                            prog.tag[index],
                        )
                    )
        elif noisy:
            nic = nic_free[rank]
            for index in range(lo, hi):
                gap = gap_list[index]
                lat = latency_list[index]
                if gap != 0.0:
                    gap = gap * draws[position]
                    position += 1
                if lat != 0.0:
                    lat = lat * draws[position]
                    position += 1
                start = now if now >= nic else nic
                release = start + gap
                delivery = release + lat + overhead
                nic = release
                destination = dest[index]
                if active[destination]:
                    if delivery > completion[destination]:
                        completion[destination] = delivery
                else:
                    push(heap, (delivery, sequence, index))
                    sequence += 1
                if trace is not None:
                    trace.append(
                        (
                            rank,
                            dest[index],
                            prog.size[index],
                            now,
                            start,
                            delivery,
                            prog.tag[index],
                        )
                    )
            nic_free[rank] = nic
            completion[rank] = max(completion[rank], nic)
        else:
            nic = nic_free[rank]
            for index in range(lo, hi):
                start = now if now >= nic else nic
                release = start + gap_list[index]
                delivery = release + latency_list[index] + overhead
                nic = release
                destination = dest[index]
                if active[destination]:
                    if delivery > completion[destination]:
                        completion[destination] = delivery
                else:
                    push(heap, (delivery, sequence, index))
                    sequence += 1
                if trace is not None:
                    trace.append(
                        (
                            rank,
                            dest[index],
                            prog.size[index],
                            now,
                            start,
                            delivery,
                            prog.tag[index],
                        )
                    )
            nic_free[rank] = nic
            completion[rank] = max(completion[rank], nic)

    # Flag every initially-active rank before issuing anything: the scalar
    # engine pops all time-zero activation events before the first delivery,
    # so during root bursts the whole root set already counts as active.
    for rank in prog.roots:
        active[rank] = 1
    for rank in prog.roots:
        if indptr[rank + 1] > indptr[rank]:
            issue_sends(rank, 0.0)

    while heap:
        time, _, index = pop(heap)
        destination = dest[index]
        if time > completion[destination]:
            completion[destination] = time
        if not active[destination]:
            active[destination] = 1
            activation[destination] = time
            lo = indptr[destination]
            hi = indptr[destination + 1]
            if hi - lo == 1:
                # Inlined single-send burst — the overwhelmingly common case
                # in tree-shaped programs; same arithmetic as issue_sends.
                gap = gap_list[lo]
                lat = latency_list[lo]
                if noisy:
                    if gap != 0.0:
                        gap = gap * draws[position]
                        position += 1
                    if lat != 0.0:
                        lat = lat * draws[position]
                        position += 1
                nic = nic_free[destination]
                start = time if time >= nic else nic
                release = start + gap
                nic_free[destination] = release
                if release > completion[destination]:
                    completion[destination] = release
                delivery = release + lat + overhead
                receiver = dest[lo]
                if active[receiver]:
                    if delivery > completion[receiver]:
                        completion[receiver] = delivery
                else:
                    push(heap, (delivery, sequence, lo))
                    sequence += 1
                if trace is not None:
                    trace.append(
                        (
                            destination,
                            dest[lo],
                            prog.size[lo],
                            time,
                            start,
                            delivery,
                            prog.tag[lo],
                        )
                    )
            elif hi > lo:
                issue_sends(destination, time)

    # Every time in the state rows is a plain Python float by construction
    # (heap entries and vector results pass through .tolist()), so result
    # materialisation is copy-only.
    activation_times: list[float | None] = [
        value if flag else None for value, flag in zip(activation, active)
    ]
    trace_records: list[MessageRecord] = []
    if trace is not None:
        trace_records = [
            MessageRecord(
                source=source,
                destination=destination,
                message_size=size,
                issue_time=issue,
                start_time=start,
                delivery_time=delivery,
                tag=tag,
            )
            for source, destination, size, issue, start, delivery, tag in trace
        ]
        trace_records.sort(key=lambda record: record.delivery_time)
    result = ExecutionResult(
        program_name=prog.name,
        activation_times=activation_times,
        completion_times=list(completion),
        trace=trace_records,
    )
    return result, position


def _run_task_sequence(
    compiled: Sequence[_CompiledProgram],
    seeds: Sequence[int],
    resets: Sequence[bool],
    sigma: float,
    overhead: float,
    collect_traces: bool,
    num_nodes: int,
) -> list[ExecutionResult]:
    """Execute compiled tasks in order, threading warm-chain state through.

    A task with ``resets[i]`` false continues the previous task's NIC row and
    noise stream.  The noise sequence of each program is still pre-drawn in
    one bulk call; when fewer draws are consumed than pre-drawn (a sender
    that never activates) and the chain continues, the stream is rewound and
    advanced by exactly the consumed count, so a chained successor sees
    bitwise the stream position the scalar engine's lazy draws would leave.
    """
    results: list[ExecutionResult] = []
    stream: RandomStream | None = None
    nic_free: list[float] | None = None
    count = len(compiled)
    for index in range(count):
        prog = compiled[index]
        if resets[index] or nic_free is None:
            nic_free = [0.0] * num_nodes
            stream = RandomStream(seed=seeds[index]) if sigma > 0.0 else None
        noise: np.ndarray | None = None
        state_before = None
        chain_continues = index + 1 < count and not resets[index + 1]
        if stream is not None and prog.max_draws:
            if chain_continues:
                state_before = stream.state
            noise = stream.lognormal_array(0.0, sigma, prog.max_draws)
        result, consumed = _run_compiled(
            prog, noise, overhead, collect_traces, nic_free
        )
        if chain_continues and noise is not None and consumed < prog.max_draws:
            stream.state = state_before
            if consumed:
                stream.lognormal_array(0.0, sigma, consumed)
        results.append(result)
    return results


def _task_seeds(tasks: Sequence[ExecutionTask], config: NetworkConfig) -> list[int]:
    return [
        task.noise_seed if task.noise_seed is not None else config.seed
        for task in tasks
    ]


def _execute_batch(
    grid: Grid,
    tasks: Sequence[ExecutionTask],
    config: NetworkConfig,
    collect_traces: bool,
) -> list[ExecutionResult]:
    """Run every task in one pass; the batched engine proper."""
    compiler = _BatchCompiler(grid, collect_traces)
    compiled = [compiler.compile(task) for task in tasks]
    return _run_task_sequence(
        compiled,
        _task_seeds(tasks, config),
        [task.reset_network for task in tasks],
        config.noise_sigma,
        config.receive_overhead,
        collect_traces,
        grid.num_nodes,
    )


def _execute_scalar(
    grid: Grid,
    tasks: Sequence[ExecutionTask],
    config: NetworkConfig,
    collect_traces: bool,
) -> list[ExecutionResult]:
    """The reference loop: one scalar execution per task, per-task seeds.

    Chained tasks (``reset_network=False``) reuse the previous task's
    network object without resetting it, so NIC backlog and the noise stream
    carry over — the ground truth the batched chain executor is verified
    against.
    """
    results = []
    network: SimulatedNetwork | None = None
    for task in tasks:
        if task.reset_network or network is None:
            network = SimulatedNetwork(
                grid,
                NetworkConfig(
                    noise_sigma=config.noise_sigma,
                    seed=task.noise_seed
                    if task.noise_seed is not None
                    else config.seed,
                    receive_overhead=config.receive_overhead,
                ),
            )
        result = execute_program(
            network,
            task.program,
            initially_active=task.initially_active,
            reset_network=task.reset_network,
        )
        if not collect_traces:
            result.trace = []
        results.append(result)
    return results


# -- worker fan-out -------------------------------------------------------------------


def _validate_tasks(tasks: Sequence[ExecutionTask]) -> None:
    for index, task in enumerate(tasks):
        if not task.reset_network:
            if index == 0:
                raise ValueError(
                    "the first task of a batch cannot have reset_network=False "
                    "(there is no previous network to chain onto)"
                )
            if task.noise_seed is not None:
                raise ValueError(
                    "a chained task (reset_network=False) continues the chain "
                    "head's noise stream and cannot carry its own noise_seed"
                )


def _chain_units(tasks: Sequence[ExecutionTask]) -> list[tuple[int, int]]:
    """Half-open ``[start, end)`` ranges of tasks that must stay together."""
    units: list[tuple[int, int]] = []
    start = 0
    for index in range(1, len(tasks)):
        if tasks[index].reset_network:
            units.append((start, index))
            start = index
    units.append((start, len(tasks)))
    return units


def _partition_units(
    units: Sequence[tuple[int, int]], chunk_target: int
) -> list[tuple[int, int]]:
    """Merge consecutive units into chunks of roughly ``chunk_target`` tasks.

    Identical to the fixed-size contiguous chunking when every unit is one
    task (no chains); chains are never split across chunks.  This is the
    ``chunking="fixed"`` baseline; the default adaptive path sizes chunks
    from per-task cost instead (:func:`_chunk_bounds`).
    """
    chunks: list[tuple[int, int]] = []
    start = units[0][0]
    count = 0
    for unit_start, unit_end in units:
        count += unit_end - unit_start
        if count >= chunk_target:
            chunks.append((start, unit_end))
            start = unit_end
            count = 0
    if count:
        chunks.append((start, units[-1][1]))
    return chunks


def _chunk_bounds(
    tasks: Sequence[ExecutionTask],
    costs: Sequence[float] | None,
    worker_count: int,
    chunking: str,
) -> list[tuple[int, int]]:
    """Chain-respecting worker chunk boundaries for one fan-out.

    ``chunking="adaptive"`` balances the chunks by per-task *cost* (the
    program message counts of ``costs``) so an all-to-all task — ~20x a
    bcast task — does not strand a count-balanced chunk; ``"fixed"`` keeps
    the historical task-count split.  Either way chunks never split a warm
    chain, and chunking never affects results (each task owns its seed).
    """
    from repro.runtime.chunking import CHUNKS_PER_WORKER

    units = _chain_units(tasks)
    if chunking == "adaptive" and costs is not None:
        from repro.runtime.chunking import aggregate_unit_costs, partition_by_cost

        return partition_by_cost(
            units,
            aggregate_unit_costs(units, costs),
            worker_count * CHUNKS_PER_WORKER,
        )
    chunk_target = max(1, -(-len(tasks) // (worker_count * CHUNKS_PER_WORKER)))
    return _partition_units(units, chunk_target)


def _execute_pickled_chunk(args) -> tuple[int, list[ExecutionResult]]:
    """Legacy multiprocessing adapter: one pickled slice of the task list.

    The pre-runtime dispatch: the grid, the config and the tasks themselves
    travel through the task pickle and the chunk compiles its own programs.
    Kept as the worker body of ``transport="legacy"`` (the benchmark
    baseline) and of the scalar reference engine's fan-out.
    """
    start, grid, tasks, config, collect_traces, engine = args
    runner = _execute_batch if engine == "batched" else _execute_scalar
    return start, runner(grid, tasks, config, collect_traces)


def _bundle_compiled(
    compiled: Sequence[_CompiledProgram], collect_traces: bool
):
    """Concatenate the distinct compiled programs of a batch for shipping.

    Returns ``(arrays, metas, index_of)``: the named message-array bundle of
    every distinct compiled program, the per-program reconstruction
    metadata, and the ``id() -> unique index`` map used to translate
    per-task compiled references into shipped indices.  :func:`_ship_compiled`
    packs the bundle into an :class:`~repro.runtime.transport.ArrayShipment`
    for the local process lane; the remote lane bundles per *chunk* instead
    and wraps each bundle in a :class:`~repro.runtime.wire.WireShipment`, so
    a chunk's frame carries only the arrays that chunk actually runs.
    """
    index_of: dict[int, int] = {}
    unique: list[_CompiledProgram] = []
    for prog in compiled:
        if id(prog) not in index_of:
            index_of[id(prog)] = len(unique)
            unique.append(prog)

    metas: list[tuple] = []
    msg_start = 0
    ind_start = 0
    for prog in unique:
        message_count = len(prog.dest)
        metas.append(
            (
                prog.name,
                prog.num_ranks,
                tuple(prog.roots),
                prog.max_draws,
                msg_start,
                message_count,
                ind_start,
                None if prog.tag is None else list(prog.tag),
            )
        )
        msg_start += message_count
        ind_start += prog.num_ranks + 1

    def _concat(parts: list[np.ndarray], dtype) -> np.ndarray:
        if not parts:
            return np.empty(0, dtype=dtype)
        return np.concatenate([np.asarray(part, dtype=dtype) for part in parts])

    arrays = {
        "gap": _concat([prog.gap for prog in unique], np.float64),
        "latency": _concat([prog.latency for prog in unique], np.float64),
        "dest": _concat([prog.dest for prog in unique], np.int64),
        "indptr": _concat([prog.indptr for prog in unique], np.int64),
    }
    if collect_traces:
        arrays["sizes"] = _concat([prog.size for prog in unique], np.float64)
    return arrays, metas, index_of


def _ship_compiled(
    compiled: Sequence[_CompiledProgram],
    collect_traces: bool,
    transport: str | None,
):
    """Pack one batch-wide :func:`_bundle_compiled` bundle for the local
    process lane (shared memory when available, pickle fallback)."""
    from repro.runtime.transport import ArrayShipment

    arrays, metas, index_of = _bundle_compiled(compiled, collect_traces)
    return ArrayShipment.pack(arrays, transport=transport), metas, index_of


def _remote_chunk_jobs(
    compiled: Sequence[_CompiledProgram],
    seeds: Sequence[int],
    resets: Sequence[bool],
    bounds: Sequence[tuple[int, int]],
    config: NetworkConfig,
    collect_traces: bool,
    num_nodes: int,
) -> list[tuple]:
    """One :func:`_execute_shipped_chunk` job per chunk, arrays per chunk.

    On the remote lane every job is framed and sent separately (and may be
    re-sent verbatim to another agent after a loss), so sharing one
    batch-wide shipment would copy the *whole batch's* arrays into every
    chunk's frame.  Each chunk instead gets its own
    :class:`~repro.runtime.wire.WireShipment` bundling exactly the distinct
    programs it runs — the wire protocol ships it as raw buffers and the
    agent re-packs it into local shared memory for its own workers.
    """
    from repro.runtime.wire import WireShipment

    jobs: list[tuple] = []
    for start, end in bounds:
        arrays, metas, index_of = _bundle_compiled(
            compiled[start:end], collect_traces
        )
        entries = [
            (index_of[id(prog)], seed, reset)
            for prog, seed, reset in zip(
                compiled[start:end], seeds[start:end], resets[start:end]
            )
        ]
        jobs.append(
            (
                start,
                WireShipment(arrays),
                dict(enumerate(metas)),
                entries,
                config.noise_sigma,
                config.receive_overhead,
                collect_traces,
                num_nodes,
            )
        )
    return jobs


def _rebuild_shipped(
    meta: tuple, arrays: dict[str, np.ndarray], collect_traces: bool
) -> _CompiledProgram:
    """Reconstruct a compiled program from shipped arrays (worker side).

    The NumPy ``gap``/``latency`` segments stay zero-copy views into the
    shipment; the hot-loop list mirrors are materialised locally (a C-level
    ``tolist``), exactly as the parent-side compiler does.
    """
    name, num_ranks, roots, max_draws, msg_start, count, ind_start, tags = meta
    prog = _CompiledProgram.__new__(_CompiledProgram)
    prog.program = None
    prog.name = name
    prog.num_ranks = num_ranks
    prog.roots = list(roots)
    gap = arrays["gap"][msg_start : msg_start + count]
    latency = arrays["latency"][msg_start : msg_start + count]
    prog.gap = gap
    prog.latency = latency
    prog.gap_list = gap.tolist()
    prog.latency_list = latency.tolist()
    prog.dest = arrays["dest"][msg_start : msg_start + count].tolist()
    prog.indptr = arrays["indptr"][ind_start : ind_start + num_ranks + 1].tolist()
    prog.size = (
        arrays["sizes"][msg_start : msg_start + count].tolist()
        if collect_traces
        else None
    )
    prog.tag = tags
    prog.max_draws = max_draws
    return prog


def _execute_shipped_chunk(args) -> tuple[int, list[ExecutionResult], float]:
    """Runtime multiprocessing adapter: execute a chunk against a shipment.

    The job carries only the shipment handle, the reconstruction metadata of
    the programs this chunk actually runs, and per-task ``(unique index,
    seed, reset)`` entries — never the grid or the programs themselves.
    Returns the chunk's wall time alongside the results so the caller can
    feed the runtime's :class:`~repro.runtime.chunking.CostModel`.
    """
    (
        start,
        shipment,
        metas,
        entries,
        sigma,
        overhead,
        collect_traces,
        num_nodes,
    ) = args
    started = time.perf_counter()
    arrays = shipment.load()
    rebuilt = {
        unique_index: _rebuild_shipped(meta, arrays, collect_traces)
        for unique_index, meta in metas.items()
    }
    compiled = [rebuilt[unique_index] for unique_index, _, _ in entries]
    results = _run_task_sequence(
        compiled,
        [seed for _, seed, _ in entries],
        [reset for _, _, reset in entries],
        sigma,
        overhead,
        collect_traces,
        num_nodes,
    )
    # Drop every view into the shipment before unmapping it.
    compiled = rebuilt = arrays = None
    shipment.close()
    return start, results, time.perf_counter() - started


def _execute_compiled_chunk(args) -> tuple[int, list[ExecutionResult], float]:
    """Thread-lane adapter: execute already-compiled tasks, no shipment.

    Thread workers share the parent's address space, so the job carries the
    parent's compiled programs by reference — nothing is packed, pickled or
    rebuilt — and per-task seeds make the results bit-identical to every
    other lane.
    """
    (start, compiled, seeds, resets, sigma, overhead, collect_traces,
     num_nodes) = args
    started = time.perf_counter()
    results = _run_task_sequence(
        compiled, seeds, resets, sigma, overhead, collect_traces, num_nodes
    )
    return start, results, time.perf_counter() - started


def _execute_with_legacy_pool(
    grid: Grid,
    tasks: list[ExecutionTask],
    config: NetworkConfig,
    collect_traces: bool,
    engine: str,
    worker_count: int,
) -> list[ExecutionResult]:
    """The pre-runtime dispatch: fresh pool, grid and tasks pickled per chunk.

    Kept byte-for-byte as the benchmark baseline — including its fixed
    task-count chunking — so recorded speedups keep measuring the same
    thing across PRs.
    """
    bounds = _chunk_bounds(tasks, None, worker_count, "fixed")
    jobs = [
        (start, grid, tasks[start:end], config, collect_traces, engine)
        for start, end in bounds
    ]
    results: list[ExecutionResult | None] = [None] * len(tasks)
    with multiprocessing.Pool(processes=worker_count) as mp_pool:
        for start, values in mp_pool.imap_unordered(_execute_pickled_chunk, jobs):
            results[start : start + len(values)] = values
    return results  # type: ignore[return-value]


def _execute_with_runtime_pool(
    grid: Grid,
    tasks: list[ExecutionTask],
    config: NetworkConfig,
    collect_traces: bool,
    worker_count: int,
    transport: str | None,
    pool,
    chunking: str,
) -> list[ExecutionResult]:
    """Process/remote lane: compile once in the parent, ship to the pool."""
    from repro.runtime.pool import get_pool

    from repro.runtime.chunking import compiled_cost

    compiler = _BatchCompiler(grid, collect_traces)
    compiled = [compiler.compile(task) for task in tasks]
    seeds = _task_seeds(tasks, config)
    resets = [task.reset_network for task in tasks]
    costs = [compiled_cost(prog) for prog in compiled]
    bounds = _chunk_bounds(tasks, costs, worker_count, chunking)
    study_pool = pool if pool is not None else get_pool(worker_count)
    results: list[ExecutionResult | None] = [None] * len(tasks)
    if getattr(study_pool, "kind", "process") == "remote":
        # Per-chunk wire bundles: each frame carries only its own arrays.
        jobs = _remote_chunk_jobs(
            compiled, seeds, resets, bounds, config, collect_traces,
            grid.num_nodes,
        )
        pending = [
            study_pool.submit(
                _execute_shipped_chunk,
                job,
                units=float(sum(costs[start:end])),
            )
            for job, (start, end) in zip(jobs, bounds)
        ]
        for handle in pending:
            start, values, _ = handle.get()
            results[start : start + len(values)] = values
        return results  # type: ignore[return-value]
    shipment, metas, index_of = _ship_compiled(compiled, collect_traces, transport)
    entries = [
        (index_of[id(prog)], seed, reset)
        for prog, seed, reset in zip(compiled, seeds, resets)
    ]
    try:
        pending = []
        for start, end in bounds:
            chunk_entries = entries[start:end]
            needed = {unique_index for unique_index, _, _ in chunk_entries}
            job = (
                start,
                shipment,
                {unique_index: metas[unique_index] for unique_index in sorted(needed)},
                chunk_entries,
                config.noise_sigma,
                config.receive_overhead,
                collect_traces,
                grid.num_nodes,
            )
            pending.append(study_pool.submit(_execute_shipped_chunk, job))
        for handle in pending:
            start, values, _ = handle.get()
            results[start : start + len(values)] = values
    finally:
        shipment.unlink()
    return results  # type: ignore[return-value]


def _execute_scalar_with_pool(
    grid: Grid,
    tasks: list[ExecutionTask],
    config: NetworkConfig,
    collect_traces: bool,
    worker_count: int,
    pool,
    chunking: str,
    kind: str,
) -> list[ExecutionResult]:
    """Scalar-engine fan-out over the persistent pool of either lane.

    The scalar reference engine executes task slices directly (no compiled
    arrays to ship), so both lanes dispatch the same jobs: the process pool
    pickles them, the thread pool passes them by reference.  Per-task seeds
    keep the results bit-identical to the inline loop.
    """
    from repro.runtime.chunking import program_cost
    from repro.runtime.pool import get_pool

    study_pool = pool if pool is not None else get_pool(worker_count, kind=kind)
    costs = [program_cost(task.program) for task in tasks]
    bounds = _chunk_bounds(tasks, costs, worker_count, chunking)
    jobs = [
        (start, grid, tasks[start:end], config, collect_traces, "scalar")
        for start, end in bounds
    ]
    results: list[ExecutionResult | None] = [None] * len(tasks)
    for start, values in study_pool.imap_unordered(_execute_pickled_chunk, jobs):
        results[start : start + len(values)] = values
    return results  # type: ignore[return-value]


def _execute_with_thread_pool(
    grid: Grid,
    tasks: list[ExecutionTask],
    config: NetworkConfig,
    collect_traces: bool,
    worker_count: int,
    pool,
    chunking: str,
) -> list[ExecutionResult]:
    """Thread lane: no shipment — workers read the parent's arrays in place.

    The batch compiles once in the parent and each thread receives a slice
    of the compiled list by reference (a :class:`ThreadPool` never pickles).
    Per-task seeds keep the results bit-identical to the process lane and
    the inline path.
    """
    from repro.runtime.chunking import compiled_cost
    from repro.runtime.pool import get_pool

    study_pool = pool if pool is not None else get_pool(worker_count, kind="thread")
    results: list[ExecutionResult | None] = [None] * len(tasks)
    compiler = _BatchCompiler(grid, collect_traces)
    compiled = [compiler.compile(task) for task in tasks]
    costs = [compiled_cost(prog) for prog in compiled]
    bounds = _chunk_bounds(tasks, costs, worker_count, chunking)
    seeds = _task_seeds(tasks, config)
    resets = [task.reset_network for task in tasks]
    pending = [
        study_pool.submit(
            _execute_compiled_chunk,
            (
                start,
                compiled[start:end],
                seeds[start:end],
                resets[start:end],
                config.noise_sigma,
                config.receive_overhead,
                collect_traces,
                grid.num_nodes,
            ),
        )
        for start, end in bounds
    ]
    for handle in pending:
        start, values, _ = handle.get()
        results[start : start + len(values)] = values
    return results  # type: ignore[return-value]


def execute_programs(
    grid: Grid,
    tasks: Sequence[ExecutionTask | CommunicationProgram],
    *,
    config: NetworkConfig | None = None,
    collect_traces: bool = True,
    workers: int | None = None,
    engine: str = "batched",
    executor: str | None = None,
    transport: str | None = None,
    chunking: str = "adaptive",
    pool=None,
    hosts: str | None = None,
) -> list[ExecutionResult]:
    """Execute many independent (or chained) programs, results in order.

    Parameters
    ----------
    grid:
        The topology every program runs on.
    tasks:
        :class:`ExecutionTask` entries (bare programs are accepted and wrapped
        with default context).  Tasks with ``reset_network=False`` chain onto
        their predecessor's warm network; chains are never split across
        workers.
    config:
        Shared network behaviour (noise sigma, fallback seed, receive
        overhead); per-task ``noise_seed`` overrides the seed.
    collect_traces:
        Keep the full message trace of every execution; pass ``False`` for
        makespan-only sweeps (the practical study does).
    workers:
        Optional fan-out over chain-respecting chunks of the task list;
        ``None`` consults the shared ``REPRO_WORKERS`` environment variable,
        and ``0``/``1`` run in-process.  Results are identical at any worker
        count because every task carries its own noise seed.
    engine:
        ``"batched"`` (default) or ``"scalar"`` — the scalar reference loop
        used by the equivalence suite and as the benchmark baseline.
    executor:
        Which fan-out lane to use: ``"thread"``
        (:class:`~repro.runtime.pool.ThreadStudyPool` — no shipping, workers
        read the parent's compiled arrays in place), ``"process"``
        (:class:`~repro.runtime.pool.StudyPool` + transport), ``"remote"``
        (:class:`~repro.runtime.remote.RemoteStudyPool` — chunks shipped
        over sockets to worker agents, see ``hosts``), or ``"auto"`` —
        threads when the batch's total estimated cost is too small to
        amortise shipping, processes otherwise (never remote).  ``None``
        consults the ``REPRO_EXECUTOR`` environment variable, then defaults
        to ``"auto"``.  Naming a transport pins ``"auto"`` to the process
        lane (the lane that ships).  All lanes are bit-identical.
    transport:
        How batches reach *process* workers (ignored in-process and on the
        thread lane, which ships nothing): ``"auto"`` (default, shared
        memory when available), ``"shm"``, ``"pickle"``, or ``"legacy"`` —
        the pre-runtime dispatch (fresh pool per call, grid and tasks
        re-pickled per chunk), kept as the benchmark baseline and always
        run on a fresh process pool of its own (``"legacy"`` therefore
        rejects an explicit ``pool=`` and an explicit
        ``executor="thread"``).  The batched engine's
        ``"auto"``/``"shm"``/``"pickle"`` paths compile once in the parent
        and reuse the persistent runtime pool; the scalar engine fans task
        slices out over the persistent pool of either lane.
    chunking:
        ``"adaptive"`` (default) sizes worker chunks from per-task cost
        (program message counts) so mixed workloads balance; ``"fixed"``
        keeps the historical task-count chunking.  Bit-identical either way.
    pool:
        An explicit :class:`~repro.runtime.pool.StudyPool` /
        :class:`~repro.runtime.pool.ThreadStudyPool` /
        :class:`~repro.runtime.remote.RemoteStudyPool` to submit to
        (defaults to the process-wide persistent pool of the chosen lane).
        A passed pool's ``kind`` decides the lane, overriding ``executor``.
    hosts:
        Remote-lane agent addresses (``"host:port,host:port"``); only
        consulted when the remote lane is engaged.  ``None`` falls back to
        the ``REPRO_HOSTS`` environment variable, then to loopback mode
        (agents auto-spawned as local subprocesses).
    """
    from repro.runtime.chunking import (
        CHUNKINGS,
        EXECUTORS,
        choose_executor,
        program_cost,
        resolve_executor,
    )

    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if executor is not None and executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    if transport is not None and transport not in EXECUTE_TRANSPORTS:
        raise ValueError(
            f"transport must be one of {EXECUTE_TRANSPORTS}, got {transport!r}"
        )
    if chunking not in CHUNKINGS:
        raise ValueError(f"chunking must be one of {CHUNKINGS}, got {chunking!r}")
    if transport == "legacy" and pool is not None:
        raise ValueError(
            "transport='legacy' is the pre-runtime benchmark baseline and "
            "spawns its own fresh pool per call; it cannot submit to an "
            "explicit pool="
        )
    if transport == "legacy" and executor in ("thread", "remote"):
        raise ValueError(
            "transport='legacy' is the fresh-process benchmark baseline and "
            f"cannot run on the {executor} lane; drop executor={executor!r} "
            "or pick another transport"
        )
    config = config if config is not None else NetworkConfig()
    normalized = [
        task if isinstance(task, ExecutionTask) else ExecutionTask(program=task)
        for task in tasks
    ]
    _validate_tasks(normalized)
    from repro.utils.workers import resolve_workers

    worker_count = resolve_workers(workers)
    if len(normalized) > 1:
        # The shared fan-out preamble: an explicit pool lifts the worker
        # count, and the remote lane (argument or REPRO_EXECUTOR) engages
        # without requiring a local workers= — its capacity lives on the
        # agents.  Single-task batches always run inline, so they skip it.
        from repro.runtime.pool import engage_remote_lane

        pool, worker_count = engage_remote_lane(
            pool, executor, workers, worker_count, hosts, transport
        )

    if worker_count > 1 and len(normalized) > 1:
        if pool is not None:
            lane = getattr(pool, "kind", "process")
        else:
            lane = resolve_executor(executor)
            if lane == "auto":
                # Only an auto decision needs the batch priced; explicit
                # lanes skip the walk over every program's sends.
                lane = choose_executor(
                    "auto",
                    sum(program_cost(task.program) for task in normalized),
                    transport=transport,
                )
        if transport == "legacy":
            # The benchmark baseline is a fresh-process dispatch by
            # definition (validation above rejected pool= and
            # executor="thread").
            return _execute_with_legacy_pool(
                grid, normalized, config, collect_traces, engine, worker_count
            )
        if engine == "scalar":
            return _execute_scalar_with_pool(
                grid, normalized, config, collect_traces, worker_count, pool,
                chunking, lane,
            )
        if lane == "thread":
            return _execute_with_thread_pool(
                grid, normalized, config, collect_traces, worker_count,
                pool, chunking,
            )
        return _execute_with_runtime_pool(
            grid, normalized, config, collect_traces, worker_count, transport,
            pool, chunking,
        )

    runner = _execute_batch if engine == "batched" else _execute_scalar
    return runner(grid, normalized, config, collect_traces)
