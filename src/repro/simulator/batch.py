"""Batched execution of many independent communication programs.

The practical study (paper §7, Figures 5/6) measures one discrete-event
execution per (heuristic, message size) — plus the binomial baseline — on the
same grid.  Run through :func:`~repro.simulator.execution.execute_program`
each message pays for a topology lookup, a fresh
:class:`~repro.model.plogp.PLogPParameters` object, a piecewise gap-function
evaluation, a callback closure and a trace dataclass; the per-message Python
overhead dwarfs the arithmetic.  This module executes a whole batch of
programs in one pass instead:

* every program is **compiled** once — per-message gap/latency evaluated
  through a memo keyed by (cluster pair, size) shared across the batch,
  flattened into per-rank message arrays — so the hot loop touches only plain
  numbers;
* NIC occupancy, activation and completion state live in flat per-rank state
  rows keyed per program, advanced by a per-program delivery-event heap
  (programs are independent, so running them back to back is observationally
  identical to interleaving their events — and keeps each program's state row
  cache-hot);
* long send bursts (a flat scatter root, an all-to-all coordinator) are
  issued vectorised — noise included, via masked bulk log-normal draws — while
  short bursts take a scalar fast path; both reproduce the reference
  arithmetic operation-for-operation;
* each program owns its own noise stream (``noise_seed``), which is what
  makes batching, reordering and multiprocessing fan-out bit-preserving.

The scalar :func:`~repro.simulator.execution.execute_program` remains the
reference engine: ``engine="scalar"`` runs it program by program on
identically-seeded fresh networks, and the equivalence suite
(``tests/test_simulator_batch.py``) asserts that both engines produce
bit-identical makespans, activation/completion vectors and traces for every
collective shape, noise on and off, at any worker count.
"""

from __future__ import annotations

import heapq
import multiprocessing
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.simulator.execution import ExecutionResult, MessageRecord, execute_program
from repro.simulator.network import NetworkConfig, SimulatedNetwork
from repro.simulator.program import CommunicationProgram
from repro.topology.grid import Grid
from repro.utils.rng import RandomStream

#: Send bursts at least this long are issued through the vectorised NumPy
#: path; shorter bursts (the common broadcast case of 1–6 sends per rank) are
#: cheaper through the scalar fast path.  Both paths are bit-identical, so the
#: threshold is purely a performance knob.
VECTOR_MIN_SENDS = 12

#: Valid ``engine=`` values of :func:`execute_programs` (and the study
#: drivers built on it): the batched engine and the scalar reference loop.
ENGINES = ("batched", "scalar")


@dataclass(frozen=True)
class ExecutionTask:
    """One program to execute, with its per-program measurement context.

    Attributes
    ----------
    program:
        The communication program.
    initially_active:
        Extra ranks activated at time zero, merged with the program's own
        ``initially_active`` declaration (kept for callers that overlay a
        pattern on a plain program).
    noise_seed:
        Seed of this program's private noise stream.  ``None`` falls back to
        the network config's seed.  Spawning one child seed per task (see
        :meth:`repro.utils.rng.RandomStream.spawn_seed`) is what makes noisy
        batches independent of execution order and worker count.
    """

    program: CommunicationProgram
    initially_active: tuple[int, ...] = ()
    noise_seed: int | None = None


class _CompiledProgram:
    """One program flattened into per-rank message arrays.

    Messages are stored rank-major (``indptr[rank] : indptr[rank + 1]``), in
    program send order.  ``gap``/``latency`` hold the noise-free pLogP values
    evaluated once at compile time — bitwise the same numbers
    :meth:`~repro.simulator.network.SimulatedNetwork.transmit` would compute
    per message — both as NumPy arrays (vector path) and plain lists (scalar
    path).
    """

    __slots__ = (
        "program",
        "num_ranks",
        "roots",
        "indptr",
        "dest",
        "size",
        "tag",
        "gap",
        "latency",
        "gap_list",
        "latency_list",
        "max_draws",
    )

    def __init__(
        self,
        grid: Grid,
        task: ExecutionTask,
        params_memo: "_ParamsMemo",
        cluster_of: list[int],
        lean: bool = False,
    ) -> None:
        program = task.program
        if program.num_ranks > grid.num_nodes:
            raise ValueError(
                f"program spans {program.num_ranks} ranks but the network only has "
                f"{grid.num_nodes}"
            )
        self.program = program
        self.num_ranks = program.num_ranks
        self.roots = program.start_ranks(task.initially_active)
        for rank in self.roots:
            if not 0 <= rank < program.num_ranks:
                raise ValueError(f"initially active rank {rank} out of range")

        dest: list[int] = []
        size: list[float] | None = None if lean else []
        tag: list[str] | None = None if lean else []
        gap: list[float] = []
        latency: list[float] = []
        indptr = [0]
        dest_append = dest.append
        gap_append = gap.append
        latency_append = latency.append
        sends_get = program.sends.get
        tables = params_memo.tables
        for rank in range(program.num_ranks):
            instructions = sends_get(rank)
            if instructions:
                source_cluster = cluster_of[rank]
                for instruction in instructions:
                    destination = instruction.destination
                    message_size = instruction.message_size
                    # Per-size (cluster, cluster) lookup tables: a plain 2-D
                    # list index per message instead of a tuple-keyed dict.
                    table = tables.get(message_size)
                    if table is None:
                        table = params_memo.add_size(message_size)
                    pair = table[source_cluster][cluster_of[destination]]
                    if pair is None:
                        pair = params_memo.resolve(
                            grid, rank, destination, message_size, cluster_of
                        )
                    dest_append(destination)
                    gap_append(pair[0])
                    latency_append(pair[1])
                    if not lean:
                        size.append(message_size)
                        tag.append(instruction.tag)
            indptr.append(len(dest))
        self.indptr = indptr
        self.dest = dest
        self.size = size
        self.tag = tag
        self.gap = np.asarray(gap, dtype=float)
        self.latency = np.asarray(latency, dtype=float)
        self.gap_list = gap
        self.latency_list = latency
        # Upper bound on noise draws: one per nonzero gap/latency value.  The
        # bound is only unreached when some sender never activates (its sends
        # never execute); pre-drawing extra values is harmless because every
        # executed message consumes the same stream positions either way.
        self.max_draws = int(
            np.count_nonzero(self.gap) + np.count_nonzero(self.latency)
        )


class _ParamsMemo:
    """Per-size ``(cluster, cluster)`` tables of evaluated pLogP pairs.

    ``tables[size][ci][cj]`` holds ``(gap(size), latency)`` for a message of
    ``size`` bytes between any node of cluster ``ci`` and any node of cluster
    ``cj`` (``None`` until first use) — the values
    :meth:`~repro.topology.grid.Grid.node_link_parameters` would produce,
    evaluated once and shared by every program of the batch.
    """

    __slots__ = ("num_clusters", "tables")

    def __init__(self, num_clusters: int) -> None:
        self.num_clusters = num_clusters
        self.tables: dict[float, list[list[tuple[float, float] | None]]] = {}

    def add_size(self, message_size: float) -> list:
        table = [[None] * self.num_clusters for _ in range(self.num_clusters)]
        self.tables[message_size] = table
        return table

    def resolve(
        self,
        grid: Grid,
        rank: int,
        destination: int,
        message_size: float,
        cluster_of: list[int],
    ) -> tuple[float, float]:
        params = grid.node_link_parameters(rank, destination)
        pair = (params.gap(message_size), params.latency)
        table = self.tables[message_size]
        table[cluster_of[rank]][cluster_of[destination]] = pair
        return pair


def _run_compiled(
    prog: _CompiledProgram,
    noise: np.ndarray | None,
    overhead: float,
    collect_traces: bool,
) -> ExecutionResult:
    """Execute one compiled program against per-rank array state.

    The per-rank state rows (NIC availability, activation flag/time,
    completion) are flat arrays indexed by rank; the delivery heap is local to
    the program, so its (time, sequence) ordering is exactly the scalar
    engine's — interleaving with other programs of the batch never reorders a
    program's own ties.
    """
    n = prog.num_ranks
    indptr = prog.indptr
    dest = prog.dest
    gap_list = prog.gap_list
    latency_list = prog.latency_list
    nic_free = [0.0] * n
    active = bytearray(n)
    activation = [0.0] * n
    completion = [0.0] * n
    noisy = noise is not None
    draws = noise.tolist() if noisy else []
    position = 0
    trace: list[tuple] | None = [] if collect_traces else None
    heap: list[tuple[float, int, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    sequence = 0

    def issue_sends(rank: int, now: float) -> None:
        nonlocal sequence, position
        lo = indptr[rank]
        hi = indptr[rank + 1]
        count = hi - lo
        if count >= VECTOR_MIN_SENDS:
            gaps = prog.gap[lo:hi]
            lats = prog.latency[lo:hi]
            if noisy:
                # Interleave gap0, lat0, gap1, lat1, ... so the draws are
                # consumed in exactly the scalar transmit order (zero-valued
                # entries draw nothing, like _perturb).
                base = np.empty(2 * count)
                base[0::2] = gaps
                base[1::2] = lats
                mask = base != 0.0
                used = int(mask.sum())
                factors = np.ones(2 * count)
                factors[mask] = noise[position : position + used]
                position += used
                perturbed = base * factors
                gaps = perturbed[0::2]
                lats = perturbed[1::2]
                chain = gaps
            else:
                chain = gaps.copy()
            start0 = max(now, nic_free[rank])
            chain[0] += start0
            releases = np.cumsum(chain)
            deliveries = releases + lats + overhead
            release_list = releases.tolist()
            last_release = release_list[-1]
            nic_free[rank] = last_release
            completion[rank] = max(completion[rank], last_release)
            delivery_list = deliveries.tolist()
            for offset, delivery in enumerate(delivery_list):
                destination = dest[lo + offset]
                if active[destination]:
                    # Already-active receivers need no event: the delivery
                    # can only raise their completion, and max() is
                    # order-independent, so fold it in right away.
                    if delivery > completion[destination]:
                        completion[destination] = delivery
                else:
                    push(heap, (delivery, sequence, lo + offset))
                    sequence += 1
            if trace is not None:
                start_list = [start0] + release_list[:-1]
                for offset in range(count):
                    index = lo + offset
                    trace.append(
                        (
                            rank,
                            dest[index],
                            prog.size[index],
                            now,
                            start_list[offset],
                            delivery_list[offset],
                            prog.tag[index],
                        )
                    )
        elif noisy:
            nic = nic_free[rank]
            for index in range(lo, hi):
                gap = gap_list[index]
                lat = latency_list[index]
                if gap != 0.0:
                    gap = gap * draws[position]
                    position += 1
                if lat != 0.0:
                    lat = lat * draws[position]
                    position += 1
                start = now if now >= nic else nic
                release = start + gap
                delivery = release + lat + overhead
                nic = release
                destination = dest[index]
                if active[destination]:
                    if delivery > completion[destination]:
                        completion[destination] = delivery
                else:
                    push(heap, (delivery, sequence, index))
                    sequence += 1
                if trace is not None:
                    trace.append(
                        (
                            rank,
                            dest[index],
                            prog.size[index],
                            now,
                            start,
                            delivery,
                            prog.tag[index],
                        )
                    )
            nic_free[rank] = nic
            completion[rank] = max(completion[rank], nic)
        else:
            nic = nic_free[rank]
            for index in range(lo, hi):
                start = now if now >= nic else nic
                release = start + gap_list[index]
                delivery = release + latency_list[index] + overhead
                nic = release
                destination = dest[index]
                if active[destination]:
                    if delivery > completion[destination]:
                        completion[destination] = delivery
                else:
                    push(heap, (delivery, sequence, index))
                    sequence += 1
                if trace is not None:
                    trace.append(
                        (
                            rank,
                            dest[index],
                            prog.size[index],
                            now,
                            start,
                            delivery,
                            prog.tag[index],
                        )
                    )
            nic_free[rank] = nic
            completion[rank] = max(completion[rank], nic)

    # Flag every initially-active rank before issuing anything: the scalar
    # engine pops all time-zero activation events before the first delivery,
    # so during root bursts the whole root set already counts as active.
    for rank in prog.roots:
        active[rank] = 1
    for rank in prog.roots:
        if indptr[rank + 1] > indptr[rank]:
            issue_sends(rank, 0.0)

    while heap:
        time, _, index = pop(heap)
        destination = dest[index]
        if time > completion[destination]:
            completion[destination] = time
        if not active[destination]:
            active[destination] = 1
            activation[destination] = time
            lo = indptr[destination]
            hi = indptr[destination + 1]
            if hi - lo == 1:
                # Inlined single-send burst — the overwhelmingly common case
                # in tree-shaped programs; same arithmetic as issue_sends.
                gap = gap_list[lo]
                lat = latency_list[lo]
                if noisy:
                    if gap != 0.0:
                        gap = gap * draws[position]
                        position += 1
                    if lat != 0.0:
                        lat = lat * draws[position]
                        position += 1
                nic = nic_free[destination]
                start = time if time >= nic else nic
                release = start + gap
                nic_free[destination] = release
                if release > completion[destination]:
                    completion[destination] = release
                delivery = release + lat + overhead
                receiver = dest[lo]
                if active[receiver]:
                    if delivery > completion[receiver]:
                        completion[receiver] = delivery
                else:
                    push(heap, (delivery, sequence, lo))
                    sequence += 1
                if trace is not None:
                    trace.append(
                        (
                            destination,
                            dest[lo],
                            prog.size[lo],
                            time,
                            start,
                            delivery,
                            prog.tag[lo],
                        )
                    )
            elif hi > lo:
                issue_sends(destination, time)

    # Every time in the state rows is a plain Python float by construction
    # (heap entries and vector results pass through .tolist()), so result
    # materialisation is copy-only.
    activation_times: list[float | None] = [
        value if flag else None for value, flag in zip(activation, active)
    ]
    trace_records: list[MessageRecord] = []
    if trace is not None:
        trace_records = [
            MessageRecord(
                source=source,
                destination=destination,
                message_size=size,
                issue_time=issue,
                start_time=start,
                delivery_time=delivery,
                tag=tag,
            )
            for source, destination, size, issue, start, delivery, tag in trace
        ]
        trace_records.sort(key=lambda record: record.delivery_time)
    return ExecutionResult(
        program_name=prog.program.name,
        activation_times=activation_times,
        completion_times=list(completion),
        trace=trace_records,
    )


def _execute_batch(
    grid: Grid,
    tasks: Sequence[ExecutionTask],
    config: NetworkConfig,
    collect_traces: bool,
) -> list[ExecutionResult]:
    """Run every task in one pass; the batched engine proper.

    The batch shares one compile memo (pLogP parameter evaluations keyed by
    cluster pair and size) across all programs; each compiled program then
    executes against its own state arrays and — when noise is on — its own
    pre-drawn noise sequence, spawned from its task seed.  Programs are
    independent, so executing them back to back is observationally identical
    to interleaving their events; the per-program layout is what keeps the
    state rows cache-hot.
    """
    params_memo = _ParamsMemo(grid.num_clusters)
    cluster_of = [grid.cluster_of_rank(rank) for rank in range(grid.num_nodes)]
    # A program appearing in several tasks (e.g. noise replicas of the same
    # sweep) compiles once; the compiled form is read-only during execution.
    compiled_cache: dict[tuple[int, tuple[int, ...]], _CompiledProgram] = {}
    compiled: list[_CompiledProgram] = []
    for task in tasks:
        key = (id(task.program), tuple(task.initially_active))
        prog = compiled_cache.get(key)
        if prog is None:
            prog = _CompiledProgram(
                grid, task, params_memo, cluster_of, lean=not collect_traces
            )
            compiled_cache[key] = prog
        compiled.append(prog)
    sigma = config.noise_sigma
    results: list[ExecutionResult] = []
    for task, prog in zip(tasks, compiled):
        noise: np.ndarray | None = None
        if sigma > 0.0:
            # Pre-draw the whole noise sequence in one bulk call: the k-th
            # value consumed during execution is by construction the value
            # the scalar engine's k-th sequential lognormal() call produces.
            stream = RandomStream(
                seed=task.noise_seed if task.noise_seed is not None else config.seed
            )
            noise = stream.lognormal_array(0.0, sigma, prog.max_draws)
        results.append(
            _run_compiled(prog, noise, config.receive_overhead, collect_traces)
        )
    return results


def _execute_scalar(
    grid: Grid,
    tasks: Sequence[ExecutionTask],
    config: NetworkConfig,
    collect_traces: bool,
) -> list[ExecutionResult]:
    """The reference loop: one scalar execution per task, per-task seeds."""
    results = []
    for task in tasks:
        network = SimulatedNetwork(
            grid,
            NetworkConfig(
                noise_sigma=config.noise_sigma,
                seed=task.noise_seed if task.noise_seed is not None else config.seed,
                receive_overhead=config.receive_overhead,
            ),
        )
        result = execute_program(
            network, task.program, initially_active=task.initially_active
        )
        if not collect_traces:
            result.trace = []
        results.append(result)
    return results


def _execute_chunk(args) -> tuple[int, list[ExecutionResult]]:
    """Multiprocessing adapter: run one contiguous slice of the task list."""
    start, grid, tasks, config, collect_traces, engine = args
    runner = _execute_batch if engine == "batched" else _execute_scalar
    return start, runner(grid, tasks, config, collect_traces)


def execute_programs(
    grid: Grid,
    tasks: Sequence[ExecutionTask | CommunicationProgram],
    *,
    config: NetworkConfig | None = None,
    collect_traces: bool = True,
    workers: int | None = None,
    engine: str = "batched",
) -> list[ExecutionResult]:
    """Execute many independent programs and return their results in order.

    Parameters
    ----------
    grid:
        The topology every program runs on.
    tasks:
        :class:`ExecutionTask` entries (bare programs are accepted and wrapped
        with default context).
    config:
        Shared network behaviour (noise sigma, fallback seed, receive
        overhead); per-task ``noise_seed`` overrides the seed.
    collect_traces:
        Keep the full message trace of every execution; pass ``False`` for
        makespan-only sweeps (the practical study does).
    workers:
        Optional :mod:`multiprocessing` fan-out over contiguous chunks of the
        task list; ``None``/``0``/``1`` run in-process.  Results are identical
        at any worker count because every task carries its own noise seed.
    engine:
        ``"batched"`` (default) or ``"scalar"`` — the scalar reference loop
        used by the equivalence suite and as the benchmark baseline.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    config = config if config is not None else NetworkConfig()
    normalized = [
        task if isinstance(task, ExecutionTask) else ExecutionTask(program=task)
        for task in tasks
    ]
    worker_count = max(0, int(workers)) if workers is not None else 0

    if worker_count > 1 and len(normalized) > 1:
        chunk = max(1, -(-len(normalized) // (worker_count * 4)))
        jobs = [
            (start, grid, normalized[start : start + chunk], config, collect_traces, engine)
            for start in range(0, len(normalized), chunk)
        ]
        results: list[ExecutionResult | None] = [None] * len(normalized)
        with multiprocessing.Pool(processes=worker_count) as pool:
            for start, values in pool.imap_unordered(_execute_chunk, jobs):
                results[start : start + len(values)] = values
        return results  # type: ignore[return-value]

    runner = _execute_batch if engine == "batched" else _execute_scalar
    return runner(grid, normalized, config, collect_traces)
