"""The node-level network cost model driven by the grid topology.

Every pair of machines has pLogP parameters derived from the topology (see
:meth:`repro.topology.grid.Grid.node_link_parameters`): two machines of the
same cluster use the cluster's intra-parameters, machines of different
clusters use the inter-cluster link.  On top of those the network adds the two
ingredients that make an *execution* different from a *prediction*:

* **NIC occupancy** — a machine injects messages one at a time; a new send
  issued while the NIC is busy waits for it to free up (this is the physical
  counterpart of the gap bookkeeping in the schedule evaluation); and
* **noise** — optional log-normal multiplicative jitter applied independently
  to the gap and latency of every message, seeded for reproducibility, which
  is how the "measured" curves of Figure 6 differ from the "predicted" curves
  of Figure 5 without changing their shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.grid import Grid
from repro.utils.rng import RandomStream
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class NetworkConfig:
    """Tunable behaviour of the simulated network.

    Attributes
    ----------
    noise_sigma:
        Standard deviation of the log-normal multiplicative noise applied to
        every per-message gap and latency (0 disables noise, the default).
    seed:
        Seed of the noise stream.
    receive_overhead:
        Fixed per-message receive-side processing cost added to the delivery
        time (seconds).  Models the ``o_r`` term that pLogP folds into the
        gap; kept explicit so failure-injection tests can exaggerate it.
    """

    noise_sigma: float = 0.0
    seed: int = 12061968
    receive_overhead: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.noise_sigma, "noise_sigma")
        check_non_negative(self.receive_overhead, "receive_overhead")


class SimulatedNetwork:
    """Per-node message timing for a grid.

    The network is stateful: it tracks when each node's NIC becomes free.  It
    does not own a clock — the execution layer passes in the issue time of
    each send and receives back the computed timestamps — which keeps it
    trivially reusable both inside the event-driven executor and inside the
    closed-form measurement oracle.
    """

    def __init__(self, grid: Grid, config: NetworkConfig | None = None) -> None:
        if not isinstance(grid, Grid):
            raise TypeError("grid must be a Grid")
        self.grid = grid
        self.config = config if config is not None else NetworkConfig()
        if not isinstance(self.config, NetworkConfig):
            raise TypeError("config must be a NetworkConfig")
        self._nic_free_at = [0.0] * grid.num_nodes
        self._noise = RandomStream(seed=self.config.seed)
        self._message_count = 0

    # -- state ------------------------------------------------------------------

    @property
    def message_count(self) -> int:
        """Number of messages transmitted since construction (or reset)."""
        return self._message_count

    def nic_free_at(self, rank: int) -> float:
        """When the given node's NIC becomes available for a new injection."""
        return self._nic_free_at[rank]

    def reset(self) -> None:
        """Clear NIC occupancy and restart the noise stream."""
        self._nic_free_at = [0.0] * self.grid.num_nodes
        self._noise = RandomStream(seed=self.config.seed)
        self._message_count = 0

    # -- timing ------------------------------------------------------------------

    def _perturb(self, value: float) -> float:
        if self.config.noise_sigma <= 0.0 or value == 0.0:
            return value
        return value * self._noise.lognormal(0.0, self.config.noise_sigma)

    def transmit(
        self,
        source: int,
        destination: int,
        message_size: float,
        issue_time: float,
    ) -> tuple[float, float, float]:
        """Transmit one message and return its timing.

        Parameters
        ----------
        source, destination:
            Global ranks of the two machines.
        message_size:
            Message size in bytes.
        issue_time:
            Time at which the sender *wants* to start the transmission (it may
            be delayed by NIC occupancy).

        Returns
        -------
        (start_time, sender_release_time, delivery_time):
            When the injection actually started, when the sender's NIC frees
            up, and when the destination holds the message.
        """
        check_non_negative(message_size, "message_size")
        check_non_negative(issue_time, "issue_time")
        if source == destination:
            raise ValueError("a node cannot transmit a message to itself")
        params = self.grid.node_link_parameters(source, destination)
        gap = self._perturb(params.gap(message_size))
        latency = self._perturb(params.latency)
        start = max(issue_time, self._nic_free_at[source])
        release = start + gap
        delivery = release + latency + self.config.receive_overhead
        self._nic_free_at[source] = release
        self._message_count += 1
        return start, release, delivery

    # -- measurement support --------------------------------------------------------

    def round_trip_oracle(self, source: int, destination: int):
        """A ping-pong oracle for :class:`repro.model.measurement.MeasurementProcedure`.

        Each call simulates a fresh ping of the requested size followed by an
        empty pong, starting from an idle network.  *All* execution-visible
        state is saved and restored around the probe — NIC occupancy, the
        noise stream and the message counter — so probing mid-execution
        neither delays the execution's sends nor shifts its subsequent noise
        draws nor inflates its message count.
        """

        def oracle(message_size: float) -> float:
            saved_nic = list(self._nic_free_at)
            saved_count = self._message_count
            saved_noise = self._noise.state
            # Probe from idle NICs: a round trip measures the link, not the
            # backlog the execution happens to have queued on the endpoints.
            self._nic_free_at[source] = 0.0
            self._nic_free_at[destination] = 0.0
            try:
                _, _, arrival = self.transmit(source, destination, message_size, 0.0)
                _, _, back = self.transmit(destination, source, 0.0, arrival)
                return back
            finally:
                self._nic_free_at = saved_nic
                self._message_count = saved_count
                self._noise.state = saved_noise

        return oracle
