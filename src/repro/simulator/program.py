"""Communication programs: per-rank ordered send lists.

All the simulated collectives (grid-aware broadcast, grid-unaware binomial,
scatter, all-to-all) reduce to the same execution pattern: *once a machine
holds the payload it needs, it sends messages to a fixed list of destinations,
in a fixed order*.  A :class:`CommunicationProgram` captures exactly that —
the "what", leaving the "when" to the executor and the network model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class SendInstruction:
    """One send a machine must perform once it is activated.

    Attributes
    ----------
    destination:
        Global rank of the receiving machine.
    message_size:
        Payload size in bytes.
    tag:
        Free-form label recorded in the trace (e.g. ``"inter-cluster"`` or
        ``"local"``); has no effect on timing.
    """

    destination: int
    message_size: float
    tag: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.destination, bool) or not isinstance(self.destination, int):
            raise TypeError("destination must be an int")
        if self.destination < 0:
            raise ValueError(f"destination must be non-negative, got {self.destination}")
        check_non_negative(self.message_size, "message_size")


@dataclass
class CommunicationProgram:
    """A dissemination program over ``num_ranks`` machines.

    Attributes
    ----------
    num_ranks:
        Total number of machines.
    root:
        Rank that is active from time zero (it initially holds the payload).
    sends:
        ``sends[rank]`` is the ordered list of :class:`SendInstruction` the
        rank performs once activated.  Ranks that never receive anything and
        are not the root simply stay idle.
    name:
        Label of the collective that produced the program.
    initially_active:
        Extra ranks (besides the root) that hold their payload from time zero
        — scatter/all-to-all style programs declare their senders here so
        executors need no out-of-band knowledge of the pattern.
    """

    num_ranks: int
    root: int
    sends: dict[int, list[SendInstruction]] = field(default_factory=dict)
    name: str = "program"
    initially_active: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.num_ranks, bool) or not isinstance(self.num_ranks, int):
            raise TypeError("num_ranks must be an int")
        if self.num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {self.num_ranks}")
        if not 0 <= self.root < self.num_ranks:
            raise ValueError(f"root must be a valid rank, got {self.root}")
        self.initially_active = tuple(self.initially_active)
        for rank in self.initially_active:
            if isinstance(rank, bool) or not isinstance(rank, int):
                raise TypeError("initially_active ranks must be ints")
            if not 0 <= rank < self.num_ranks:
                raise ValueError(f"initially active rank {rank} out of range")
        for rank, instructions in self.sends.items():
            if not 0 <= rank < self.num_ranks:
                raise ValueError(f"sender rank {rank} out of range")
            for instruction in instructions:
                if not isinstance(instruction, SendInstruction):
                    raise TypeError("sends must contain SendInstruction values")
                if instruction.destination >= self.num_ranks:
                    raise ValueError(
                        f"destination {instruction.destination} out of range"
                    )
                if instruction.destination == rank:
                    raise ValueError(f"rank {rank} sends to itself")

    def add_send(
        self, sender: int, destination: int, message_size: float, *, tag: str = ""
    ) -> None:
        """Append one send to ``sender``'s instruction list."""
        instruction = SendInstruction(
            destination=destination, message_size=message_size, tag=tag
        )
        if not 0 <= sender < self.num_ranks:
            raise ValueError(f"sender rank {sender} out of range")
        if destination == sender:
            raise ValueError(f"rank {sender} cannot send to itself")
        if destination >= self.num_ranks:
            raise ValueError(f"destination {destination} out of range")
        self.sends.setdefault(sender, []).append(instruction)

    def sends_of(self, rank: int) -> list[SendInstruction]:
        """The (possibly empty) instruction list of ``rank``."""
        return list(self.sends.get(rank, []))

    def start_ranks(self, extra=()) -> list[int]:
        """All ranks active at time zero, in activation (ascending) order.

        The union of the root, the program's own ``initially_active``
        declaration and the caller-provided ``extra`` ranks.  Both the scalar
        and the batched executor activate exactly this list, in this order,
        which is what keeps their tie-breaking identical.
        """
        return sorted({self.root, *self.initially_active, *extra})

    def total_messages(self) -> int:
        """Total number of point-to-point messages in the program."""
        return sum(len(instructions) for instructions in self.sends.values())

    def total_bytes(self) -> float:
        """Total payload volume injected into the network (bytes)."""
        return sum(
            instruction.message_size
            for instructions in self.sends.values()
            for instruction in instructions
        )

    def receivers(self) -> set[int]:
        """All ranks that appear as a destination at least once."""
        return {
            instruction.destination
            for instructions in self.sends.values()
            for instruction in instructions
        }

    def validate_broadcast(self) -> None:
        """Check that the program is a well-formed broadcast dissemination.

        Every non-root rank must receive exactly one message, and every sender
        must be reachable from the root through earlier sends (the executor
        would deadlock otherwise).
        """
        incoming: dict[int, int] = {}
        for instructions in self.sends.values():
            for instruction in instructions:
                incoming[instruction.destination] = (
                    incoming.get(instruction.destination, 0) + 1
                )
        if self.root in incoming:
            raise ValueError("the root must not receive the broadcast payload")
        duplicates = {rank for rank, count in incoming.items() if count > 1}
        if duplicates:
            raise ValueError(f"ranks {sorted(duplicates)} receive more than once")
        missing = set(range(self.num_ranks)) - {self.root} - set(incoming)
        if missing:
            raise ValueError(f"ranks {sorted(missing)} never receive the payload")
        # reachability: senders must receive before they send
        informed = {self.root}
        frontier = [self.root]
        while frontier:
            sender = frontier.pop()
            for instruction in self.sends.get(sender, []):
                if instruction.destination not in informed:
                    informed.add(instruction.destination)
                    frontier.append(instruction.destination)
        idle_senders = set(self.sends) - informed
        idle_senders = {rank for rank in idle_senders if self.sends.get(rank)}
        if idle_senders:
            raise ValueError(
                f"ranks {sorted(idle_senders)} have sends but never receive the payload"
            )
