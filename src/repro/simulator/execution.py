"""Event-driven execution of communication programs.

The executor activates the root at time zero, lets every activated machine
issue its sends in program order (each one subject to NIC occupancy inside the
network model), and activates a machine the first time a message reaches it.
The result records per-rank activation times, a complete message trace and the
makespan, which is what the "measured" curves of Figure 6 are built from.

Scatter- and all-to-all-style programs, where machines other than the root may
also be senders from the start, are supported through ``initially_active``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.simulator.engine import SimulationEngine
from repro.simulator.network import SimulatedNetwork
from repro.simulator.program import CommunicationProgram, SendInstruction


@dataclass(frozen=True)
class MessageRecord:
    """One point-to-point message observed during an execution."""

    source: int
    destination: int
    message_size: float
    issue_time: float
    start_time: float
    delivery_time: float
    tag: str = ""

    @property
    def transfer_time(self) -> float:
        """Delivery minus actual injection start."""
        return self.delivery_time - self.start_time

    @property
    def queueing_delay(self) -> float:
        """How long the message waited for the sender's NIC."""
        return self.start_time - self.issue_time


@dataclass
class ExecutionResult:
    """Outcome of executing a program on a simulated network.

    Attributes
    ----------
    program_name:
        Name of the executed program.
    activation_times:
        ``activation_times[rank]`` is the first time the rank held a payload
        (0 for initially active ranks, ``None`` for ranks that never received
        anything).
    completion_times:
        Per-rank time at which the rank finished all its activity (its last
        delivery received or the release of its last send).
    trace:
        All messages, in delivery order.
    """

    program_name: str
    activation_times: list[float | None]
    completion_times: list[float]
    trace: list[MessageRecord] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Time of the last activity across every rank."""
        return max(self.completion_times) if self.completion_times else 0.0

    @property
    def last_activation(self) -> float:
        """The largest activation time among ranks that were activated."""
        activated = [t for t in self.activation_times if t is not None]
        return max(activated) if activated else 0.0

    def messages_between_clusters(self, cluster_of: Sequence[int]) -> int:
        """Count messages whose endpoints live in different clusters."""
        return sum(
            1
            for record in self.trace
            if cluster_of[record.source] != cluster_of[record.destination]
        )


def execute_program(
    network: SimulatedNetwork,
    program: CommunicationProgram,
    *,
    initially_active: Iterable[int] = (),
    reset_network: bool = True,
) -> ExecutionResult:
    """Run ``program`` on ``network`` and collect the resulting timings.

    Parameters
    ----------
    network:
        The simulated network (its grid must have at least ``program.num_ranks``
        machines).
    program:
        The communication program to execute.
    initially_active:
        Extra ranks (besides the program root and the program's own
        ``initially_active`` declaration) that start activated at time zero;
        used by scatter / all-to-all style programs.
    reset_network:
        Reset NIC occupancy and noise before executing (default).  Pass
        ``False`` to chain several collectives back to back on a warm network.
    """
    if program.num_ranks > network.grid.num_nodes:
        raise ValueError(
            f"program spans {program.num_ranks} ranks but the network only has "
            f"{network.grid.num_nodes}"
        )
    if reset_network:
        network.reset()

    engine = SimulationEngine()
    activation: list[float | None] = [None] * program.num_ranks
    completion: list[float] = [0.0] * program.num_ranks
    trace: list[MessageRecord] = []

    def issue_sends(rank: int) -> None:
        """Issue every send of ``rank`` at its activation time.

        The sends are all *issued* at the activation instant — the NIC
        occupancy inside the network model serialises them — so the recorded
        ``queueing_delay`` of each message reflects how long it waited for the
        sender's NIC.
        """
        issue_time = engine.now
        for instruction in program.sends_of(rank):
            start, release, delivery = network.transmit(
                rank, instruction.destination, instruction.message_size, issue_time
            )
            record = MessageRecord(
                source=rank,
                destination=instruction.destination,
                message_size=instruction.message_size,
                issue_time=issue_time,
                start_time=start,
                delivery_time=delivery,
                tag=instruction.tag,
            )
            trace.append(record)
            completion[rank] = max(completion[rank], release)
            engine.schedule_at(delivery, _make_delivery(instruction, delivery, record))

    def _make_delivery(
        instruction: SendInstruction, delivery: float, record: MessageRecord
    ):
        def on_delivery() -> None:
            destination = instruction.destination
            completion[destination] = max(completion[destination], delivery)
            if activation[destination] is None:
                activation[destination] = delivery
                issue_sends(destination)

        return on_delivery

    def activate(rank: int) -> None:
        if activation[rank] is None:
            activation[rank] = engine.now
            issue_sends(rank)

    for rank in program.start_ranks(initially_active):
        if not 0 <= rank < program.num_ranks:
            raise ValueError(f"initially active rank {rank} out of range")
        engine.schedule_at(0.0, lambda r=rank: activate(r))

    engine.run()
    trace.sort(key=lambda record: record.delivery_time)
    return ExecutionResult(
        program_name=program.name,
        activation_times=activation,
        completion_times=completion,
        trace=trace,
    )
