"""Scatter programs (the first "future work" pattern of paper §8).

A personalised scatter distributes a distinct block of ``chunk_size`` bytes
from the root to every rank.  Two strategies are provided:

* :func:`flat_scatter_program` — the naive strategy: the root sends every
  rank its block directly, crossing the wide area once per remote rank.
* :func:`grid_aware_scatter_program` — the hierarchical strategy: the root
  coordinator forwards to each remote cluster's coordinator a single
  aggregated message containing all of that cluster's blocks (ordered by an
  inter-cluster schedule produced by any of the broadcast heuristics, with
  per-destination message sizes proportional to the cluster size), and each
  coordinator then scatters the blocks locally.

The aggregation is what makes the hierarchical strategy win: the wide area is
crossed once per *cluster* instead of once per *rank*.
"""

from __future__ import annotations

from repro.core.base import SchedulingHeuristic
from repro.core.schedule import BroadcastSchedule, evaluate_order
from repro.simulator.program import CommunicationProgram
from repro.topology.grid import Grid
from repro.utils.validation import check_non_negative


def flat_scatter_program(
    grid: Grid,
    chunk_size: float,
    *,
    root_rank: int = 0,
) -> CommunicationProgram:
    """The root sends each rank its private block directly."""
    check_non_negative(chunk_size, "chunk_size")
    program = CommunicationProgram(
        num_ranks=grid.num_nodes,
        root=root_rank,
        name="flat-scatter",
        initially_active=(root_rank,),
    )
    for rank in range(grid.num_nodes):
        if rank == root_rank:
            continue
        program.add_send(root_rank, rank, chunk_size, tag="scatter-direct")
    return program


def grid_aware_scatter_program(
    grid: Grid,
    chunk_size: float,
    *,
    heuristic: SchedulingHeuristic,
    root_cluster: int = 0,
) -> tuple[CommunicationProgram, BroadcastSchedule]:
    """Hierarchical scatter driven by an inter-cluster schedule.

    The inter-cluster *order* is taken from the broadcast heuristic (it
    already balances latency, gap and local completion); message sizes are
    then adjusted per destination: a coordinator receives
    ``cluster_size * chunk_size`` bytes, because it carries every block of its
    cluster.  Each coordinator finally performs a local flat scatter of the
    individual blocks.

    Note that unlike a broadcast, a scatter cannot re-aggregate across
    clusters: intermediate coordinators would need to hold other clusters'
    blocks.  We therefore restrict the schedule to sends emitted by the root
    cluster (a "scheduled flat tree" at the cluster level), which is the
    standard MagPIe-style structure for personalised operations, ordered by
    the heuristic's priorities.

    Returns
    -------
    (program, schedule):
        The node-level program and the cluster-level schedule whose order was
        used (with per-cluster aggregated sizes in the recorded transfers).
    """
    check_non_negative(chunk_size, "chunk_size")
    schedule = heuristic.schedule(
        grid, chunk_size * max(c.size for c in grid.clusters), root=root_cluster
    )
    # Keep only the ordering information: rank remote clusters by the arrival
    # times the heuristic produced, then have the root contact them in that
    # order (personalised data cannot be relayed through other clusters).
    remote_clusters = sorted(
        (c for c in range(grid.num_clusters) if c != root_cluster),
        key=lambda c: schedule.arrival_times[c],
    )
    order = [(root_cluster, cluster) for cluster in remote_clusters]
    aggregated_sizes = [grid.cluster(c).size * chunk_size for c in range(grid.num_clusters)]
    cluster_schedule = evaluate_order(
        grid,
        chunk_size,
        root_cluster,
        order,
        heuristic_name=f"scatter[{heuristic.name}]",
        broadcast_times=[0.0] * grid.num_clusters,
    )

    root_rank = grid.coordinator_rank(root_cluster)
    program = CommunicationProgram(
        num_ranks=grid.num_nodes,
        root=root_rank,
        name=f"grid-aware-scatter[{heuristic.name}]",
        initially_active=(root_rank,),
    )
    # Inter-cluster phase: aggregated block per remote cluster.
    for _, cluster in order:
        program.add_send(
            root_rank,
            grid.coordinator_rank(cluster),
            aggregated_sizes[cluster],
            tag="scatter-aggregate",
        )
    # Local phase: every coordinator (including the root's own cluster) hands
    # each local rank its private block.
    for cluster in grid.clusters:
        coordinator = grid.coordinator_rank(cluster.cluster_id)
        for node in cluster.nodes:
            if node.rank == coordinator:
                continue
            program.add_send(coordinator, node.rank, chunk_size, tag="scatter-local")
    return program, cluster_schedule
