"""A simulated MPI collective layer.

The paper implements its heuristics "on top of a modified version of the
MagPIe library" and runs them as a real ``MPI_Bcast`` on GRID5000.  We cannot
link against LAM/MPI, so this sub-package provides the equivalent layer on top
of the discrete-event simulator:

* :class:`~repro.mpi.communicator.GridCommunicator` — binds a grid topology to
  a simulated network and exposes rank/cluster bookkeeping plus collective
  entry points;
* :mod:`~repro.mpi.bcast` — the **grid-aware broadcast**: inter-cluster
  dissemination following a heuristic's schedule, then per-cluster local
  trees (exactly MagPIe's structure with our schedules plugged in), and the
  **grid-unaware binomial broadcast** over all ranks (the "Default LAM"
  baseline of Figure 6);
* :mod:`~repro.mpi.scatter` and :mod:`~repro.mpi.alltoall` — the grid-aware
  scatter and personalised all-to-all patterns the paper lists as future
  work, built with the same coordinator-level scheduling machinery.
"""

from repro.mpi.communicator import GridCommunicator
from repro.mpi.bcast import (
    binomial_bcast_program,
    grid_aware_bcast_program,
    predict_bcast_makespan,
)
from repro.mpi.scatter import flat_scatter_program, grid_aware_scatter_program
from repro.mpi.alltoall import direct_alltoall_program, grid_aware_alltoall_program

__all__ = [
    "GridCommunicator",
    "binomial_bcast_program",
    "grid_aware_bcast_program",
    "predict_bcast_makespan",
    "flat_scatter_program",
    "grid_aware_scatter_program",
    "direct_alltoall_program",
    "grid_aware_alltoall_program",
]
