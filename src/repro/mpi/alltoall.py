"""Personalised all-to-all programs (the second "future work" pattern, paper §8).

In a personalised all-to-all every rank holds one distinct block of
``chunk_size`` bytes for every other rank.  Two strategies:

* :func:`direct_alltoall_program` — every rank sends its block to every other
  rank directly; the wide area carries ``n_i * n_j`` messages for every pair
  of clusters ``(i, j)``.
* :func:`grid_aware_alltoall_program` — blocks headed for a remote cluster are
  first gathered at the local coordinator, shipped as a single aggregated
  message to the remote coordinator, and redistributed locally.  The wide
  area carries exactly one (large) message per ordered cluster pair.

Both builders produce programs in which *every* rank is initially active
(every rank owns data from the start); the programs declare this through
:attr:`~repro.simulator.program.CommunicationProgram.initially_active`, so
any executor — scalar or batched — picks it up without out-of-band knowledge.
"""

from __future__ import annotations

from repro.simulator.program import CommunicationProgram
from repro.topology.grid import Grid
from repro.utils.validation import check_non_negative


def direct_alltoall_program(grid: Grid, chunk_size: float) -> CommunicationProgram:
    """Every rank sends its private block to every other rank directly."""
    check_non_negative(chunk_size, "chunk_size")
    program = CommunicationProgram(
        num_ranks=grid.num_nodes,
        root=0,
        name="direct-alltoall",
        initially_active=tuple(range(grid.num_nodes)),
    )
    for source in range(grid.num_nodes):
        for destination in range(grid.num_nodes):
            if source == destination:
                continue
            program.add_send(source, destination, chunk_size, tag="a2a-direct")
    return program


def grid_aware_alltoall_program(grid: Grid, chunk_size: float) -> CommunicationProgram:
    """Hierarchical all-to-all: aggregate at coordinators, one WAN message per cluster pair.

    Phase 1 (local gather): every non-coordinator rank sends, for each remote
    cluster, the concatenation of its blocks destined to that cluster to its
    own coordinator (one message of ``remote_cluster_size * chunk_size``
    bytes per remote cluster).

    Phase 2 (inter-cluster exchange): each coordinator sends to every remote
    coordinator one aggregated message containing all blocks from its cluster
    to the remote cluster (``local_size * remote_size * chunk_size`` bytes).

    Phase 3 (local redistribute): each coordinator delivers to every local
    rank the blocks it received on that rank's behalf
    (``(total_ranks - local_size) * chunk_size`` bytes per local rank), plus
    the purely local exchange between ranks of the same cluster, done
    directly (one ``chunk_size`` message per local pair).

    The program encodes the phases through the per-rank send order; the
    executor's dependency rule (a rank may send once activated, and every rank
    is initially active here) keeps the phases causally consistent because
    coordinators simply queue their phase-2/3 sends after their phase-1 sends
    on their own NIC.
    """
    check_non_negative(chunk_size, "chunk_size")
    program = CommunicationProgram(
        num_ranks=grid.num_nodes,
        root=0,
        name="grid-aware-alltoall",
        initially_active=tuple(range(grid.num_nodes)),
    )
    num_clusters = grid.num_clusters
    total_ranks = grid.num_nodes

    # Phase 1: local gather towards coordinators.
    for cluster in grid.clusters:
        coordinator = grid.coordinator_rank(cluster.cluster_id)
        remote_total = total_ranks - cluster.size
        if remote_total <= 0:
            continue
        for node in cluster.nodes:
            if node.rank == coordinator:
                continue
            program.add_send(
                node.rank, coordinator, remote_total * chunk_size, tag="a2a-gather"
            )

    # Phase 2: coordinator-to-coordinator aggregated exchange.
    for source_cluster in range(num_clusters):
        source_size = grid.cluster(source_cluster).size
        source_coord = grid.coordinator_rank(source_cluster)
        for target_cluster in range(num_clusters):
            if source_cluster == target_cluster:
                continue
            target_size = grid.cluster(target_cluster).size
            program.add_send(
                source_coord,
                grid.coordinator_rank(target_cluster),
                source_size * target_size * chunk_size,
                tag="a2a-exchange",
            )

    # Phase 3: local redistribution + purely local exchanges.
    for cluster in grid.clusters:
        coordinator = grid.coordinator_rank(cluster.cluster_id)
        remote_total = total_ranks - cluster.size
        for node in cluster.nodes:
            if node.rank != coordinator and remote_total > 0:
                program.add_send(
                    coordinator, node.rank, remote_total * chunk_size, tag="a2a-scatter"
                )
        for source in cluster.nodes:
            for destination in cluster.nodes:
                if source.rank == destination.rank:
                    continue
                program.add_send(
                    source.rank, destination.rank, chunk_size, tag="a2a-local"
                )
    return program
