"""Broadcast programs: grid-aware (scheduled) and grid-unaware (binomial).

Two program builders live here:

* :func:`grid_aware_bcast_program` converts an inter-cluster
  :class:`~repro.core.schedule.BroadcastSchedule` into a node-level
  :class:`~repro.simulator.program.CommunicationProgram`: each coordinator
  performs its scheduled wide-area sends in order and then broadcasts locally
  along a tree (binomial by default), which is exactly the MagPIe execution
  structure the paper modified.
* :func:`binomial_bcast_program` builds the topology-oblivious binomial tree
  over **all** ranks, i.e. the "Default LAM" / "pure MPI_Bcast" baseline the
  paper compares against in Figure 6.
"""

from __future__ import annotations

from repro.collectives.trees import make_tree
from repro.core.schedule import BroadcastSchedule
from repro.simulator.program import CommunicationProgram
from repro.topology.grid import Grid
from repro.utils.validation import check_non_negative


def grid_aware_bcast_program(
    grid: Grid,
    schedule: BroadcastSchedule,
    message_size: float,
    *,
    local_tree: str = "binomial",
    local_first: bool = False,
) -> CommunicationProgram:
    """Build the node-level program implementing a scheduled hierarchical bcast.

    Parameters
    ----------
    grid:
        The topology the schedule was computed for.
    schedule:
        The inter-cluster schedule (its ``num_clusters`` must match the grid).
    message_size:
        Payload size in bytes.
    local_tree:
        Tree shape used inside every cluster ("binomial" by default).
    local_first:
        When ``True`` each coordinator performs its *local* sends before its
        remaining inter-cluster sends — the "eager local broadcast" variant
        discussed in DESIGN.md §7.3.  The paper's semantics (local broadcast
        only once the coordinator no longer participates in inter-cluster
        traffic) correspond to the default ``False``.

    Returns
    -------
    CommunicationProgram
        A validated broadcast program rooted at the root cluster's coordinator.
    """
    check_non_negative(message_size, "message_size")
    if schedule.num_clusters != grid.num_clusters:
        raise ValueError(
            f"schedule covers {schedule.num_clusters} clusters but the grid has "
            f"{grid.num_clusters}"
        )
    root_rank = grid.coordinator_rank(schedule.root)
    program = CommunicationProgram(
        num_ranks=grid.num_nodes,
        root=root_rank,
        name=f"grid-aware-bcast[{schedule.heuristic_name or 'schedule'}]",
    )

    # Inter-cluster phase: coordinators follow the schedule order.
    inter_sends: dict[int, list[int]] = {}
    for transfer in schedule.transfers:
        sender_rank = grid.coordinator_rank(transfer.sender)
        receiver_rank = grid.coordinator_rank(transfer.receiver)
        inter_sends.setdefault(sender_rank, []).append(receiver_rank)

    # Local phase: each cluster broadcasts along its own tree, coordinator first.
    local_sends: dict[int, list[tuple[int, int]]] = {}
    for cluster in grid.clusters:
        if cluster.size <= 1:
            continue
        tree = make_tree(local_tree, cluster.size)
        base_rank = cluster.coordinator.rank
        for local_parent, kids in enumerate(tree.children):
            parent_rank = base_rank + local_parent
            for local_child in kids:
                local_sends.setdefault(parent_rank, []).append(
                    (base_rank + local_child, cluster.cluster_id)
                )

    for rank in range(grid.num_nodes):
        phases = (
            (("local", local_sends.get(rank, [])), ("inter", inter_sends.get(rank, [])))
            if local_first
            else (("inter", inter_sends.get(rank, [])), ("local", local_sends.get(rank, [])))
        )
        for phase_name, sends in phases:
            if phase_name == "inter":
                for destination in sends:
                    program.add_send(rank, destination, message_size, tag="inter-cluster")
            else:
                for destination, cluster_id in sends:
                    program.add_send(
                        rank, destination, message_size, tag=f"local-c{cluster_id}"
                    )

    program.validate_broadcast()
    return program


def binomial_bcast_program(
    grid: Grid,
    message_size: float,
    *,
    root_rank: int = 0,
) -> CommunicationProgram:
    """The grid-unaware binomial broadcast over all ranks ("Default LAM").

    The binomial tree is laid over the global rank order with the root mapped
    to position 0 (ranks are renumbered relative to the root, exactly like the
    classic MPI implementations).  Because the rank order interleaves clusters
    only by construction of the topology, wide-area links end up used many
    times — which is precisely why the paper's Figure 6 shows this baseline
    losing to every grid-aware heuristic except the Flat Tree.
    """
    check_non_negative(message_size, "message_size")
    num_ranks = grid.num_nodes
    if not 0 <= root_rank < num_ranks:
        raise ValueError(f"root_rank must be a valid rank, got {root_rank}")
    tree = make_tree("binomial", num_ranks)
    program = CommunicationProgram(
        num_ranks=num_ranks, root=root_rank, name="binomial-bcast"
    )
    for virtual_parent, kids in enumerate(tree.children):
        parent_rank = (virtual_parent + root_rank) % num_ranks
        for virtual_child in kids:
            child_rank = (virtual_child + root_rank) % num_ranks
            program.add_send(parent_rank, child_rank, message_size, tag="binomial")
    program.validate_broadcast()
    return program


def predict_bcast_makespan(
    grid: Grid,
    schedule: BroadcastSchedule,
) -> float:
    """The model-predicted completion time of a scheduled hierarchical bcast.

    This is simply the schedule's makespan (inter-cluster phase timed by the
    shared cost model plus the per-cluster ``T_i``); it is what Figure 5 plots
    and what :mod:`repro.experiments.practical_study` compares against the
    simulator-measured times of Figure 6.
    """
    if schedule.num_clusters != grid.num_clusters:
        raise ValueError("schedule and grid disagree on the number of clusters")
    return schedule.makespan
