"""The user-facing simulated communicator.

:class:`GridCommunicator` is the highest-level entry point of the library: it
binds a :class:`~repro.topology.grid.Grid` to a
:class:`~repro.simulator.network.SimulatedNetwork` and exposes MPI-flavoured
collective calls whose results are simulated executions rather than real
message exchanges.  It is what the examples and the practical-evaluation
benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import SchedulingHeuristic
from repro.core.registry import get_heuristic
from repro.core.schedule import BroadcastSchedule
from repro.mpi.alltoall import direct_alltoall_program, grid_aware_alltoall_program
from repro.mpi.bcast import binomial_bcast_program, grid_aware_bcast_program
from repro.mpi.scatter import flat_scatter_program, grid_aware_scatter_program
from repro.simulator.execution import ExecutionResult, execute_program
from repro.simulator.network import NetworkConfig, SimulatedNetwork
from repro.topology.grid import Grid


@dataclass(frozen=True)
class CollectiveOutcome:
    """The result of one simulated collective call.

    Attributes
    ----------
    schedule:
        The inter-cluster schedule used (``None`` for grid-unaware baselines
        and for patterns that do not schedule at the cluster level).
    predicted_time:
        Model-predicted completion time in seconds (``None`` when no
        prediction applies).
    execution:
        The simulated execution (per-rank times, trace, makespan).
    """

    schedule: BroadcastSchedule | None
    predicted_time: float | None
    execution: ExecutionResult

    @property
    def measured_time(self) -> float:
        """The simulated ("measured") completion time in seconds."""
        return self.execution.makespan


class GridCommunicator:
    """MPI-style collectives over a simulated grid.

    Parameters
    ----------
    grid:
        The grid topology.
    network_config:
        Optional simulator configuration (noise, receive overhead).
    """

    def __init__(self, grid: Grid, *, network_config: NetworkConfig | None = None) -> None:
        if not isinstance(grid, Grid):
            raise TypeError("grid must be a Grid")
        self.grid = grid
        self.network = SimulatedNetwork(grid, network_config)

    # -- rank bookkeeping -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of ranks (machines)."""
        return self.grid.num_nodes

    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return self.grid.num_clusters

    def cluster_of(self, rank: int) -> int:
        """Cluster index owning ``rank``."""
        return self.grid.cluster_of_rank(rank)

    def coordinator_ranks(self) -> list[int]:
        """Global rank of every cluster coordinator, in cluster order."""
        return [self.grid.coordinator_rank(c) for c in range(self.grid.num_clusters)]

    def _resolve_heuristic(self, heuristic: "SchedulingHeuristic | str") -> SchedulingHeuristic:
        if isinstance(heuristic, str):
            return get_heuristic(heuristic)
        if not isinstance(heuristic, SchedulingHeuristic):
            raise TypeError("heuristic must be a SchedulingHeuristic or a registry key")
        return heuristic

    # -- collectives ----------------------------------------------------------------

    def bcast(
        self,
        message_size: float,
        *,
        heuristic: "SchedulingHeuristic | str" = "ecef_la",
        root_cluster: int = 0,
        local_tree: str = "binomial",
        local_first: bool = False,
    ) -> CollectiveOutcome:
        """Simulate a grid-aware ``MPI_Bcast``.

        The inter-cluster phase follows the schedule produced by ``heuristic``
        for ``root_cluster``; each cluster then broadcasts locally along
        ``local_tree``.
        """
        resolved = self._resolve_heuristic(heuristic)
        schedule = resolved.schedule(self.grid, message_size, root=root_cluster)
        program = grid_aware_bcast_program(
            self.grid,
            schedule,
            message_size,
            local_tree=local_tree,
            local_first=local_first,
        )
        execution = execute_program(self.network, program)
        return CollectiveOutcome(
            schedule=schedule, predicted_time=schedule.makespan, execution=execution
        )

    def bcast_binomial(
        self, message_size: float, *, root_rank: int = 0
    ) -> CollectiveOutcome:
        """Simulate the grid-unaware binomial broadcast (the "Default LAM" curve)."""
        program = binomial_bcast_program(self.grid, message_size, root_rank=root_rank)
        execution = execute_program(self.network, program)
        return CollectiveOutcome(schedule=None, predicted_time=None, execution=execution)

    def scatter(
        self,
        chunk_size: float,
        *,
        heuristic: "SchedulingHeuristic | str" = "ecef_la",
        root_cluster: int = 0,
        grid_aware: bool = True,
    ) -> CollectiveOutcome:
        """Simulate a personalised scatter (one ``chunk_size`` block per rank)."""
        if grid_aware:
            resolved = self._resolve_heuristic(heuristic)
            program, schedule = grid_aware_scatter_program(
                self.grid, chunk_size, heuristic=resolved, root_cluster=root_cluster
            )
        else:
            program = flat_scatter_program(
                self.grid, chunk_size, root_rank=self.grid.coordinator_rank(root_cluster)
            )
            schedule = None
        execution = execute_program(self.network, program)
        return CollectiveOutcome(
            schedule=schedule,
            predicted_time=schedule.makespan if schedule is not None else None,
            execution=execution,
        )

    def alltoall(
        self,
        chunk_size: float,
        *,
        grid_aware: bool = True,
    ) -> CollectiveOutcome:
        """Simulate a personalised all-to-all (every rank sends a chunk to every rank)."""
        if grid_aware:
            program = grid_aware_alltoall_program(self.grid, chunk_size)
        else:
            program = direct_alltoall_program(self.grid, chunk_size)
        # The all-to-all builders declare every rank initially active on the
        # program itself; the executor picks that up without extra arguments.
        execution = execute_program(self.network, program)
        return CollectiveOutcome(schedule=None, predicted_time=None, execution=execution)
