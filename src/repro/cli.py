"""Command-line interface.

``repro-bcast`` exposes the main entry points of the library from a shell:

* ``repro-bcast schedule`` — schedule a broadcast on the Table 3 GRID5000
  grid (or a random grid) with a chosen heuristic and print the schedule;
* ``repro-bcast compare`` — compare all paper heuristics on one grid;
* ``repro-bcast simulate`` — run a (small) Monte-Carlo study and print the
  Figure 1/2-style table;
* ``repro-bcast practical`` — run the Figure 5/6 predicted-vs-measured study
  (optionally with noise replicas and a pipelined worker fan-out);
* ``repro-bcast chain`` — measure a warm-network pipeline of back-to-back
  collectives against its barrier-separated baseline;
* ``repro-bcast gossip`` — run the tree-vs-gossip dissemination study
  (rounds, delivery fraction, traffic, pLogP-timed delivery) over the
  vectorized epidemic round engine, with optional churn and noise;
* ``repro-bcast worker serve`` — run a distributed-lane worker agent that
  executes study chunks shipped by a coordinator running with
  ``--executor remote`` (see ``--hosts`` / ``REPRO_HOSTS``);
* ``repro-bcast service serve`` / ``service query`` —
  broadcast-scheduling-as-a-service: a long-running schedule daemon
  answering (topology, size, heuristic) queries out of an LRU schedule
  cache, and the matching client (``query`` prints the same summary the
  ``schedule`` subcommand prints, byte for byte).

Worker counts default to the ``REPRO_MC_WORKERS`` / ``REPRO_PRACTICAL_WORKERS``
environment variables with the shared ``REPRO_WORKERS`` fallback; the fan-out
lane defaults to ``REPRO_EXECUTOR`` (see ``--executor``: threads skip
shipping entirely, processes ship through the study runtime — shared memory
when available, see ``--transport``).

Every option's help string states its effective default; ``tests/test_cli.py``
asserts help text and parser defaults stay in sync.

The CLI is intentionally a thin shell over :mod:`repro.experiments`; anything
serious should use the Python API.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.registry import PAPER_HEURISTICS, available_heuristics, get_heuristic
from repro.experiments.chained_study import CHAIN_COLLECTIVES, run_chained_study
from repro.experiments.config import (
    PracticalStudyConfig,
    SimulationStudyConfig,
)
from repro.experiments.practical_study import (
    BINOMIAL_BASELINE_NAME,
    run_alltoall_study,
    run_practical_study,
    run_scatter_study,
)
from repro.experiments.gossip_study import GossipStudyConfig, run_gossip_study
from repro.experiments.report import render_series_table, render_table
from repro.experiments.simulation_study import run_simulation_study
from repro.gossip.spec import GOSSIP_PROTOCOLS, ChurnSpec
from repro.topology.generators import RandomGridGenerator
from repro.topology.grid5000 import build_grid5000_topology
from repro.utils.rng import RandomStream


def _add_executor_option(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--executor",
        choices=("auto", "thread", "process", "remote"),
        default=None,
        help="worker fan-out lane: threads read parent arrays in place (no "
        "shipping), processes ship via --transport, remote ships chunks to "
        "the worker agents of --hosts; auto picks threads for small batches "
        "(default: REPRO_EXECUTOR, then auto)",
    )
    sub_parser.add_argument(
        "--hosts",
        default=None,
        help="comma-separated worker-agent addresses host:port for "
        "--executor remote (default: REPRO_HOSTS, then agents auto-spawned "
        "as loopback subprocesses)",
    )
    sub_parser.add_argument(
        "--connect-timeout",
        type=float,
        default=None,
        help="seconds allowed for each worker-agent connect/handshake under "
        "--executor remote (default: REPRO_CONNECT_TIMEOUT, then 30.0)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bcast",
        description="Grid-aware broadcast scheduling heuristics (IPPS 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    schedule = sub.add_parser("schedule", help="schedule one broadcast and print it")
    schedule.add_argument(
        "--heuristic",
        default="ecef_la",
        choices=available_heuristics(),
        help="scheduling heuristic to run (default: ecef_la)",
    )
    schedule.add_argument(
        "--message-size",
        type=int,
        default=1_048_576,
        help="broadcast payload in bytes (default: 1048576, the paper's 1 MB)",
    )
    schedule.add_argument(
        "--root", type=int, default=0, help="root cluster id (default: 0)"
    )
    schedule.add_argument(
        "--clusters",
        type=int,
        default=0,
        help="use a random grid with this many clusters instead of the "
        "Table 3 grid (default: 0 = Table 3 GRID5000)",
    )
    schedule.add_argument(
        "--seed",
        type=int,
        default=1,
        help="random-grid generator seed (default: 1)",
    )

    compare = sub.add_parser("compare", help="compare all paper heuristics on one grid")
    compare.add_argument(
        "--message-size",
        type=int,
        default=1_048_576,
        help="broadcast payload in bytes (default: 1048576)",
    )
    compare.add_argument(
        "--root", type=int, default=0, help="root cluster id (default: 0)"
    )
    compare.add_argument(
        "--clusters",
        type=int,
        default=0,
        help="random-grid cluster count (default: 0 = Table 3 GRID5000)",
    )
    compare.add_argument(
        "--seed",
        type=int,
        default=1,
        help="random-grid generator seed (default: 1)",
    )

    simulate = sub.add_parser("simulate", help="run a Monte-Carlo study (Figures 1/2)")
    simulate.add_argument(
        "--iterations",
        type=int,
        default=200,
        help="random grids per cluster count (default: 200; the paper used "
        "10000)",
    )
    simulate.add_argument(
        "--min-clusters",
        type=int,
        default=2,
        help="smallest swept cluster count (default: 2)",
    )
    simulate.add_argument(
        "--max-clusters",
        type=int,
        default=10,
        help="largest swept cluster count (default: 10)",
    )
    simulate.add_argument(
        "--step", type=int, default=1, help="cluster-count stride (default: 1)"
    )
    simulate.add_argument(
        "--seed",
        type=int,
        default=20060331,
        help="study seed (default: 20060331)",
    )
    simulate.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the Monte-Carlo chunks out over this many workers "
        "(default: REPRO_MC_WORKERS, then REPRO_WORKERS, then in-process)",
    )
    _add_executor_option(simulate)
    simulate.add_argument(
        "--transport",
        choices=("auto", "shm", "pickle"),
        default=None,
        help="ship the stacked (K, n, n) cost matrices to process workers "
        "over this transport instead of letting workers regenerate grids "
        "from seeds (default: seed shipping; auto = shared memory when "
        "available)",
    )

    practical = sub.add_parser(
        "practical", help="run the predicted-vs-measured study (Figures 5/6)"
    )
    practical.add_argument(
        "--max-size",
        type=int,
        default=4_718_592,
        help="largest message size in bytes (default: 4718592, Figure 5/6's "
        "4.5 MB)",
    )
    practical.add_argument(
        "--points",
        type=int,
        default=10,
        help="number of swept sizes from 0 to --max-size (default: 10)",
    )
    practical.add_argument(
        "--noise",
        type=float,
        default=0.03,
        help="log-normal noise sigma of the measured sweep (default: 0.03)",
    )
    practical.add_argument(
        "--collective",
        choices=("bcast", "scatter", "alltoall"),
        default="bcast",
        help="collective pattern to study; scatter/alltoall measure the "
        "grid-aware strategy against its flat/direct baseline "
        "(default: bcast)",
    )
    practical.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the measured sweep out over this many workers "
        "(default: REPRO_PRACTICAL_WORKERS, then REPRO_WORKERS, then "
        "in-process); with workers the bcast study pipelines construction "
        "with measurement",
    )
    _add_executor_option(practical)
    practical.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="independent noisy measurements per curve point; the measured "
        "table reports the replica mean (bcast study only; default: 1)",
    )
    practical.add_argument(
        "--transport",
        choices=("auto", "shm", "pickle"),
        default=None,
        help="how compiled program batches reach process workers "
        "(default: auto — shared memory when available, pickle otherwise)",
    )

    chain = sub.add_parser(
        "chain",
        help="measure a warm-network pipeline of back-to-back collectives "
        "against its barrier-separated baseline",
    )
    chain.add_argument(
        "--collectives",
        default="scatter,alltoall",
        help="comma-separated pipeline stages "
        f"(choices: {', '.join(CHAIN_COLLECTIVES)}; "
        "default: scatter,alltoall)",
    )
    chain.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="repeat the stage sequence N times (default: 1)",
    )
    chain.add_argument(
        "--max-size",
        type=int,
        default=262_144,
        help="largest per-stage payload/chunk size in bytes (default: 262144)",
    )
    chain.add_argument(
        "--points",
        type=int,
        default=4,
        help="number of swept sizes up to --max-size (default: 4)",
    )
    chain.add_argument(
        "--noise",
        type=float,
        default=0.03,
        help="log-normal noise sigma (default: 0.03)",
    )
    chain.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan sizes out over this many workers; chains are never split "
        "(default: REPRO_PRACTICAL_WORKERS, then REPRO_WORKERS, then "
        "in-process)",
    )
    _add_executor_option(chain)

    gossip = sub.add_parser(
        "gossip",
        help="run the tree-vs-gossip dissemination study over the vectorized "
        "epidemic round engine",
    )
    gossip.add_argument(
        "--protocols",
        default="tree,push,pushpull,epto",
        help="comma-separated protocols to compare "
        f"(choices: {', '.join(GOSSIP_PROTOCOLS)}; "
        "default: tree,push,pushpull,epto)",
    )
    gossip.add_argument(
        "--nodes",
        default="1000,10000",
        help="comma-separated network sizes to sweep (default: 1000,10000)",
    )
    gossip.add_argument(
        "--fanout",
        type=int,
        default=2,
        help="peers each informed node pushes to per round (default: 2)",
    )
    gossip.add_argument(
        "--ttl",
        type=int,
        default=0,
        help="rounds an epto node relays after infection "
        "(default: 0 = auto, ceil(log2 n) + 2)",
    )
    gossip.add_argument(
        "--rounds",
        type=int,
        default=64,
        help="hard cap on executed rounds; every protocol stops earlier once "
        "no further infection is possible (default: 64)",
    )
    gossip.add_argument(
        "--churn",
        type=float,
        default=0.0,
        help="fraction of nodes that leave at a seeded random round "
        "(default: 0.0, no churn)",
    )
    gossip.add_argument(
        "--join",
        type=float,
        default=0.0,
        help="fraction of nodes that join late at a seeded random round "
        "(default: 0.0, all present from round 0)",
    )
    gossip.add_argument(
        "--noise",
        type=float,
        default=0.0,
        help="log-normal sigma of the per-round duration jitter "
        "(default: 0.0, noise-free pLogP timing)",
    )
    gossip.add_argument(
        "--message-size",
        type=int,
        default=1024,
        help="gossip payload in bytes, for the timing model (default: 1024)",
    )
    gossip.add_argument(
        "--seed",
        type=int,
        default=20060331,
        help="study seed; every (protocol, size) cell derives its own child "
        "seed (default: 20060331)",
    )
    gossip.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the study cells out over this many workers "
        "(default: REPRO_GOSSIP_WORKERS, then REPRO_WORKERS, then "
        "in-process)",
    )
    _add_executor_option(gossip)

    worker = sub.add_parser(
        "worker",
        help="distributed-lane worker agents (serve studies shipped by a "
        "coordinator running with --executor remote)",
    )
    worker_sub = worker.add_subparsers(dest="worker_command", required=True)
    serve = worker_sub.add_parser(
        "serve",
        help="run one agent in the foreground: listen for a coordinator and "
        "execute its study chunks on a local worker pool",
    )
    serve.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="HOST:PORT to listen on; port 0 lets the OS pick — the bound "
        "address is announced on stdout (default: 127.0.0.1:0)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="local worker processes this agent fronts (default: 1 — "
        "execute chunks in the agent process itself)",
    )
    serve.add_argument(
        "--slowdown",
        type=float,
        default=1.0,
        help="stretch every job's execution by this factor to emulate a "
        "slower box — a benchmarking/testing device for skewed fleets "
        "(default: 1.0, full speed)",
    )
    serve.add_argument(
        "--exit-with-parent",
        action="store_true",
        help="exit when the process that spawned this agent dies — loopback "
        "pools pass this so killed coordinators leave no orphans "
        "(default: False)",
    )
    serve.add_argument(
        "--max-coordinators",
        type=int,
        default=2,
        help="concurrent coordinator connections served before new ones are "
        "bounced with a clean BUSY hello (default: 2)",
    )
    serve.add_argument(
        "--queue",
        type=int,
        default=0,
        help="bound on job frames accepted but not yet answered, across all "
        "coordinators; frames beyond it are bounced BUSY for the "
        "coordinator to back off and retry (default: 0 = unbounded)",
    )

    service = sub.add_parser(
        "service",
        help="broadcast-scheduling-as-a-service: a schedule daemon answering "
        "(topology, size, heuristic) queries out of an LRU schedule cache",
    )
    service_sub = service.add_subparsers(dest="service_command", required=True)
    service_serve = service_sub.add_parser(
        "serve",
        help="run the schedule daemon in the foreground: listen for query "
        "frames and answer them with timed broadcast schedules",
    )
    service_serve.add_argument(
        "--bind",
        default="127.0.0.1:7030",
        help="HOST:PORT to listen on; port 0 lets the OS pick — the bound "
        "address is announced on stdout (default: 127.0.0.1:7030)",
    )
    service_serve.add_argument(
        "--max-clients",
        type=int,
        default=8,
        help="concurrent client connections served before new ones are "
        "bounced with a clean BUSY hello (default: 8)",
    )
    service_serve.add_argument(
        "--queue",
        type=int,
        default=0,
        help="bound on queries admitted but not yet answered, across all "
        "clients; queries beyond it are bounced BUSY for the client to "
        "back off and retry (default: 0 = unbounded)",
    )
    service_serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="bound on cached schedules (and cached topologies), evicted "
        "least-recently-used (default: 1024)",
    )
    service_serve.add_argument(
        "--band-bytes",
        type=int,
        default=0,
        help="message-size band width of the schedule-cache key: nearby "
        "sizes share a cached decision order, re-timed exactly per query "
        "(default: 0 = key by exact size; hits replay stored payloads "
        "verbatim, trivially bit-identical)",
    )
    service_query = service_sub.add_parser(
        "query",
        help="ask a running schedule daemon for one schedule and print it "
        "(byte-identical to the `schedule` subcommand's output)",
    )
    service_query.add_argument(
        "--host",
        default="127.0.0.1:7030",
        help="HOST:PORT of the running daemon (default: 127.0.0.1:7030)",
    )
    service_query.add_argument(
        "--heuristic",
        default="ecef_la",
        choices=available_heuristics(),
        help="scheduling heuristic to ask for (default: ecef_la)",
    )
    service_query.add_argument(
        "--message-size",
        type=int,
        default=1_048_576,
        help="broadcast payload in bytes (default: 1048576, the paper's 1 MB)",
    )
    service_query.add_argument(
        "--root", type=int, default=0, help="root cluster id (default: 0)"
    )
    service_query.add_argument(
        "--clusters",
        type=int,
        default=0,
        help="query a random grid with this many clusters instead of the "
        "Table 3 grid (default: 0 = Table 3 GRID5000)",
    )
    service_query.add_argument(
        "--seed",
        type=int,
        default=1,
        help="random-grid generator seed (default: 1)",
    )
    service_query.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="seconds allowed for connect and for each reply (default: 30.0)",
    )
    service_query.add_argument(
        "--stats",
        action="store_true",
        help="print the daemon's cache statistics instead of querying "
        "(default: False)",
    )

    return parser


def _make_grid(clusters: int, seed: int):
    if clusters <= 0:
        return build_grid5000_topology()
    generator = RandomGridGenerator()
    return generator.generate(clusters, RandomStream(seed=seed))


def _cmd_schedule(args: argparse.Namespace) -> int:
    grid = _make_grid(args.clusters, args.seed)
    heuristic = get_heuristic(args.heuristic)
    schedule = heuristic.schedule(grid, args.message_size, root=args.root)
    print(schedule.summary())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    grid = _make_grid(args.clusters, args.seed)
    print(f"grid: {grid.name}  ({grid.num_clusters} clusters, {grid.num_nodes} nodes)")
    print(f"message size: {args.message_size} bytes, root cluster: {args.root}")
    print()
    header = f"{'heuristic':<12}  {'makespan (ms)':>14}  {'inter-cluster (ms)':>19}"
    print(header)
    print("-" * len(header))
    for key in PAPER_HEURISTICS:
        heuristic = get_heuristic(key)
        schedule = heuristic.schedule(grid, args.message_size, root=args.root)
        print(
            f"{heuristic.name:<12}  {schedule.makespan * 1e3:>14.3f}  "
            f"{schedule.inter_cluster_makespan * 1e3:>19.3f}"
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    counts = tuple(range(args.min_clusters, args.max_clusters + 1, args.step))
    config = SimulationStudyConfig(
        cluster_counts=counts, iterations=args.iterations, seed=args.seed
    )
    result = run_simulation_study(
        config,
        workers=args.workers,
        executor=args.executor,
        transport=args.transport,
        hosts=args.hosts,
    )
    series = {
        name: result.series(name) for name in result.heuristic_names
    }
    print(
        render_series_table(
            "clusters",
            result.cluster_counts,
            series,
            title=f"Mean completion time (s) over {args.iterations} iterations, 1 MB broadcast",
        )
    )
    return 0


def _cmd_practical(args: argparse.Namespace) -> int:
    sizes = tuple(
        int(round(index * args.max_size / max(args.points - 1, 1)))
        for index in range(args.points)
    )
    config = PracticalStudyConfig(message_sizes=sizes, noise_sigma=args.noise)
    if args.collective == "scatter":
        result = run_scatter_study(
            config,
            workers=args.workers,
            executor=args.executor,
            transport=args.transport,
            hosts=args.hosts,
        )
        print(
            render_table(
                result.as_table(), title="Measured scatter completion time (s)"
            )
        )
        return 0
    if args.collective == "alltoall":
        result = run_alltoall_study(
            config,
            workers=args.workers,
            executor=args.executor,
            transport=args.transport,
            hosts=args.hosts,
        )
        print(
            render_table(
                result.as_table(), title="Measured all-to-all completion time (s)"
            )
        )
        return 0
    result = run_practical_study(
        config,
        workers=args.workers,
        executor=args.executor,
        replicas=args.replicas,
        transport=args.transport,
        hosts=args.hosts,
    )
    print(render_table(result.as_table(which="predicted"), title="Predicted completion time (s)"))
    print()
    measured_title = "Measured completion time (s)"
    if result.num_replicas > 1:
        measured_title += f" (mean of {result.num_replicas} replicas)"
    print(render_table(result.as_table(which="measured"), title=measured_title))
    if result.baseline_measured is not None:
        print()
        print(f"(the '{BINOMIAL_BASELINE_NAME}' column is the grid-unaware binomial tree)")
    return 0


def _cmd_chain(args: argparse.Namespace) -> int:
    stages = tuple(
        stage.strip() for stage in args.collectives.split(",") if stage.strip()
    )
    sizes = tuple(
        int(round((index + 1) * args.max_size / max(args.points, 1)))
        for index in range(args.points)
    )
    config = PracticalStudyConfig(message_sizes=sizes, noise_sigma=args.noise)
    result = run_chained_study(
        config,
        stages=stages,
        repeat=args.repeat,
        workers=args.workers,
        executor=args.executor,
        hosts=args.hosts,
    )
    title = (
        "Warm-chained pipeline vs barrier baseline (s): "
        + " -> ".join(result.stage_names)
    )
    print(render_table(result.as_table(), title=title))
    print()
    print(
        "(pipelined = all stages issued back-to-back on one warm network; "
        "barrier = sum of fresh-network stage times)"
    )
    return 0


def _cmd_gossip(args: argparse.Namespace) -> int:
    protocols = tuple(
        name.strip() for name in args.protocols.split(",") if name.strip()
    )
    node_counts = tuple(
        int(value) for value in args.nodes.split(",") if value.strip()
    )
    churn = (
        ChurnSpec(leave_fraction=args.churn, join_fraction=args.join)
        if args.churn > 0.0 or args.join > 0.0
        else None
    )
    config = GossipStudyConfig(
        protocols=protocols,
        node_counts=node_counts,
        fanout=args.fanout,
        ttl=args.ttl,
        rounds=args.rounds,
        churn=churn,
        noise_sigma=args.noise,
        message_size=float(args.message_size),
        seed=args.seed,
    )
    result = run_gossip_study(
        config,
        workers=args.workers,
        executor=args.executor,
        hosts=args.hosts,
    )
    tables = (
        ("Rounds to delivery", result.metric("rounds_to_delivery")),
        ("Delivery fraction", result.delivery_fractions()),
        ("Messages per node", result.messages_per_node()),
        ("Delivery time (s)", result.metric("delivery_time")),
    )
    for index, (title, plane) in enumerate(tables):
        if index:
            print()
        series = {
            protocol: plane[p_index].tolist()
            for p_index, protocol in enumerate(protocols)
        }
        print(
            render_series_table(
                "nodes", list(node_counts), series, title=title, precision=4
            )
        )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.runtime.remote import serve_agent

    serve_agent(
        args.bind,
        args.workers,
        slowdown=args.slowdown,
        exit_with_parent=args.exit_with_parent,
        max_coordinators=args.max_coordinators,
        queue=args.queue,
    )
    return 0


def _cmd_service(args: argparse.Namespace) -> int:
    if args.service_command == "serve":
        from repro.runtime.service import serve_service

        serve_service(
            args.bind,
            max_clients=args.max_clients,
            queue=args.queue,
            cache_size=args.cache_size,
            band_bytes=args.band_bytes,
        )
        return 0
    from repro.runtime.service import ScheduleClient

    with ScheduleClient(args.host, timeout=args.timeout) as client:
        if args.stats:
            for key, value in sorted(client.stats().items()):
                print(f"{key}: {value}")
            return 0
        if args.clusters <= 0:
            topology = {"kind": "grid5000"}
        else:
            topology = {"kind": "random", "clusters": args.clusters, "seed": args.seed}
        reply = client.query(
            topology, args.message_size, args.heuristic, root=args.root
        )
        # The same summary() the `schedule` subcommand prints — byte-for-byte
        # diffable against the inline path (the CI service-smoke contract).
        print(reply.schedule().summary())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (also installed as the ``repro-bcast`` script)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "connect_timeout", None) is not None:
        # The knob reaches the remote lane as the env fallback rather than
        # threading one more parameter through every study signature.
        import os

        from repro.runtime.remote import CONNECT_TIMEOUT_ENV_VAR

        os.environ[CONNECT_TIMEOUT_ENV_VAR] = str(args.connect_timeout)
    handlers = {
        "schedule": _cmd_schedule,
        "compare": _cmd_compare,
        "simulate": _cmd_simulate,
        "practical": _cmd_practical,
        "chain": _cmd_chain,
        "gossip": _cmd_gossip,
        "worker": _cmd_worker,
        "service": _cmd_service,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - manual invocation only
    sys.exit(main())
