"""Argument-validation helpers.

The public API of the library is intentionally strict: invalid inputs fail
fast with a descriptive :class:`ValueError` or :class:`TypeError` rather than
propagating NaNs or silently producing nonsensical schedules.  All checks are
centralised here so that error messages stay consistent across sub-packages.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Type


def check_type(value: Any, types: Type | tuple[Type, ...], name: str) -> Any:
    """Ensure ``value`` is an instance of ``types``.

    Parameters
    ----------
    value:
        The value to check.
    types:
        A type or tuple of acceptable types.
    name:
        Parameter name used in the error message.

    Returns
    -------
    The value itself, unchanged, so the helper can be used inline.

    Raises
    ------
    TypeError
        If ``value`` is not an instance of ``types``.
    """
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(
            f"{name} must be of type {expected}, got {type(value).__name__}"
        )
    return value


def check_finite(value: float, name: str) -> float:
    """Ensure ``value`` is a finite real number.

    Booleans are rejected even though they are ``int`` subclasses, because a
    boolean latency or gap is almost always a bug at the call site.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Ensure ``value`` is a finite number ``>= 0``."""
    value = check_finite(value, name)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_positive(value: float, name: str) -> float:
    """Ensure ``value`` is a finite number ``> 0``."""
    value = check_finite(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    value = check_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_in_range(
    value: float,
    low: float,
    high: float,
    name: str,
    *,
    inclusive: bool = True,
) -> float:
    """Ensure ``value`` lies within ``[low, high]`` (or ``(low, high)``).

    Parameters
    ----------
    value:
        Value to check.
    low, high:
        Interval bounds.
    name:
        Parameter name used in the error message.
    inclusive:
        When ``True`` (default) the bounds are allowed; otherwise the interval
        is open.
    """
    value = check_finite(value, name)
    if inclusive:
        ok = low <= value <= high
        interval = f"[{low}, {high}]"
    else:
        ok = low < value < high
        interval = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must lie in {interval}, got {value!r}")
    return value


def check_index(value: int, size: int, name: str) -> int:
    """Ensure ``value`` is a valid index into a collection of ``size`` items."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not 0 <= value < size:
        raise ValueError(f"{name} must lie in [0, {size}), got {value}")
    return value


def check_unique(values: Iterable[Any], name: str) -> list[Any]:
    """Ensure an iterable contains no duplicates; return it as a list."""
    values = list(values)
    seen: set[Any] = set()
    for item in values:
        if item in seen:
            raise ValueError(f"{name} contains duplicate entry {item!r}")
        seen.add(item)
    return values
