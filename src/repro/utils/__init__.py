"""Shared utilities for the repro package.

This sub-package collects small, dependency-free helpers used across the
library:

* :mod:`repro.utils.validation` -- argument checking helpers that raise
  consistent, descriptive exceptions.
* :mod:`repro.utils.rng` -- reproducible random-number streams used by the
  Monte-Carlo experiments and the random topology generators.
* :mod:`repro.utils.units` -- unit conversions (seconds / milliseconds /
  microseconds, bytes / megabytes) so that the rest of the code can work in a
  single canonical unit (seconds and bytes) while still speaking the paper's
  language (milliseconds and megabytes) at the API boundary.
* :mod:`repro.utils.workers` -- the one place worker counts are resolved from
  arguments and the ``REPRO_*_WORKERS`` / ``REPRO_WORKERS`` environment.
"""

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)
from repro.utils.rng import RandomStream, spawn_streams
from repro.utils.workers import SHARED_WORKERS_ENV_VAR, resolve_workers
from repro.utils.units import (
    BYTES_PER_KIB,
    BYTES_PER_MIB,
    bytes_to_mib,
    mib_to_bytes,
    ms_to_s,
    s_to_ms,
    s_to_us,
    us_to_s,
)

__all__ = [
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "RandomStream",
    "spawn_streams",
    "SHARED_WORKERS_ENV_VAR",
    "resolve_workers",
    "BYTES_PER_KIB",
    "BYTES_PER_MIB",
    "bytes_to_mib",
    "mib_to_bytes",
    "ms_to_s",
    "s_to_ms",
    "s_to_us",
    "us_to_s",
]
