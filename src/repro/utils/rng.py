"""Reproducible random-number streams.

The Monte-Carlo simulation study of the paper averages 10 000 independent
random grid instances.  To make every figure regenerable bit-for-bit we wrap
:class:`numpy.random.Generator` in a tiny :class:`RandomStream` facade that

* always derives from an explicit integer seed,
* can *spawn* independent child streams (one per iteration, per cluster-count,
  per benchmark) without correlations, and
* exposes only the handful of draw primitives the library needs, which keeps
  the experiment code easy to audit.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.utils.validation import check_positive

DEFAULT_SEED = 20060331
"""Default seed: the HAL submission date of the paper (2006-03-31)."""


@dataclass
class RandomStream:
    """A seeded random stream with independent spawnable children.

    Parameters
    ----------
    seed:
        Integer seed.  Two streams built from the same seed produce identical
        draw sequences.
    """

    seed: int = DEFAULT_SEED
    _generator: np.random.Generator = field(init=False, repr=False)
    _spawn_count: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if isinstance(self.seed, bool) or not isinstance(self.seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(self.seed).__name__}")
        self._generator = np.random.default_rng(np.random.SeedSequence(self.seed))

    # -- draw primitives ---------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        """Draw a single float uniformly from ``[low, high)``."""
        if high < low:
            raise ValueError(f"uniform bounds out of order: low={low}, high={high}")
        return float(self._generator.uniform(low, high))

    def uniform_array(self, low: float, high: float, size: int | tuple[int, ...]) -> np.ndarray:
        """Draw an array of floats uniformly from ``[low, high)``."""
        if high < low:
            raise ValueError(f"uniform bounds out of order: low={low}, high={high}")
        return self._generator.uniform(low, high, size=size)

    def integers(self, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high)``."""
        return int(self._generator.integers(low, high))

    def choice(self, options: Sequence) -> object:
        """Pick one element of ``options`` uniformly at random."""
        if len(options) == 0:
            raise ValueError("cannot choose from an empty sequence")
        index = int(self._generator.integers(0, len(options)))
        return options[index]

    def shuffle(self, items: list) -> list:
        """Return a new list with ``items`` in a random order."""
        permutation = self._generator.permutation(len(items))
        return [items[int(i)] for i in permutation]

    def lognormal(self, mean: float, sigma: float) -> float:
        """Draw a log-normally distributed float (used for jitter models)."""
        check_positive(sigma, "sigma")
        return float(self._generator.lognormal(mean, sigma))

    def lognormal_array(self, mean: float, sigma: float, count: int) -> np.ndarray:
        """Draw ``count`` log-normal floats in one call.

        The array is filled element by element from the same underlying
        stream, so ``lognormal_array(m, s, n)[i]`` equals the value the
        ``i``-th sequential :meth:`lognormal` call would have produced — the
        batched simulator relies on this to stay bit-identical to the scalar
        one.
        """
        check_positive(sigma, "sigma")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return self._generator.lognormal(mean, sigma, size=count)

    def normal(self, loc: float, scale: float) -> float:
        """Draw a normally distributed float."""
        if scale < 0:
            raise ValueError(f"scale must be non-negative, got {scale}")
        return float(self._generator.normal(loc, scale))

    # -- stream management ---------------------------------------------------

    def spawn(self) -> "RandomStream":
        """Create an independent child stream.

        Children are derived deterministically from the parent seed and the
        number of children already spawned, so a fixed program always receives
        the same family of streams.
        """
        return RandomStream(seed=self.spawn_seed())

    def spawn_seed(self) -> int:
        """The seed of the next child stream, without building the stream.

        Consumes a spawn slot exactly like :meth:`spawn` (so mixing the two
        is safe).  Useful when child streams must be materialised elsewhere —
        e.g. shipping plain integer seeds to multiprocessing workers instead
        of generator objects.
        """
        self._spawn_count += 1
        return self._mix(self.seed, self._spawn_count)

    @staticmethod
    def _mix(seed: int, index: int) -> int:
        """Deterministically combine a seed and a child index (SplitMix-like)."""
        value = (seed * 6364136223846793005 + index * 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
        value ^= value >> 33
        value = (value * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
        value ^= value >> 33
        return int(value)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying :class:`numpy.random.Generator` (read-only access)."""
        return self._generator

    @property
    def state(self) -> dict:
        """The bit-generator state, for save/restore around probe draws."""
        return self._generator.bit_generator.state

    @state.setter
    def state(self, value: dict) -> None:
        self._generator.bit_generator.state = value


def derive_seed(seed: int, *labels: object) -> int:
    """A deterministic child seed keyed by stable labels.

    Uses the same SplitMix-style mixing as :meth:`RandomStream.spawn_seed`,
    but keyed by a CRC of the given labels instead of a spawn counter, so the
    derived seed depends only on ``(seed, labels)`` — not on how many other
    seeds were derived first.  This is how the practical study assigns each
    (curve label, message size) measurement its own noise stream: reordering
    the heuristics tuple, shuffling execution order or fanning out over
    workers cannot change any individual measurement.
    """
    digest = zlib.crc32("|".join(str(label) for label in labels).encode())
    return RandomStream._mix(seed, digest)


def spawn_streams(seed: int, count: int) -> list[RandomStream]:
    """Create ``count`` independent streams derived from ``seed``.

    This is the canonical way the experiment harness assigns one stream per
    Monte-Carlo iteration so that iterations can be reordered or parallelised
    without changing the results.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = RandomStream(seed=seed)
    return [parent.spawn() for _ in range(count)]
