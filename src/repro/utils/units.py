"""Unit conversions.

Internally the whole library works in **seconds** and **bytes**.  The paper,
however, quotes latencies in milliseconds (Table 2) and microseconds
(Table 3), gaps in milliseconds, and message sizes in megabytes.  These tiny
helpers keep the conversions explicit and greppable instead of sprinkling
magic ``* 1e-3`` factors across the code base.
"""

from __future__ import annotations

BYTES_PER_KIB = 1024
"""Number of bytes in one kibibyte."""

BYTES_PER_MIB = 1024 * 1024
"""Number of bytes in one mebibyte (the paper's "1 MB" broadcast)."""

BYTES_PER_MB = 1_000_000
"""Number of bytes in one (decimal) megabyte, used on figure axes."""


def ms_to_s(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds * 1e-3


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def us_to_s(microseconds: float) -> float:
    """Convert microseconds to seconds."""
    return microseconds * 1e-6


def s_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6


def mib_to_bytes(mebibytes: float) -> int:
    """Convert mebibytes to bytes (rounded to an integer byte count)."""
    return int(round(mebibytes * BYTES_PER_MIB))


def bytes_to_mib(num_bytes: float) -> float:
    """Convert bytes to mebibytes."""
    return num_bytes / BYTES_PER_MIB


def mb_to_bytes(megabytes: float) -> int:
    """Convert decimal megabytes to bytes."""
    return int(round(megabytes * BYTES_PER_MB))


def bytes_to_mb(num_bytes: float) -> float:
    """Convert bytes to decimal megabytes."""
    return num_bytes / BYTES_PER_MB
