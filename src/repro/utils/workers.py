"""Worker-count resolution shared by every study and executor.

Before the runtime layer each study carried its own copy of the same
``_resolve_workers`` helper, each hard-wired to one environment variable
(``REPRO_MC_WORKERS`` for the Monte-Carlo study, ``REPRO_PRACTICAL_WORKERS``
for the measured sweeps).  This module is the single implementation.  The
resolution order is:

1. an explicit ``workers=`` argument (``None`` means "consult the
   environment"),
2. the first *set* study-specific environment variable passed by the caller
   (``REPRO_MC_WORKERS``, ``REPRO_PRACTICAL_WORKERS``, ...),
3. the shared ``REPRO_WORKERS`` default, which configures every study at
   once,
4. ``0`` — run in-process.

Worker counts only change *where* work runs, never *what* it computes: every
task carries its own derived seed, so results are bit-identical at any count.

The companion knob — *which lane* those workers run on (threads or
processes) — resolves separately through
:func:`repro.runtime.chunking.resolve_executor` and its ``REPRO_EXECUTOR``
environment variable; ``resolve_workers`` only decides how many.
"""

from __future__ import annotations

import os

#: The shared fallback consulted by every study when its specific variable is
#: unset.  ``REPRO_WORKERS=4`` fans out the Monte-Carlo study, the measured
#: sweeps and the chained pipelines alike.
SHARED_WORKERS_ENV_VAR = "REPRO_WORKERS"


def _parse(raw: str, env_var: str) -> int:
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{env_var} must be an integer worker count, got {raw!r}"
        ) from exc


def resolve_workers(workers: int | None, *env_vars: str) -> int:
    """Resolve a worker count from an argument and the environment.

    The resolution order is: the explicit ``workers`` argument, then each
    ``env_vars`` entry in turn (the studies pass their specific variable —
    ``REPRO_MC_WORKERS`` for the Monte-Carlo study, ``REPRO_PRACTICAL_WORKERS``
    for the measured sweeps and pipelines), then the shared ``REPRO_WORKERS``,
    then ``0`` (in-process).

    Parameters
    ----------
    workers:
        Explicit worker count; ``None`` consults the environment.  Negative
        values clamp to ``0`` (in-process execution).
    env_vars:
        Study-specific environment variables to consult, in priority order,
        before the shared ``REPRO_WORKERS`` fallback.  A variable that is set
        but not an integer raises :class:`ValueError` naming that variable.
    """
    if workers is None:
        for env_var in (*env_vars, SHARED_WORKERS_ENV_VAR):
            raw = os.environ.get(env_var, "").strip()
            if raw:
                workers = _parse(raw, env_var)
                break
        else:
            return 0
    return max(0, int(workers))
