"""repro — grid-aware broadcast scheduling heuristics.

A full reproduction of Barchet-Steffenel & Mounié,
*Scheduling Heuristics for Efficient Broadcast Operations on Grid
Environments* (PMEO-PDS'06 / IPPS 2006 workshops).

The package is organised in layers (see DESIGN.md for the complete map):

* :mod:`repro.model` — the pLogP performance model,
* :mod:`repro.topology` — clusters, grids, random generators and the Table 3
  GRID5000 topology,
* :mod:`repro.collectives` — intra-cluster broadcast trees and their costs,
* :mod:`repro.core` — the inter-cluster scheduling heuristics (the paper's
  contribution),
* :mod:`repro.simulator` — a discrete-event simulator standing in for the
  real testbed,
* :mod:`repro.mpi` — a simulated MPI layer (grid-aware broadcast, the
  grid-unaware binomial baseline, scatter / all-to-all extensions),
* :mod:`repro.experiments` — the harness that regenerates every figure and
  table of the paper,
* :mod:`repro.analysis` — statistics and ranking helpers.

Quickstart
----------

>>> from repro import build_grid5000_topology, get_heuristic
>>> grid = build_grid5000_topology()
>>> heuristic = get_heuristic("ecef_lat_max")          # the paper's ECEF-LAT
>>> schedule = heuristic.schedule(grid, message_size=1_048_576, root=0)
>>> schedule.makespan > 0
True
"""

from repro.core import (
    BottomUp,
    BroadcastSchedule,
    ECEF,
    ECEFLookahead,
    FastestEdgeFirst,
    FlatTreeHeuristic,
    MixedStrategy,
    OptimalSearch,
    PAPER_HEURISTICS,
    SchedulingHeuristic,
    available_heuristics,
    evaluate_order,
    get_heuristic,
    register_heuristic,
)
from repro.model import GapFunction, PLogPParameters, predict_broadcast_time
from repro.topology import (
    Cluster,
    Grid,
    InterClusterLink,
    ParameterRanges,
    RandomGridGenerator,
    build_grid5000_topology,
    identify_logical_clusters,
    make_uniform_grid,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BottomUp",
    "BroadcastSchedule",
    "ECEF",
    "ECEFLookahead",
    "FastestEdgeFirst",
    "FlatTreeHeuristic",
    "MixedStrategy",
    "OptimalSearch",
    "PAPER_HEURISTICS",
    "SchedulingHeuristic",
    "available_heuristics",
    "evaluate_order",
    "get_heuristic",
    "register_heuristic",
    # model
    "GapFunction",
    "PLogPParameters",
    "predict_broadcast_time",
    # topology
    "Cluster",
    "Grid",
    "InterClusterLink",
    "ParameterRanges",
    "RandomGridGenerator",
    "build_grid5000_topology",
    "identify_logical_clusters",
    "make_uniform_grid",
]
